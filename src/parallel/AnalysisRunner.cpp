//===- AnalysisRunner.cpp - Parallel static analysis ----------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "parallel/AnalysisRunner.h"

#include "analysis/interproc/InterprocAnalysis.h"
#include "support/BinaryStream.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <optional>
#include <thread>
#include <vector>

using namespace warpc;
using namespace warpc::parallel;
using warpc::obs::EventKind;

namespace ip = warpc::analysis::interproc;

namespace {

/// One function's analysis task: everything a worker needs, resolved on
/// the master before any thread starts.
struct Task {
  const w2::SectionDecl *Section = nullptr;
  const w2::FunctionDecl *Function = nullptr;
  uint32_t Ordinal = 0;
  int32_t SectionId = -1;
  int32_t FnId = -1;
};

double secondsSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
      .count();
}

/// Trace bookkeeping for one summarized SCC: the span that produced its
/// summaries, so dependent SCCs can link their causal parent.
struct SCCSpan {
  uint64_t SpanId = 0;
  double EndSec = 0;
};

/// Content key of one SCC's summaries: the wire-format version, the
/// compiler build, the enabled bits of the cached checks, every member's
/// identity (ordinal + names — diagnostics embed them) and post-sema body
/// hash, and the callee SCC keys. Computed bottom-up on the master, so an
/// edit invalidates the dirty SCC and every ancestor transitively.
cache::CacheKey
summaryKeyOf(const ip::CallGraph &G, const ip::SCCDecomposition &D,
             uint32_t SCCId, const std::vector<cache::FunctionFingerprint> &FPs,
             const std::vector<cache::CacheKey> &Keys,
             const analysis::AnalysisOptions &Opts) {
  BinaryWriter W;
  W.u32(ip::SummaryFormatVersion);
  W.u64(cache::compilerBuildId());
  W.u8(Opts.enabled(analysis::check::InterprocArrayBounds) ? 1 : 0);
  W.u8(Opts.enabled(analysis::check::InterprocDivZero) ? 1 : 0);
  W.u8(Opts.enabled(analysis::check::InterprocUninit) ? 1 : 0);
  const ip::SCCDecomposition::SCC &C = D.SCCs[SCCId];
  W.u8(C.Recursive ? 1 : 0);
  W.u64(C.Members.size());
  for (uint32_t M : C.Members) {
    W.u32(M);
    W.str(G.Nodes[M].Section->getName());
    W.str(G.Nodes[M].Function->getName());
    W.u64(FPs[M].BodyHash);
  }
  W.u64(C.CalleeSCCs.size());
  for (uint32_t Callee : C.CalleeSCCs) {
    W.u64(Keys[Callee].Hi);
    W.u64(Keys[Callee].Lo);
  }
  cache::CacheKey K;
  K.Hi = fnv1a64(W.buffer());
  W.u64(K.Hi);
  K.Lo = fnv1a64(W.buffer());
  if (!K.valid())
    K.Lo = 1;
  return K;
}

} // namespace

unsigned parallel::defaultAnalysisWorkers() {
  unsigned N = std::thread::hardware_concurrency();
  if (N == 0)
    N = 1;
  if (const char *Cap = std::getenv("WARPC_TEST_MAX_WORKERS")) {
    const unsigned C = static_cast<unsigned>(std::strtoul(Cap, nullptr, 10));
    if (C > 0 && N > C)
      N = C;
  }
  return N;
}

AnalysisRunResult
parallel::analyzeModuleParallel(const w2::ModuleDecl &M,
                                const std::string &Source,
                                const analysis::AnalysisOptions &Opts,
                                unsigned NumWorkers, obs::TraceRecorder *Rec,
                                obs::MetricsRegistry *Metrics,
                                cache::CompileCache *SummaryCache) {
  const auto RunStart = std::chrono::steady_clock::now();
  AnalysisRunResult Result;

  std::vector<Task> Tasks;
  for (size_t S = 0; S != M.numSections(); ++S) {
    const w2::SectionDecl *Section = M.getSection(S);
    for (size_t FI = 0; FI != Section->numFunctions(); ++FI) {
      Task T;
      T.Section = Section;
      T.Function = Section->getFunction(FI);
      T.Ordinal = static_cast<uint32_t>(Tasks.size());
      T.SectionId = static_cast<int32_t>(S);
      Tasks.push_back(T);
    }
  }

  const unsigned Workers = std::max(
      1u, std::min(NumWorkers, static_cast<unsigned>(
                                   std::max<size_t>(1, Tasks.size()))));
  Result.WorkersUsed = Workers;

  if (Rec) {
    // Intern every name and create every lane before a worker exists:
    // interning is not thread-safe, lanes must not reallocate mid-run.
    for (Task &T : Tasks)
      T.FnId = Rec->internFunction(T.Function->getName());
    Rec->makeLanes(Workers + 1);
  }

  // Per-ordinal result slots: workers race only on the claim counter,
  // never on the output, so the merge order is declaration order no
  // matter which thread analyzed which function.
  std::vector<std::vector<analysis::Diag>> Slots(Tasks.size());
  std::atomic<size_t> NextTask{0};

  const auto FanOutStart = std::chrono::steady_clock::now();
  auto WorkerBody = [&](unsigned Wix) {
    obs::TraceRecorder::Lane *Lane = Rec ? &Rec->lane(1 + Wix) : nullptr;
    for (;;) {
      const size_t I = NextTask.fetch_add(1);
      if (I >= Tasks.size())
        break;
      const Task &T = Tasks[I];
      const double T0 = Rec ? Rec->nowSec() : 0;
      const auto C0 = std::chrono::steady_clock::now();
      Slots[I] = analysis::analyzeFunction(*T.Section, *T.Function, T.Ordinal,
                                           Opts);
      if (Lane) {
        obs::SpanEvent &E =
            Lane->span(T0, Rec->nowSec() - T0, EventKind::SpanAnalyze,
                       obs::Phase::Analyze);
        E.Host = static_cast<int32_t>(1 + Wix);
        E.Section = T.SectionId;
        E.Function = T.FnId;
      }
      if (Metrics)
        Metrics->observe("analysis.function_sec", secondsSince(C0));
    }
  };

  if (Workers == 1 || Tasks.size() <= 1) {
    WorkerBody(0);
  } else {
    std::vector<std::thread> Pool;
    Pool.reserve(Workers);
    for (unsigned W = 0; W != Workers; ++W)
      Pool.emplace_back(WorkerBody, W);
    for (std::thread &Th : Pool)
      Th.join();
  }
  Result.ParallelPhaseSec = secondsSince(FanOutStart);

  // ---- interprocedural wavefront phase ----------------------------------
  // SCCs of one wave are independent (every callee summary is complete by
  // the barrier below), so workers claim them FCFS exactly like the
  // per-function tasks; per-SCC slots make the merge order a pure
  // function of the module.
  std::vector<analysis::Diag> InterDiags;
  std::atomic<uint64_t> SumHits{0}, SumMisses{0}, SumStores{0},
      SumInvalidated{0};
  if (ip::anyInterprocCheckEnabled(Opts) && !Tasks.empty()) {
    const ip::CallGraph G = ip::CallGraph::build(M);
    const ip::SCCDecomposition D = ip::SCCDecomposition::compute(G);
    const size_t NumSCCs = D.SCCs.size();
    std::vector<ip::FunctionSummary> AllSummaries(G.Nodes.size());
    std::vector<std::vector<analysis::Diag>> SCCSlots(NumSCCs);
    std::vector<SCCSpan> Spans(NumSCCs);

    // Summary-cache keys, bottom-up on the master (cheap: hashing only).
    std::vector<cache::FunctionFingerprint> FPs;
    std::vector<cache::CacheKey> Keys;
    if (SummaryCache) {
      FPs.resize(G.Nodes.size());
      for (const ip::CallGraph::Node &N : G.Nodes)
        FPs[N.Ordinal] = cache::fingerprintFunction(*N.Section, *N.Function,
                                                    SummaryCache->context());
      Keys.resize(NumSCCs);
      for (const std::vector<uint32_t> &Wave : D.Waves)
        for (uint32_t Id : Wave)
          Keys[Id] = summaryKeyOf(G, D, Id, FPs, Keys, Opts);
    }

    auto SummarizeOne = [&](uint32_t SCCId, unsigned Wix) {
      obs::TraceRecorder::Lane *Lane = Rec ? &Rec->lane(1 + Wix) : nullptr;
      const double T0 = Rec ? Rec->nowSec() : 0;
      const auto C0 = std::chrono::steady_clock::now();

      ip::SCCOutput Out;
      bool Hit = false;
      if (SummaryCache) {
        if (std::optional<std::vector<uint8_t>> Bytes =
                SummaryCache->lookupSummary(Keys[SCCId])) {
          if (std::optional<ip::SCCOutput> Decoded =
                  ip::decodeSCCOutput(*Bytes)) {
            Out = std::move(*Decoded);
            Hit = true;
          }
        }
      }
      if (!Hit) {
        Out = ip::summarizeSCC(G, D, SCCId, AllSummaries, Opts);
        if (SummaryCache) {
          SummaryCache->storeSummary(Keys[SCCId], ip::encodeSCCOutput(Out));
          ++SumStores;
          // Name the invalidation: a member whose fingerprint drifted
          // since the last rememberModule is an edit; members the
          // manifest never saw are new, not invalidated.
          bool Invalidated = false;
          for (uint32_t Mb : D.SCCs[SCCId].Members) {
            const ip::CallGraph::Node &N = G.Nodes[Mb];
            cache::RebuildReason Reason = SummaryCache->classifySummaryMiss(
                N.Section->getName(), N.Function->getName(), FPs[Mb]);
            if (Reason != cache::RebuildReason::Hit &&
                Reason != cache::RebuildReason::NewFunction)
              Invalidated = true;
          }
          if (Invalidated)
            ++SumInvalidated;
        }
      }
      if (SummaryCache) {
        if (Hit)
          ++SumHits;
        else
          ++SumMisses;
      }

      for (ip::FunctionSummary &S : Out.Summaries)
        AllSummaries[S.Ordinal] = std::move(S);
      SCCSlots[SCCId] = std::move(Out.Diags);

      if (Lane) {
        // Causal parent: the callee SCC whose summaries landed last —
        // the dependency that actually gated this summarization.
        uint64_t Parent = 0;
        double ParentEnd = -1;
        for (uint32_t Callee : D.SCCs[SCCId].CalleeSCCs)
          if (Spans[Callee].SpanId && Spans[Callee].EndSec > ParentEnd) {
            Parent = Spans[Callee].SpanId;
            ParentEnd = Spans[Callee].EndSec;
          }
        obs::SpanEvent &E =
            Lane->span(T0, Rec->nowSec() - T0, EventKind::SpanSummarize,
                       obs::Phase::Analyze);
        E.Host = static_cast<int32_t>(1 + Wix);
        E.Parent = Parent;
        Spans[SCCId] = {E.spanId(), E.endSec()};
      }
      if (Metrics)
        Metrics->observe("analysis.scc_sec", secondsSince(C0));
    };

    for (const std::vector<uint32_t> &Wave : D.Waves) {
      std::atomic<size_t> NextSCC{0};
      auto WaveBody = [&](unsigned Wix) {
        for (;;) {
          const size_t I = NextSCC.fetch_add(1);
          if (I >= Wave.size())
            break;
          SummarizeOne(Wave[I], Wix);
        }
      };
      if (Workers == 1 || Wave.size() <= 1) {
        WaveBody(0);
      } else {
        std::vector<std::thread> Pool;
        Pool.reserve(Workers);
        for (unsigned W = 0; W != Workers; ++W)
          Pool.emplace_back(WaveBody, W);
        for (std::thread &Th : Pool)
          Th.join();
      }
    }

    for (std::vector<analysis::Diag> &S : SCCSlots)
      InterDiags.insert(InterDiags.end(), std::make_move_iterator(S.begin()),
                        std::make_move_iterator(S.end()));
    // The deadlock detector composes summaries across the whole module;
    // it is cheap and never cached (its verdicts depend on every stage).
    std::vector<analysis::Diag> Deadlocks =
        ip::checkSystolicDeadlock(G, AllSummaries, Opts);
    InterDiags.insert(InterDiags.end(),
                      std::make_move_iterator(Deadlocks.begin()),
                      std::make_move_iterator(Deadlocks.end()));
  }

  // Master tail: ordered merge, the module-level channel pass, and the
  // same finalize step the sequential analyzer uses.
  std::vector<analysis::Diag> Merged;
  for (std::vector<analysis::Diag> &S : Slots)
    Merged.insert(Merged.end(), std::make_move_iterator(S.begin()),
                  std::make_move_iterator(S.end()));
  const double ChanStart = Rec ? Rec->nowSec() : 0;
  std::vector<analysis::Diag> Chan = analysis::checkChannelProtocol(M, Opts);
  Merged.insert(Merged.end(), std::make_move_iterator(Chan.begin()),
                std::make_move_iterator(Chan.end()));
  Merged.insert(Merged.end(), std::make_move_iterator(InterDiags.begin()),
                std::make_move_iterator(InterDiags.end()));
  ip::supersedeChannelMismatch(Merged);
  Result.Analysis.Diags =
      analysis::finalizeModuleDiags(std::move(Merged), Source, Opts, &M);
  Result.Analysis.FunctionsAnalyzed = static_cast<uint32_t>(Tasks.size());
  if (Rec) {
    obs::SpanEvent &E =
        Rec->lane(0).span(ChanStart, Rec->nowSec() - ChanStart,
                          EventKind::SpanCombine, obs::Phase::Analyze);
    E.Host = 0;
  }

  Result.ElapsedSec = secondsSince(RunStart);
  if (Metrics) {
    Metrics->add("analysis.functions", static_cast<double>(Tasks.size()));
    if (SummaryCache) {
      Metrics->add("analysis.summary.hits", static_cast<double>(SumHits));
      Metrics->add("analysis.summary.misses", static_cast<double>(SumMisses));
      Metrics->add("analysis.summary.stores", static_cast<double>(SumStores));
      Metrics->add("analysis.summary.invalidated",
                   static_cast<double>(SumInvalidated));
    }
    const analysis::DiagCounts Counts =
        analysis::countDiags(Result.Analysis.Diags);
    Metrics->add("analysis.diags.errors", static_cast<double>(Counts.Errors));
    Metrics->add("analysis.diags.warnings",
                 static_cast<double>(Counts.Warnings));
    Metrics->setGauge("analysis.workers", Workers);
  }
  return Result;
}
