//===- AnalysisRunner.cpp - Parallel static analysis ----------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "parallel/AnalysisRunner.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

using namespace warpc;
using namespace warpc::parallel;
using warpc::obs::EventKind;

namespace {

/// One function's analysis task: everything a worker needs, resolved on
/// the master before any thread starts.
struct Task {
  const w2::SectionDecl *Section = nullptr;
  const w2::FunctionDecl *Function = nullptr;
  uint32_t Ordinal = 0;
  int32_t SectionId = -1;
  int32_t FnId = -1;
};

double secondsSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
      .count();
}

} // namespace

AnalysisRunResult
parallel::analyzeModuleParallel(const w2::ModuleDecl &M,
                                const std::string &Source,
                                const analysis::AnalysisOptions &Opts,
                                unsigned NumWorkers, obs::TraceRecorder *Rec,
                                obs::MetricsRegistry *Metrics) {
  const auto RunStart = std::chrono::steady_clock::now();
  AnalysisRunResult Result;

  std::vector<Task> Tasks;
  for (size_t S = 0; S != M.numSections(); ++S) {
    const w2::SectionDecl *Section = M.getSection(S);
    for (size_t FI = 0; FI != Section->numFunctions(); ++FI) {
      Task T;
      T.Section = Section;
      T.Function = Section->getFunction(FI);
      T.Ordinal = static_cast<uint32_t>(Tasks.size());
      T.SectionId = static_cast<int32_t>(S);
      Tasks.push_back(T);
    }
  }

  const unsigned Workers = std::max(
      1u, std::min(NumWorkers, static_cast<unsigned>(
                                   std::max<size_t>(1, Tasks.size()))));
  Result.WorkersUsed = Workers;

  if (Rec) {
    // Intern every name and create every lane before a worker exists:
    // interning is not thread-safe, lanes must not reallocate mid-run.
    for (Task &T : Tasks)
      T.FnId = Rec->internFunction(T.Function->getName());
    Rec->makeLanes(Workers + 1);
  }

  // Per-ordinal result slots: workers race only on the claim counter,
  // never on the output, so the merge order is declaration order no
  // matter which thread analyzed which function.
  std::vector<std::vector<analysis::Diag>> Slots(Tasks.size());
  std::atomic<size_t> NextTask{0};

  const auto FanOutStart = std::chrono::steady_clock::now();
  auto WorkerBody = [&](unsigned Wix) {
    obs::TraceRecorder::Lane *Lane = Rec ? &Rec->lane(1 + Wix) : nullptr;
    for (;;) {
      const size_t I = NextTask.fetch_add(1);
      if (I >= Tasks.size())
        break;
      const Task &T = Tasks[I];
      const double T0 = Rec ? Rec->nowSec() : 0;
      const auto C0 = std::chrono::steady_clock::now();
      Slots[I] = analysis::analyzeFunction(*T.Section, *T.Function, T.Ordinal,
                                           Opts);
      if (Lane) {
        obs::SpanEvent &E =
            Lane->span(T0, Rec->nowSec() - T0, EventKind::SpanAnalyze,
                       obs::Phase::Analyze);
        E.Host = static_cast<int32_t>(1 + Wix);
        E.Section = T.SectionId;
        E.Function = T.FnId;
      }
      if (Metrics)
        Metrics->observe("analysis.function_sec", secondsSince(C0));
    }
  };

  if (Workers == 1 || Tasks.size() <= 1) {
    WorkerBody(0);
  } else {
    std::vector<std::thread> Pool;
    Pool.reserve(Workers);
    for (unsigned W = 0; W != Workers; ++W)
      Pool.emplace_back(WorkerBody, W);
    for (std::thread &Th : Pool)
      Th.join();
  }
  Result.ParallelPhaseSec = secondsSince(FanOutStart);

  // Master tail: ordered merge, the module-level channel pass, and the
  // same finalize step the sequential analyzer uses.
  std::vector<analysis::Diag> Merged;
  for (std::vector<analysis::Diag> &S : Slots)
    Merged.insert(Merged.end(), std::make_move_iterator(S.begin()),
                  std::make_move_iterator(S.end()));
  const double ChanStart = Rec ? Rec->nowSec() : 0;
  std::vector<analysis::Diag> Chan = analysis::checkChannelProtocol(M, Opts);
  Merged.insert(Merged.end(), std::make_move_iterator(Chan.begin()),
                std::make_move_iterator(Chan.end()));
  Result.Analysis.Diags =
      analysis::finalizeModuleDiags(std::move(Merged), Source, Opts);
  Result.Analysis.FunctionsAnalyzed = static_cast<uint32_t>(Tasks.size());
  if (Rec) {
    obs::SpanEvent &E =
        Rec->lane(0).span(ChanStart, Rec->nowSec() - ChanStart,
                          EventKind::SpanCombine, obs::Phase::Analyze);
    E.Host = 0;
  }

  Result.ElapsedSec = secondsSince(RunStart);
  if (Metrics) {
    Metrics->add("analysis.functions", static_cast<double>(Tasks.size()));
    const analysis::DiagCounts Counts =
        analysis::countDiags(Result.Analysis.Diags);
    Metrics->add("analysis.diags.errors", static_cast<double>(Counts.Errors));
    Metrics->add("analysis.diags.warnings",
                 static_cast<double>(Counts.Warnings));
    Metrics->setGauge("analysis.workers", Workers);
  }
  return Result;
}
