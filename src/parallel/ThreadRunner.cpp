//===- ThreadRunner.cpp - Real parallel compilation --------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "parallel/ThreadRunner.h"

#include "support/Timer.h"

#include <atomic>
#include <cassert>
#include <thread>
#include <vector>

using namespace warpc;
using namespace warpc::parallel;

ThreadRunResult parallel::compileModuleParallel(
    const std::string &Source, const codegen::MachineModel &MM,
    unsigned NumWorkers, const FailureInjector *InjectFailure) {
  assert(NumWorkers > 0 && "need at least one worker");
  ThreadRunResult Result;
  Timer Total;

  // Phase 1: the master parses and checks sequentially; errors abort the
  // compilation here, before any parallel work starts.
  Timer PhaseTimer;
  driver::ParseResult Parsed = driver::parseAndCheck(Source);
  Result.Phase1Sec = PhaseTimer.seconds();
  Result.Module.Diags.merge(Parsed.Diags);
  Result.Module.Phase1 = Parsed.Metrics;
  if (!Parsed.succeeded()) {
    Result.ElapsedSec = Total.seconds();
    return Result;
  }

  // Build the task list: one (section, function) pair per function master.
  struct Task {
    const w2::SectionDecl *Section;
    const w2::FunctionDecl *Function;
  };
  std::vector<Task> Tasks;
  for (size_t S = 0; S != Parsed.Module->numSections(); ++S) {
    const w2::SectionDecl *Section = Parsed.Module->getSection(S);
    for (size_t F = 0; F != Section->numFunctions(); ++F)
      Tasks.push_back(Task{Section, Section->getFunction(F)});
  }

  // Phases 2+3: a pool of function-master threads drains the task list
  // first-come-first-served, one function per claim (the paper's
  // scheduling strategy). Results land in declaration order.
  PhaseTimer.restart();
  std::vector<driver::FunctionResult> FnResults(Tasks.size());
  std::atomic<size_t> NextTask{0};
  unsigned Workers =
      static_cast<unsigned>(std::min<size_t>(NumWorkers, Tasks.size()));
  Result.WorkersUsed = Workers;

  std::vector<char> Produced(Tasks.size(), 0);
  auto Worker = [&] {
    while (true) {
      size_t Index = NextTask.fetch_add(1);
      if (Index >= Tasks.size())
        return;
      // A "failed" master vanishes without producing its result file.
      if (InjectFailure && (*InjectFailure)(Index))
        continue;
      FnResults[Index] =
          driver::compileFunction(*Tasks[Index].Section,
                                  *Tasks[Index].Function, MM);
      Produced[Index] = 1;
    }
  };
  if (Workers <= 1) {
    Worker();
  } else {
    std::vector<std::thread> Pool;
    Pool.reserve(Workers);
    for (unsigned W = 0; W != Workers; ++W)
      Pool.emplace_back(Worker);
    for (std::thread &T : Pool)
      T.join();
  }
  // Recovery: any function whose master died is recompiled here, on the
  // master's own machine, before assembly starts.
  for (size_t Index = 0; Index != Tasks.size(); ++Index) {
    if (Produced[Index])
      continue;
    FnResults[Index] = driver::compileFunction(*Tasks[Index].Section,
                                               *Tasks[Index].Function, MM);
    ++Result.FunctionsRecovered;
  }
  Result.ParallelPhaseSec = PhaseTimer.seconds();

  // Phase 4: the section masters combine results; the master links.
  PhaseTimer.restart();
  driver::assembleAndLink(*Parsed.Module, std::move(FnResults),
                          Result.Module);
  Result.Phase4Sec = PhaseTimer.seconds();

  Result.Module.Succeeded = !Result.Module.Diags.hasErrors();
  Result.ElapsedSec = Total.seconds();
  return Result;
}
