//===- ThreadRunner.cpp - Real parallel compilation --------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "parallel/ThreadRunner.h"

#include "parallel/RetryRound.h"
#include "support/Timer.h"

#include <atomic>
#include <cassert>
#include <thread>
#include <vector>

using namespace warpc;
using namespace warpc::parallel;

namespace {

/// splitmix64 finalizer over a (seed, function, attempt, salt) tuple:
/// a stateless uniform draw in [0, 1).
double hashDraw(uint64_t Seed, uint64_t Fn, uint64_t Attempt, uint64_t Salt) {
  uint64_t X = Seed + 0x9E3779B97F4A7C15ULL * (Fn + 1) +
               0xBF58476D1CE4E5B9ULL * (Attempt + 1) +
               0x94D049BB133111EBULL * (Salt + 1);
  X ^= X >> 30;
  X *= 0xBF58476D1CE4E5B9ULL;
  X ^= X >> 27;
  X *= 0x94D049BB133111EBULL;
  X ^= X >> 31;
  return static_cast<double>(X >> 11) * (1.0 / 9007199254740992.0);
}

} // namespace

FaultInjection parallel::makeSeededInjection(uint64_t Seed, double VanishProb,
                                             double PoisonProb) {
  FaultInjection Inj;
  Inj.Vanish = [Seed, VanishProb](size_t Fn, unsigned Attempt) {
    return hashDraw(Seed, Fn, Attempt, 1) < VanishProb;
  };
  Inj.Poison = [Seed, PoisonProb](size_t Fn, unsigned Attempt) {
    return hashDraw(Seed, Fn, Attempt, 2) < PoisonProb;
  };
  return Inj;
}

ThreadRunResult parallel::compileModuleParallel(
    const std::string &Source, const codegen::MachineModel &MM,
    unsigned NumWorkers, const driver::FaultPolicy &Policy,
    const FaultInjection *Inject, obs::TraceRecorder *Rec,
    obs::MetricsRegistry *Metrics, driver::FunctionResultCache *Cache) {
  assert(NumWorkers > 0 && "need at least one worker");
  assert(Policy.MaxAttempts > 0 && "need at least one attempt");
  assert((!Rec || Rec->domain() == obs::ClockDomain::Steady) &&
         "the thread engine records steady-clock timestamps");
  using obs::EventKind;
  using obs::FaultCause;
  ThreadRunResult Result;
  Timer Total;

  // Phase 1: the master parses and checks sequentially; errors abort the
  // compilation here, before any parallel work starts.
  Timer PhaseTimer;
  const double ParseStart = Rec ? Rec->nowSec() : 0;
  driver::ParseResult Parsed = driver::parseAndCheck(Source, Metrics);
  Result.Phase1Sec = PhaseTimer.seconds();
  if (Rec) {
    obs::SpanEvent &E = Rec->lane(0).span(
        ParseStart, Rec->nowSec() - ParseStart, EventKind::SpanParse,
        obs::Phase::Parse);
    E.Host = 0;
  }
  Result.Module.Diags.merge(Parsed.Diags);
  Result.Module.Phase1 = Parsed.Metrics;
  if (!Parsed.succeeded()) {
    Result.ElapsedSec = Total.seconds();
    if (Rec)
      Rec->setRunTotals(Result.ElapsedSec, 0.0, 0);
    return Result;
  }

  // Build the task list: one (section, function) pair per function master.
  struct Task {
    const w2::SectionDecl *Section;
    const w2::FunctionDecl *Function;
    int32_t SectionId = -1;
    int32_t FnId = -1; ///< Interned trace id (interned before any thread).
  };
  std::vector<Task> Tasks;
  for (size_t S = 0; S != Parsed.Module->numSections(); ++S) {
    const w2::SectionDecl *Section = Parsed.Module->getSection(S);
    for (size_t F = 0; F != Section->numFunctions(); ++F) {
      Task T{Section, Section->getFunction(F), static_cast<int32_t>(S), -1};
      if (Rec)
        T.FnId = Rec->internFunction(T.Function->getName());
      else
        T.FnId = static_cast<int32_t>(Tasks.size());
      Tasks.push_back(T);
    }
  }

  // Phases 2+3: a pool of function-master threads drains the pending list
  // first-come-first-served, one function per claim (the paper's
  // scheduling strategy). Results land in declaration order. Failed
  // attempts — vanished masters and results that fail validation — are
  // retried in later rounds by whichever worker claims them, up to the
  // attempt cap; the master then recompiles the leftovers itself, so the
  // run always completes.
  PhaseTimer.restart();
  std::vector<driver::FunctionResult> FnResults(Tasks.size());
  unsigned Workers =
      static_cast<unsigned>(std::min<size_t>(NumWorkers, Tasks.size()));
  Result.WorkersUsed = Workers;

  // Lane 0 belongs to the master; worker thread i records on lane 1 + i.
  // All lanes exist before any thread starts.
  if (Rec)
    Rec->makeLanes(Workers + 1);

  std::atomic<unsigned> Poisoned{0};
  RetryRoundTracker Rounds(Tasks.size());

  // Cache pre-filter: the master probes the cache once per function and
  // replays hits in place, so only misses ever enter the pending list.
  // Sequential and master-side, which keeps the result deterministic no
  // matter the worker count.
  if (Cache) {
    for (size_t Index = 0; Index != Tasks.size(); ++Index) {
      const Task &T = Tasks[Index];
      const double T0 = Rec ? Rec->nowSec() : 0;
      std::optional<driver::FunctionResult> Hit =
          Cache->lookup(*T.Section, *T.Function);
      if (Hit && driver::validateFunctionResult(*T.Section, *T.Function,
                                                *Hit)) {
        FnResults[Index] = std::move(*Hit);
        Rounds.produced(Index);
        ++Result.CacheHits;
        if (Rec) {
          obs::SpanEvent &E = Rec->lane(0).span(T0, Rec->nowSec() - T0,
                                                EventKind::SpanCacheHit,
                                                obs::Phase::Compile);
          E.Host = 0;
          E.Section = T.SectionId;
          E.Function = T.FnId;
        }
      } else {
        ++Result.CacheMisses;
      }
    }
    Rounds.settleRound();
  }

  for (unsigned Attempt = 1;
       Attempt <= Policy.MaxAttempts && !Rounds.allProduced(); ++Attempt) {
    Rounds.beginRound(Attempt);
    const std::vector<size_t> &Pending = Rounds.pending();

    std::atomic<size_t> NextTask{0};
    auto Worker = [&](unsigned Wix) {
      obs::TraceRecorder::Lane *Lane = Rec ? &Rec->lane(1 + Wix) : nullptr;
      const int32_t HostId = static_cast<int32_t>(1 + Wix);
      auto Tag = [&](obs::SpanEvent &E, const Task &T) {
        E.Host = HostId;
        E.Section = T.SectionId;
        E.Function = T.FnId;
        E.Attempt = static_cast<int32_t>(Attempt);
      };
      while (true) {
        size_t Slot = NextTask.fetch_add(1);
        if (Slot >= Pending.size())
          return;
        size_t Index = Pending[Slot];
        const Task &T = Tasks[Index];
        Timer AttemptTimer;
        const double T0 = Rec ? Rec->nowSec() : 0;
        // A "failed" master vanishes without producing its result file.
        if (Inject && Inject->Vanish && Inject->Vanish(Index, Attempt)) {
          if (Metrics)
            Metrics->add("fault.workers_vanished");
          if (Lane) {
            obs::SpanEvent &E = Lane->instant(
                Rec->nowSec(), EventKind::AttemptLost, obs::Phase::Recovery);
            Tag(E, T);
            E.Cause = FaultCause::CrashDuringCompile;
          }
          continue;
        }
        driver::FunctionResult R =
            driver::compileFunction(*T.Section, *T.Function, MM, Metrics);
        if (Inject && Inject->Poison && Inject->Poison(Index, Attempt)) {
          // A sick master writes a truncated result file.
          R.Program.Image.clear();
          R.Program.CodeWords = 0;
        }
        // The section master accepts a result file only after checking it
        // names the right task and carries a complete image.
        if (!driver::validateFunctionResult(*T.Section, *T.Function, R)) {
          Poisoned.fetch_add(1);
          if (Metrics)
            Metrics->add("fault.poisoned_results");
          if (Lane) {
            obs::SpanEvent &E = Lane->instant(
                Rec->nowSec(), EventKind::ResultRejected,
                obs::Phase::Recovery);
            Tag(E, T);
            E.Cause = FaultCause::PoisonedResult;
          }
          continue;
        }
        if (Lane) {
          const double Now = Rec->nowSec();
          Tag(Lane->span(T0, Now - T0, EventKind::SpanCompile,
                         obs::Phase::Compile),
              T);
          Tag(Lane->instant(Now, EventKind::FunctionDone,
                            obs::Phase::Compile),
              T);
        }
        if (Metrics)
          Metrics->observe("thread.compile_sec", AttemptTimer.seconds());
        if (Cache)
          Cache->store(*T.Section, *T.Function, R);
        FnResults[Index] = std::move(R);
        Rounds.produced(Index);
      }
    };

    unsigned RoundWorkers =
        static_cast<unsigned>(std::min<size_t>(Workers, Pending.size()));
    if (RoundWorkers <= 1) {
      Worker(0);
    } else {
      std::vector<std::thread> Pool;
      Pool.reserve(RoundWorkers);
      for (unsigned W = 0; W != RoundWorkers; ++W)
        Pool.emplace_back(Worker, W);
      for (std::thread &T : Pool)
        T.join();
    }

    Rounds.settleRound();
  }
  Result.PoisonedResultsDetected = Poisoned.load();
  Result.RetriesAttempted = Rounds.retriesAttempted();
  Result.FunctionsReassigned = Rounds.functionsReassigned();

  // Recovery of last resort: any function still missing after the attempt
  // cap is recompiled here, on the master's own machine, before assembly
  // starts. The master trusts its own results — no injection applies.
  for (size_t Index : Rounds.pending()) {
    const Task &T = Tasks[Index];
    const double T0 = Rec ? Rec->nowSec() : 0;
    FnResults[Index] =
        driver::compileFunction(*T.Section, *T.Function, MM, Metrics);
    if (Cache)
      Cache->store(*T.Section, *T.Function, FnResults[Index]);
    ++Result.FunctionsRecovered;
    if (Rec) {
      const double Now = Rec->nowSec();
      obs::SpanEvent &E =
          Rec->lane(0).span(T0, Now - T0, EventKind::SpanMasterRecompile,
                            obs::Phase::Recovery);
      E.Host = 0;
      E.Section = T.SectionId;
      E.Function = T.FnId;
      E.Cause = FaultCause::AttemptCapReached;
      obs::SpanEvent &D = Rec->lane(0).instant(Now, EventKind::FunctionDone,
                                               obs::Phase::Compile);
      D.Host = 0;
      D.Section = T.SectionId;
      D.Function = T.FnId;
      D.Attempt = 0; // master-fallback win
      D.Cause = FaultCause::AttemptCapReached;
    }
  }
  Result.ParallelPhaseSec = PhaseTimer.seconds();

  // Phase 4: the section masters combine results; the master links.
  PhaseTimer.restart();
  const double AsmStart = Rec ? Rec->nowSec() : 0;
  driver::assembleAndLink(*Parsed.Module, std::move(FnResults),
                          Result.Module, Metrics);
  Result.Phase4Sec = PhaseTimer.seconds();

  Result.Module.Succeeded = !Result.Module.Diags.hasErrors();
  Result.ElapsedSec = Total.seconds();
  if (Rec) {
    const double Now = Rec->nowSec();
    obs::SpanEvent &E = Rec->lane(0).span(
        AsmStart, Now - AsmStart, EventKind::SpanAssembly,
        obs::Phase::Assembly);
    E.Host = 0;
    Rec->lane(0).instant(Now, EventKind::RunComplete, obs::Phase::Assembly)
        .Host = 0;
    Rec->setTopology(Workers + 1, static_cast<uint32_t>(
                                      Parsed.Module->numSections()));
    Rec->setRunTotals(Result.ElapsedSec, 0.0,
                      static_cast<uint32_t>(Tasks.size()));
  }
  if (Metrics) {
    Metrics->add("fault.retries_attempted", Result.RetriesAttempted);
    Metrics->add("fault.functions_reassigned", Result.FunctionsReassigned);
    Metrics->add("fault.functions_recovered", Result.FunctionsRecovered);
    Metrics->setGauge("thread.workers_used", Result.WorkersUsed);
  }
  return Result;
}

ThreadRunResult parallel::compileModuleParallel(
    const std::string &Source, const codegen::MachineModel &MM,
    unsigned NumWorkers, const FailureInjector *InjectFailure) {
  // Legacy behavior: a single worker attempt per function; every function
  // whose master died is recompiled by the master and counted in
  // FunctionsRecovered.
  driver::FaultPolicy OneShot;
  OneShot.MaxAttempts = 1;
  if (!InjectFailure || !*InjectFailure)
    return compileModuleParallel(Source, MM, NumWorkers, OneShot, nullptr);
  FaultInjection Inj;
  Inj.Vanish = [InjectFailure](size_t Fn, unsigned) {
    return (*InjectFailure)(Fn);
  };
  return compileModuleParallel(Source, MM, NumWorkers, OneShot, &Inj);
}
