//===- ThreadRunner.cpp - Real parallel compilation --------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "parallel/ThreadRunner.h"

#include "obs/TimeSeries.h"
#include "parallel/RetryRound.h"
#include "support/Timer.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <thread>
#include <vector>

using namespace warpc;
using namespace warpc::parallel;

FaultInjection parallel::makeSeededInjection(uint64_t Seed, double VanishProb,
                                             double PoisonProb) {
  // Salts 1 and 2 are the thread engine's draws; the process engine's
  // ProcessFaultPlan uses salts 3+ of the same shared generator.
  FaultInjection Inj;
  Inj.Vanish = [Seed, VanishProb](size_t Fn, unsigned Attempt) {
    return driver::seededFaultDraw(Seed, Fn, Attempt, 1) < VanishProb;
  };
  Inj.Poison = [Seed, PoisonProb](size_t Fn, unsigned Attempt) {
    return driver::seededFaultDraw(Seed, Fn, Attempt, 2) < PoisonProb;
  };
  return Inj;
}

ThreadRunResult parallel::compileModuleParallel(
    const std::string &Source, const codegen::MachineModel &MM,
    unsigned NumWorkers, const driver::FaultPolicy &Policy,
    const FaultInjection *Inject, obs::TraceRecorder *Rec,
    obs::MetricsRegistry *Metrics, driver::FunctionResultCache *Cache) {
  assert(NumWorkers > 0 && "need at least one worker");
  assert(Policy.MaxAttempts > 0 && "need at least one attempt");
  assert((!Rec || Rec->domain() == obs::ClockDomain::Steady) &&
         "the thread engine records steady-clock timestamps");
  using obs::EventKind;
  using obs::FaultCause;
  ThreadRunResult Result;
  Timer Total;

  // Phase 1: the master parses and checks sequentially; errors abort the
  // compilation here, before any parallel work starts.
  Timer PhaseTimer;
  const double ParseStart = Rec ? Rec->nowSec() : 0;
  driver::ParseResult Parsed = driver::parseAndCheck(Source, Metrics);
  Result.Phase1Sec = PhaseTimer.seconds();
  // Root of the run's causal chain: every dispatch edge below ultimately
  // parents back to the parse span.
  uint64_t ParseId = 0;
  if (Rec) {
    obs::SpanEvent &E = Rec->lane(0).span(
        ParseStart, Rec->nowSec() - ParseStart, EventKind::SpanParse,
        obs::Phase::Parse);
    E.Host = 0;
    ParseId = E.spanId();
  }
  Result.Module.Diags.merge(Parsed.Diags);
  Result.Module.Phase1 = Parsed.Metrics;
  if (!Parsed.succeeded()) {
    Result.ElapsedSec = Total.seconds();
    if (Rec)
      Rec->setRunTotals(Result.ElapsedSec, 0.0, 0);
    return Result;
  }

  // Build the task list: one (section, function) pair per function master.
  struct Task {
    const w2::SectionDecl *Section;
    const w2::FunctionDecl *Function;
    int32_t SectionId = -1;
    int32_t FnId = -1; ///< Interned trace id (interned before any thread).
  };
  std::vector<Task> Tasks;
  for (size_t S = 0; S != Parsed.Module->numSections(); ++S) {
    const w2::SectionDecl *Section = Parsed.Module->getSection(S);
    for (size_t F = 0; F != Section->numFunctions(); ++F) {
      Task T{Section, Section->getFunction(F), static_cast<int32_t>(S), -1};
      if (Rec)
        T.FnId = Rec->internFunction(T.Function->getName());
      else
        T.FnId = static_cast<int32_t>(Tasks.size());
      Tasks.push_back(T);
    }
  }

  // Phases 2+3: a pool of function-master threads drains the pending list
  // first-come-first-served, one function per claim (the paper's
  // scheduling strategy). Results land in declaration order. Failed
  // attempts — vanished masters and results that fail validation — are
  // retried in later rounds by whichever worker claims them, up to the
  // attempt cap; the master then recompiles the leftovers itself, so the
  // run always completes.
  PhaseTimer.restart();
  std::vector<driver::FunctionResult> FnResults(Tasks.size());
  unsigned Workers =
      static_cast<unsigned>(std::min<size_t>(NumWorkers, Tasks.size()));
  Result.WorkersUsed = Workers;

  // Lane 0 belongs to the master; worker thread i records on lane 1 + i.
  // All lanes exist before any thread starts.
  if (Rec)
    Rec->makeLanes(Workers + 1);
  const int32_t RetryCtr =
      Rec ? Rec->internCounter("scheduler.retries") : -1;
  const int32_t ReassignCtr =
      Rec ? Rec->internCounter("scheduler.reassignments") : -1;

  std::atomic<unsigned> Poisoned{0};
  RetryRoundTracker Rounds(Tasks.size());

  // Causal parent of each function's next attempt: the dispatch edge. A
  // fresh function chains off the parse (the master's pending list); a
  // retried one chains off the loss/rejection that sent it back. Each
  // index is touched only by its single claimant within a round, and
  // rounds are joined, so plain slots are race-free.
  std::vector<uint64_t> AttemptParent(Tasks.size(), ParseId);
  // Span id of the newest accepted result, the causal parent of assembly.
  // Ids increase with emission order, so max = last result that landed.
  std::atomic<uint64_t> LastResultId{0};
  auto NoteResult = [&LastResultId](uint64_t Id) {
    uint64_t Cur = LastResultId.load(std::memory_order_relaxed);
    while (Cur < Id && !LastResultId.compare_exchange_weak(
                           Cur, Id, std::memory_order_relaxed)) {
    }
  };

  // Cache pre-filter: the master probes the cache once per function and
  // replays hits in place, so only misses ever enter the pending list.
  // Sequential and master-side, which keeps the result deterministic no
  // matter the worker count.
  if (Cache) {
    for (size_t Index = 0; Index != Tasks.size(); ++Index) {
      const Task &T = Tasks[Index];
      const double T0 = Rec ? Rec->nowSec() : 0;
      std::optional<driver::FunctionResult> Hit =
          Cache->lookup(*T.Section, *T.Function);
      if (Hit && driver::validateFunctionResult(*T.Section, *T.Function,
                                                *Hit)) {
        FnResults[Index] = std::move(*Hit);
        Rounds.produced(Index);
        ++Result.CacheHits;
        if (Rec) {
          obs::SpanEvent &E = Rec->lane(0).span(T0, Rec->nowSec() - T0,
                                                EventKind::SpanCacheHit,
                                                obs::Phase::Compile);
          E.Host = 0;
          E.Section = T.SectionId;
          E.Function = T.FnId;
          E.Parent = ParseId;
          NoteResult(E.spanId());
        }
      } else {
        ++Result.CacheMisses;
      }
    }
    Rounds.settleRound();
  }

  // --- Telemetry sampler: a steady-clock thread polls the gauges into
  // bounded ring buffers. It reads only atomics and never touches the
  // recorder; the series become counter tracks after every worker joins.
  std::atomic<size_t> Produced{Tasks.size() - Rounds.pending().size()};
  std::atomic<unsigned> InFlight{0};
  std::vector<std::atomic<double>> WorkerBusySec(Workers);
  const double HitRate =
      (Result.CacheHits + Result.CacheMisses) > 0
          ? static_cast<double>(Result.CacheHits) /
                (Result.CacheHits + Result.CacheMisses)
          : 0.0;
  obs::TimeSeriesSet Telemetry;
  std::atomic<bool> StopSampler{false};
  std::thread SamplerThread;
  if (Rec) {
    Telemetry.registerGauge("sched.tasks_pending", [&Tasks, &Produced] {
      return static_cast<double>(Tasks.size() -
                                 Produced.load(std::memory_order_relaxed));
    });
    Telemetry.registerGauge("sched.inflight_compiles", [&InFlight] {
      return static_cast<double>(InFlight.load(std::memory_order_relaxed));
    });
    Telemetry.registerGauge("cache.hit_rate", [HitRate] { return HitRate; });
    for (unsigned W = 0; W != Workers; ++W)
      Telemetry.registerGauge(
          "host.busy.w" + std::to_string(W + 1), [&WorkerBusySec, W, Rec] {
            double Now = Rec->nowSec();
            if (Now <= 0)
              return 0.0;
            return std::min(
                1.0, WorkerBusySec[W].load(std::memory_order_relaxed) / Now);
          });
    SamplerThread = std::thread([&] {
      // Runs are milliseconds long, so the period is sub-millisecond to
      // land enough samples; the ring decimates if the run drags on.
      while (!StopSampler.load(std::memory_order_relaxed)) {
        Telemetry.sampleAll(Rec->nowSec());
        std::this_thread::sleep_for(std::chrono::microseconds(250));
      }
    });
  }

  for (unsigned Attempt = 1;
       Attempt <= Policy.MaxAttempts && !Rounds.allProduced(); ++Attempt) {
    Rounds.beginRound(Attempt);
    const std::vector<size_t> &Pending = Rounds.pending();

    std::atomic<size_t> NextTask{0};
    auto Worker = [&](unsigned Wix) {
      obs::TraceRecorder::Lane *Lane = Rec ? &Rec->lane(1 + Wix) : nullptr;
      const int32_t HostId = static_cast<int32_t>(1 + Wix);
      auto Tag = [&](obs::SpanEvent &E, const Task &T) {
        E.Host = HostId;
        E.Section = T.SectionId;
        E.Function = T.FnId;
        E.Attempt = static_cast<int32_t>(Attempt);
      };
      while (true) {
        size_t Slot = NextTask.fetch_add(1);
        if (Slot >= Pending.size())
          return;
        size_t Index = Pending[Slot];
        const Task &T = Tasks[Index];
        Timer AttemptTimer;
        const double T0 = Rec ? Rec->nowSec() : 0;
        // A "failed" master vanishes without producing its result file.
        if (Inject && Inject->Vanish && Inject->Vanish(Index, Attempt)) {
          if (Metrics)
            Metrics->add("fault.workers_vanished");
          if (Lane) {
            obs::SpanEvent &E = Lane->instant(
                Rec->nowSec(), EventKind::AttemptLost, obs::Phase::Recovery);
            Tag(E, T);
            E.Cause = FaultCause::CrashDuringCompile;
            E.Parent = AttemptParent[Index];
            AttemptParent[Index] = E.spanId();
          }
          continue;
        }
        InFlight.fetch_add(1, std::memory_order_relaxed);
        driver::FunctionResult R =
            driver::compileFunction(*T.Section, *T.Function, MM, Metrics);
        InFlight.fetch_sub(1, std::memory_order_relaxed);
        WorkerBusySec[Wix].fetch_add(AttemptTimer.seconds(),
                                     std::memory_order_relaxed);
        if (Inject && Inject->Poison && Inject->Poison(Index, Attempt)) {
          // A sick master writes a truncated result file.
          R.Program.Image.clear();
          R.Program.CodeWords = 0;
        }
        // The section master accepts a result file only after checking it
        // names the right task and carries a complete image.
        if (!driver::validateFunctionResult(*T.Section, *T.Function, R)) {
          Poisoned.fetch_add(1);
          if (Metrics)
            Metrics->add("fault.poisoned_results");
          if (Lane) {
            obs::SpanEvent &E = Lane->instant(
                Rec->nowSec(), EventKind::ResultRejected,
                obs::Phase::Recovery);
            Tag(E, T);
            E.Cause = FaultCause::PoisonedResult;
            E.Parent = AttemptParent[Index];
            AttemptParent[Index] = E.spanId();
          }
          continue;
        }
        if (Lane) {
          const double Now = Rec->nowSec();
          obs::SpanEvent &C = Lane->span(T0, Now - T0, EventKind::SpanCompile,
                                         obs::Phase::Compile);
          Tag(C, T);
          C.Parent = AttemptParent[Index];
          obs::SpanEvent &D = Lane->instant(Now, EventKind::FunctionDone,
                                            obs::Phase::Compile);
          Tag(D, T);
          D.Parent = C.spanId();
          NoteResult(D.spanId());
        }
        if (Metrics)
          Metrics->observe("thread.compile_sec", AttemptTimer.seconds());
        if (Cache)
          Cache->store(*T.Section, *T.Function, R);
        FnResults[Index] = std::move(R);
        Rounds.produced(Index);
        Produced.fetch_add(1, std::memory_order_relaxed);
      }
    };

    unsigned RoundWorkers =
        static_cast<unsigned>(std::min<size_t>(Workers, Pending.size()));
    if (RoundWorkers <= 1) {
      Worker(0);
    } else {
      std::vector<std::thread> Pool;
      Pool.reserve(RoundWorkers);
      for (unsigned W = 0; W != RoundWorkers; ++W)
        Pool.emplace_back(Worker, W);
      for (std::thread &T : Pool)
        T.join();
    }

    Rounds.settleRound();
    // Workers are joined between rounds, so the master may sample the
    // cumulative scheduler activity onto its own lane.
    if (Rec) {
      const double Now = Rec->nowSec();
      if (RetryCtr >= 0)
        Rec->lane(0).counter(Now, RetryCtr, Rounds.retriesAttempted());
      if (ReassignCtr >= 0)
        Rec->lane(0).counter(Now, ReassignCtr, Rounds.functionsReassigned());
    }
  }
  Result.PoisonedResultsDetected = Poisoned.load();
  Result.RetriesAttempted = Rounds.retriesAttempted();
  Result.FunctionsReassigned = Rounds.functionsReassigned();

  // Recovery of last resort: any function still missing after the attempt
  // cap is recompiled here, on the master's own machine, before assembly
  // starts. The master trusts its own results — no injection applies.
  for (size_t Index : Rounds.pending()) {
    const Task &T = Tasks[Index];
    const double T0 = Rec ? Rec->nowSec() : 0;
    FnResults[Index] =
        driver::compileFunction(*T.Section, *T.Function, MM, Metrics);
    if (Cache)
      Cache->store(*T.Section, *T.Function, FnResults[Index]);
    ++Result.FunctionsRecovered;
    Produced.fetch_add(1, std::memory_order_relaxed);
    if (Rec) {
      const double Now = Rec->nowSec();
      obs::SpanEvent &E =
          Rec->lane(0).span(T0, Now - T0, EventKind::SpanMasterRecompile,
                            obs::Phase::Recovery);
      E.Host = 0;
      E.Section = T.SectionId;
      E.Function = T.FnId;
      E.Cause = FaultCause::AttemptCapReached;
      E.Parent = AttemptParent[Index];
      obs::SpanEvent &D = Rec->lane(0).instant(Now, EventKind::FunctionDone,
                                               obs::Phase::Compile);
      D.Host = 0;
      D.Section = T.SectionId;
      D.Function = T.FnId;
      D.Attempt = 0; // master-fallback win
      D.Cause = FaultCause::AttemptCapReached;
      D.Parent = E.spanId();
      NoteResult(D.spanId());
    }
  }
  Result.ParallelPhaseSec = PhaseTimer.seconds();

  // Phase 4: the section masters combine results; the master links.
  PhaseTimer.restart();
  const double AsmStart = Rec ? Rec->nowSec() : 0;
  driver::assembleAndLink(*Parsed.Module, std::move(FnResults),
                          Result.Module, Metrics);
  Result.Phase4Sec = PhaseTimer.seconds();

  Result.Module.Succeeded = !Result.Module.Diags.hasErrors();
  Result.ElapsedSec = Total.seconds();
  if (SamplerThread.joinable()) {
    StopSampler.store(true, std::memory_order_relaxed);
    SamplerThread.join();
  }
  if (Rec) {
    const double Now = Rec->nowSec();
    obs::SpanEvent &E = Rec->lane(0).span(
        AsmStart, Now - AsmStart, EventKind::SpanAssembly,
        obs::Phase::Assembly);
    E.Host = 0;
    E.Parent = LastResultId.load() ? LastResultId.load() : ParseId;
    obs::SpanEvent &RC =
        Rec->lane(0).instant(Now, EventKind::RunComplete,
                             obs::Phase::Assembly);
    RC.Host = 0;
    RC.Parent = E.spanId();
    Rec->setTopology(Workers + 1, static_cast<uint32_t>(
                                      Parsed.Module->numSections()));
    Rec->setRunTotals(Result.ElapsedSec, 0.0,
                      static_cast<uint32_t>(Tasks.size()));
    // Close the series with a final sample, materialize them as counter
    // tracks on the master lane, and flag anomalies in the trace.
    Telemetry.sampleAll(Now);
    std::vector<obs::TimeSeries> Series = Telemetry.snapshot();
    obs::emitCounterTracks(*Rec, 0, Series);
    for (const obs::Anomaly &A : obs::detectAnomalies(Series)) {
      obs::SpanEvent &AE = Rec->lane(0).instant(
          A.TSec, EventKind::AnomalyDetected, obs::Phase::Recovery);
      AE.Host = A.Host;
    }
  }
  if (Metrics) {
    Metrics->add("fault.retries_attempted", Result.RetriesAttempted);
    Metrics->add("fault.functions_reassigned", Result.FunctionsReassigned);
    Metrics->add("fault.functions_recovered", Result.FunctionsRecovered);
    Metrics->setGauge("thread.workers_used", Result.WorkersUsed);
  }
  return Result;
}

ThreadRunResult parallel::compileModuleParallel(
    const std::string &Source, const codegen::MachineModel &MM,
    unsigned NumWorkers, const FailureInjector *InjectFailure) {
  // Legacy behavior: a single worker attempt per function; every function
  // whose master died is recompiled by the master and counted in
  // FunctionsRecovered.
  driver::FaultPolicy OneShot;
  OneShot.MaxAttempts = 1;
  if (!InjectFailure || !*InjectFailure)
    return compileModuleParallel(Source, MM, NumWorkers, OneShot, nullptr);
  FaultInjection Inj;
  Inj.Vanish = [InjectFailure](size_t Fn, unsigned) {
    return (*InjectFailure)(Fn);
  };
  return compileModuleParallel(Source, MM, NumWorkers, OneShot, &Inj);
}
