//===- ProcessRunner.cpp - Fork/exec parallel compilation -----------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "parallel/ProcessRunner.h"

#include "cache/CompileCache.h"
#include "obs/TimeSeries.h"
#include "obs/TraceContext.h"
#include "parallel/RetryRound.h"
#include "parallel/Scheduler.h"
#include "support/BinaryStream.h"
#include "support/Timer.h"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <thread>

using namespace warpc;
using namespace warpc::parallel;

std::string parallel::defaultWorkerBinary() {
  if (const char *Env = std::getenv("WARPC_WORKER_BIN"))
    if (*Env)
      return Env;
  // A warp-worker next to the running executable (the build tree layout
  // and any sane install layout).
  char Buf[4096];
  ssize_t N = ::readlink("/proc/self/exe", Buf, sizeof(Buf) - 1);
  if (N > 0) {
    Buf[N] = '\0';
    std::string Self(Buf);
    size_t Slash = Self.rfind('/');
    if (Slash != std::string::npos) {
      std::string Candidate = Self.substr(0, Slash + 1) + "warp-worker";
      if (::access(Candidate.c_str(), X_OK) == 0)
        return Candidate;
    }
  }
  return "";
}

//===----------------------------------------------------------------------===//
// ProcessPool
//===----------------------------------------------------------------------===//

ProcessPool::ProcessPool(std::string WorkerBinary)
    : Binary(std::move(WorkerBinary)) {}

ProcessPool::~ProcessPool() {
  // Reap everything: a master torn down mid-run must not leak orphans.
  for (unsigned W = 0; W != Workers.size(); ++W)
    kill(W);
}

unsigned ProcessPool::aliveCount() const {
  unsigned N = 0;
  for (const Worker &W : Workers)
    N += W.Alive;
  return N;
}

int ProcessPool::spawn(const wire::InitMsg &Init) {
  // An unusable binary fails here, before the fork: exec failure inside
  // the child would surface only as an instant EOF, burning a spawn (and
  // an attempt) per dispatch until the budget declared the pool broken.
  if (Binary.empty() || ::access(Binary.c_str(), X_OK) != 0)
    return -1;
  int Sv[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, Sv) != 0)
    return -1;

  pid_t Pid = ::fork();
  if (Pid < 0) {
    ::close(Sv[0]);
    ::close(Sv[1]);
    return -1;
  }
  if (Pid == 0) {
    // Child: the socket becomes stdin + stdout; warp-worker re-points
    // stdout at /dev/null itself before any library code can print.
    ::close(Sv[0]);
    ::dup2(Sv[1], 0);
    ::dup2(Sv[1], 1);
    if (Sv[1] > 1)
      ::close(Sv[1]);
    ::execl(Binary.c_str(), Binary.c_str(), (char *)nullptr);
    _exit(127); // exec failed: the master sees an immediate EOF.
  }

  ::close(Sv[1]);
  // CLOEXEC so later spawns do not inherit this end (an inherited copy
  // would defer this worker's EOF past its death); nonblocking so the
  // master's event loop never sleeps inside a read.
  ::fcntl(Sv[0], F_SETFD, FD_CLOEXEC);
  ::fcntl(Sv[0], F_SETFL, O_NONBLOCK);

  Worker W;
  W.Pid = Pid;
  W.Fd = Sv[0];
  W.Alive = true;
  Workers.push_back(std::move(W));
  ++Spawned;
  unsigned Index = static_cast<unsigned>(Workers.size() - 1);
  if (!send(Index, wire::FrameType::Init, wire::encodeInit(Init))) {
    kill(Index);
    return -1;
  }
  return static_cast<int>(Index);
}

bool ProcessPool::send(unsigned W, wire::FrameType Type,
                       const std::vector<uint8_t> &Payload) {
  Worker &Wk = Workers[W];
  if (!Wk.Alive)
    return false;
  std::vector<uint8_t> Frame = wire::encodeFrame(Type, Payload);
  size_t Off = 0;
  Timer Stuck;
  while (Off < Frame.size()) {
    ssize_t N = ::send(Wk.Fd, Frame.data() + Off, Frame.size() - Off,
                       MSG_NOSIGNAL);
    if (N > 0) {
      Off += static_cast<size_t>(N);
      BytesSent += static_cast<uint64_t>(N);
      continue;
    }
    if (N < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // The worker is not draining its socket. Give it a bounded window
      // (a busy-but-healthy worker empties a full buffer in microseconds)
      // before declaring the write failed.
      if (Stuck.seconds() > 5.0)
        return false;
      struct pollfd P{Wk.Fd, POLLOUT, 0};
      ::poll(&P, 1, 50);
      continue;
    }
    if (N < 0 && errno == EINTR)
      continue;
    return false; // EPIPE and friends: the worker is gone.
  }
  return true;
}

bool ProcessPool::pump(unsigned W) {
  Worker &Wk = Workers[W];
  if (!Wk.Alive)
    return false;
  uint8_t Buf[65536];
  while (true) {
    ssize_t N = ::recv(Wk.Fd, Buf, sizeof(Buf), 0);
    if (N > 0) {
      BytesReceived += static_cast<uint64_t>(N);
      Wk.Decoder.feed(Buf, static_cast<size_t>(N));
      continue;
    }
    if (N < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
      return true;
    if (N < 0 && errno == EINTR)
      continue;
    // EOF or hard error: the worker died. Reap it now.
    reap(W, /*Block=*/true);
    return false;
  }
}

void ProcessPool::reap(unsigned W, bool Block) {
  Worker &Wk = Workers[W];
  if (!Wk.Alive)
    return;
  if (!Wk.Reaped && Wk.Pid > 0) {
    int Status = 0;
    pid_t R = ::waitpid(Wk.Pid, &Status, Block ? 0 : WNOHANG);
    if (R == Wk.Pid) {
      Wk.WaitStatus = Status;
      Wk.Reaped = true;
    } else if (!Block && R == 0) {
      return; // still running
    } else {
      Wk.Reaped = true; // ECHILD etc.: nothing left to wait for
    }
  }
  Wk.Alive = false;
  if (Wk.Fd >= 0) {
    ::close(Wk.Fd);
    Wk.Fd = -1;
  }
}

void ProcessPool::kill(unsigned W) {
  Worker &Wk = Workers[W];
  if (!Wk.Alive)
    return;
  if (Wk.Pid > 0 && !Wk.Reaped)
    ::kill(Wk.Pid, SIGKILL);
  reap(W, /*Block=*/true);
}

bool ProcessPool::shutdown(unsigned W, double GraceSec) {
  Worker &Wk = Workers[W];
  if (!Wk.Alive)
    return true;
  bool Sent = send(W, wire::FrameType::Shutdown, {});
  Timer Grace;
  while (Sent && Grace.seconds() < GraceSec) {
    int Status = 0;
    pid_t R = ::waitpid(Wk.Pid, &Status, WNOHANG);
    if (R == Wk.Pid) {
      Wk.WaitStatus = Status;
      Wk.Reaped = true;
      Wk.Alive = false;
      ::close(Wk.Fd);
      Wk.Fd = -1;
      return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  kill(W);
  return false;
}

//===----------------------------------------------------------------------===//
// compileModuleProcess
//===----------------------------------------------------------------------===//

namespace {

/// One dispatched attempt a seat is executing.
struct Flight {
  size_t Index = 0;        ///< Flat function index.
  unsigned Attempt = 0;    ///< 1-based round number.
  bool Speculative = false;
  double T0 = 0;           ///< Recorder time at dispatch.
  Timer Age;               ///< Real time since dispatch.
  double SoftSec = 0;      ///< Speculation threshold.
  double HardSec = 0;      ///< Watchdog deadline.
};

/// Round-local fate of one pending function: produced, or every attempt
/// (original + optional speculative duplicate) failed.
struct RoundTask {
  bool OrigOutstanding = false;
  bool SpecOutstanding = false;
  bool Done = false;
};

} // namespace

ProcessRunResult parallel::compileModuleProcess(
    const std::string &Source, const codegen::MachineModel &MM,
    unsigned NumWorkers, const driver::FaultPolicy &Policy,
    const ProcessRunnerConfig &Config, obs::TraceRecorder *Rec,
    obs::MetricsRegistry *Metrics, driver::FunctionResultCache *Cache) {
  assert(NumWorkers > 0 && "need at least one worker");
  assert(Policy.MaxAttempts > 0 && "need at least one attempt");
  assert((!Rec || Rec->domain() == obs::ClockDomain::Steady) &&
         "the process engine records steady-clock timestamps");
  using obs::EventKind;
  using obs::FaultCause;
  ProcessRunResult Result;
  Timer Total;

  // Phase 1: the master parses and checks sequentially, exactly like the
  // thread engine; errors abort before any process is forked.
  Timer PhaseTimer;
  const double ParseStart = Rec ? Rec->nowSec() : 0;
  driver::ParseResult Parsed = driver::parseAndCheck(Source, Metrics);
  Result.Phase1Sec = PhaseTimer.seconds();
  uint64_t ParseId = 0;
  uint64_t TraceId = 0;
  if (Rec) {
    Rec->setEngine("process");
    // Workers stamp their shards with the trace id they were handed, so a
    // nonzero id must exist before the first Init goes out. Derive it
    // from the source when the caller did not pick one: content-derived,
    // so identical runs keep identical trace ids.
    TraceId = Rec->traceId();
    if (TraceId == 0) {
      TraceId = fnv1a64(reinterpret_cast<const uint8_t *>(Source.data()),
                        Source.size());
      if (TraceId == 0)
        TraceId = 1;
      Rec->setTraceId(TraceId);
    }
    obs::SpanEvent &E = Rec->lane(0).span(ParseStart,
                                          Rec->nowSec() - ParseStart,
                                          EventKind::SpanParse,
                                          obs::Phase::Parse);
    E.Host = 0;
    ParseId = E.spanId();
  }
  Result.Module.Diags.merge(Parsed.Diags);
  Result.Module.Phase1 = Parsed.Metrics;
  if (!Parsed.succeeded()) {
    Result.ElapsedSec = Total.seconds();
    if (Rec)
      Rec->setRunTotals(Result.ElapsedSec, 0.0, 0);
    return Result;
  }

  struct Task {
    const w2::SectionDecl *Section;
    const w2::FunctionDecl *Function;
    int32_t SectionId = -1;
    int32_t FnId = -1;
    uint32_t FnInSection = 0;
  };
  std::vector<Task> Tasks;
  for (size_t S = 0; S != Parsed.Module->numSections(); ++S) {
    const w2::SectionDecl *Section = Parsed.Module->getSection(S);
    for (size_t F = 0; F != Section->numFunctions(); ++F) {
      Task T{Section, Section->getFunction(F), static_cast<int32_t>(S), -1,
             static_cast<uint32_t>(F)};
      T.FnId = Rec ? Rec->internFunction(T.Function->getName())
                   : static_cast<int32_t>(Tasks.size());
      Tasks.push_back(T);
    }
  }

  PhaseTimer.restart();
  std::vector<driver::FunctionResult> FnResults(Tasks.size());
  const unsigned Seats =
      static_cast<unsigned>(std::min<size_t>(NumWorkers, Tasks.size()));
  Result.WorkersUsed = Seats;
  if (Rec)
    Rec->makeLanes(Seats + 1);
  const int32_t RetryCtr = Rec ? Rec->internCounter("scheduler.retries") : -1;
  const int32_t ReassignCtr =
      Rec ? Rec->internCounter("scheduler.reassignments") : -1;
  const int32_t WatchdogCtr =
      Rec ? Rec->internCounter("scheduler.watchdog_fires") : -1;
  const int32_t SpecCtr =
      Rec ? Rec->internCounter("scheduler.speculative_launches") : -1;

  RetryRoundTracker Rounds(Tasks.size());
  std::vector<uint64_t> AttemptParent(Tasks.size(), ParseId);
  uint64_t LastResultId = 0;
  auto NoteResult = [&LastResultId](uint64_t Id) {
    LastResultId = std::max(LastResultId, Id);
  };

  // Cache pre-filter: sequential and master-side, so hits are identical
  // at any worker count (mirrors ThreadRunner byte for byte).
  if (Cache) {
    for (size_t Index = 0; Index != Tasks.size(); ++Index) {
      const Task &T = Tasks[Index];
      const double T0 = Rec ? Rec->nowSec() : 0;
      std::optional<driver::FunctionResult> Hit =
          Cache->lookup(*T.Section, *T.Function);
      if (Hit &&
          driver::validateFunctionResult(*T.Section, *T.Function, *Hit)) {
        FnResults[Index] = std::move(*Hit);
        Rounds.produced(Index);
        ++Result.CacheHits;
        if (Rec) {
          obs::SpanEvent &E = Rec->lane(0).span(T0, Rec->nowSec() - T0,
                                                EventKind::SpanCacheHit,
                                                obs::Phase::Compile);
          E.Host = 0;
          E.Section = T.SectionId;
          E.Function = T.FnId;
          E.Parent = ParseId;
          NoteResult(E.spanId());
        }
      } else {
        ++Result.CacheMisses;
      }
    }
    Rounds.settleRound();
  }

  // --- The pool and the master's bookkeeping over it.
  ProcessPool Pool(Config.WorkerBinary.empty() ? defaultWorkerBinary()
                                               : Config.WorkerBinary);
  std::vector<int> SeatSlot(Seats, -1);   ///< Pool slot per seat, -1 = none.
  std::vector<char> SeatBusy(Seats, 0);
  std::vector<Flight> SeatFlight(Seats);
  std::vector<double> SeatSpawnT0(Seats, 0); ///< For the startup span.
  std::vector<char> SeatHello(Seats, 0);
  /// Per-seat worker→master clock offset, estimated from the Init→Hello
  /// timestamp echo. Invalid (offset 0) for workers predating the echo.
  std::vector<obs::ClockSync> SeatSync(Seats);
  std::vector<double> SeatLoadSec(Seats, 0); ///< chooseReassignment's load.
  std::vector<unsigned> PrevSeat(Tasks.size(), 0);
  std::vector<char> EverAttempted(Tasks.size(), 0);
  // Worst case, every attempt of every function kills its worker (or
  // ForkPerTask retires one per attempt), so the derived budget covers a
  // full fault schedule at any pool size while still bounding a respawn
  // storm from a broken binary.
  const unsigned SpawnBudget =
      Config.MaxTotalSpawns
          ? Config.MaxTotalSpawns
          : Seats +
                static_cast<unsigned>(Tasks.size()) *
                    (Policy.MaxAttempts + 1) +
                8;
  bool PoolBroken = Tasks.empty();

  // Telemetry: the master samples its own gauges from the event loop (no
  // sampler thread — the loop already wakes on every state change).
  size_t ProducedCount = Tasks.size() - Rounds.pending().size();
  unsigned InFlightCount = 0;
  const double HitRate = (Result.CacheHits + Result.CacheMisses) > 0
                             ? static_cast<double>(Result.CacheHits) /
                                   (Result.CacheHits + Result.CacheMisses)
                             : 0.0;
  obs::TimeSeriesSet Telemetry;
  if (Rec) {
    Telemetry.registerGauge("sched.tasks_pending", [&Tasks, &ProducedCount] {
      return static_cast<double>(Tasks.size() - ProducedCount);
    });
    Telemetry.registerGauge("sched.inflight_compiles", [&InFlightCount] {
      return static_cast<double>(InFlightCount);
    });
    Telemetry.registerGauge("cache.hit_rate", [HitRate] { return HitRate; });
    for (unsigned W = 0; W != Seats; ++W)
      Telemetry.registerGauge(
          "host.busy.w" + std::to_string(W + 1), [&SeatLoadSec, W, Rec] {
            double Now = Rec->nowSec();
            return Now > 0 ? std::min(1.0, SeatLoadSec[W] / Now) : 0.0;
          });
  }

  auto SpawnSeat = [&](unsigned Seat) -> bool {
    if (Pool.spawned() >= SpawnBudget)
      return false;
    wire::InitMsg Init;
    Init.WorkerIndex = Seat;
    Init.ModuleSource = Source;
    Init.Faults = Config.Faults;
    if (Rec) {
      Init.TraceId = TraceId;
      Init.ParentSpanId = ParseId;
    }
    SeatSpawnT0[Seat] = Rec ? Rec->nowSec() : 0;
    int Slot = Pool.spawn(Init);
    if (Slot < 0)
      return false;
    SeatSlot[Seat] = Slot;
    SeatHello[Seat] = 0;
    SeatSync[Seat] = obs::ClockSync();
    if (Metrics)
      Metrics->add("process.workers_spawned");
    return true;
  };
  auto SeatLive = [&](unsigned Seat) {
    return SeatSlot[Seat] >= 0 &&
           Pool.alive(static_cast<unsigned>(SeatSlot[Seat]));
  };

  // Per-round state, kept outside the loop so late (superseded) results
  // from a previous round resolve against stable storage.
  std::vector<RoundTask> RoundState(Tasks.size());
  std::vector<char> SpecLaunched(Tasks.size(), 0);
  size_t RoundResolved = 0;
  size_t RoundSize = 0;

  auto ChainEvent = [&](unsigned Lane, size_t Index, EventKind K,
                        FaultCause Cause, unsigned Attempt,
                        bool Speculative) {
    if (!Rec)
      return;
    obs::SpanEvent &E =
        Rec->lane(Lane).instant(Rec->nowSec(), K, obs::Phase::Recovery);
    E.Host = static_cast<int32_t>(Lane == 0 ? 0 : Lane);
    E.Section = Tasks[Index].SectionId;
    E.Function = Tasks[Index].FnId;
    E.Attempt = static_cast<int32_t>(Attempt);
    E.Cause = Cause;
    E.Speculative = Speculative;
    E.Parent = AttemptParent[Index];
    AttemptParent[Index] = E.spanId();
  };

  // Marks one outstanding attempt finished-without-result and advances
  // the round when the task has no attempt left that could still land.
  auto AttemptFailed = [&](unsigned Seat, FaultCause Cause, EventKind Kind) {
    Flight &F = SeatFlight[Seat];
    RoundTask &RT = RoundState[F.Index];
    const bool Superseded = RT.Done;
    AttemptGate Gate = checkAttempt(
        /*LostToCrash=*/Cause != FaultCause::None &&
            Cause != FaultCause::Superseded,
        Cause, Superseded);
    ChainEvent(1 + Seat, F.Index, Kind,
               Gate.Proceed ? Cause : Gate.Cause, F.Attempt, F.Speculative);
    if (F.Speculative)
      RT.SpecOutstanding = false;
    else
      RT.OrigOutstanding = false;
    SeatBusy[Seat] = 0;
    InFlightCount = InFlightCount ? InFlightCount - 1 : 0;
    if (!RT.Done && !RT.OrigOutstanding && !RT.SpecOutstanding) {
      RT.Done = true; // failed this round; the next round retries it
      ++RoundResolved;
    }
  };

  auto AcceptResult = [&](unsigned Seat, const wire::ResultMsg &Msg,
                          driver::FunctionResult &&R) {
    Flight &F = SeatFlight[Seat];
    RoundTask &RT = RoundState[F.Index];
    const Task &T = Tasks[F.Index];
    if (RT.Done) {
      // A competing attempt (usually the speculative duplicate) already
      // delivered; this result is discarded, not wrong.
      ChainEvent(1 + Seat, F.Index, EventKind::AttemptLost,
                 FaultCause::Superseded, F.Attempt, F.Speculative);
      if (F.Speculative)
        RT.SpecOutstanding = false;
      else
        RT.OrigOutstanding = false;
      SeatBusy[Seat] = 0;
      InFlightCount = InFlightCount ? InFlightCount - 1 : 0;
      return;
    }
    if (Rec) {
      const double Now = Rec->nowSec();
      obs::SpanEvent &C = Rec->lane(1 + Seat).span(
          F.T0, Now - F.T0, EventKind::SpanCompile, obs::Phase::Compile);
      C.Host = static_cast<int32_t>(1 + Seat);
      C.Section = T.SectionId;
      C.Function = T.FnId;
      C.Attempt = static_cast<int32_t>(F.Attempt);
      C.Speculative = F.Speculative;
      C.Parent = AttemptParent[F.Index];
      C.Bytes = Msg.ResultBytes.size();
      // Splice the worker's own opt/codegen spans under the accepted
      // compile span. The shard's shape depends only on the task, so the
      // merged span topology is identical at any worker count; timestamps
      // are converted with the seat's clock offset and clamped into the
      // dispatch→accept flight window so the trace stays monotonic.
      if (!Msg.ShardBytes.empty()) {
        obs::SpanShard Shard;
        if (obs::decodeSpanShard(Msg.ShardBytes, Shard) &&
            Shard.TraceId == TraceId) {
          obs::SpliceOptions SO;
          SO.ParentSpanId = C.spanId();
          SO.OffsetSec = SeatSync[Seat].Valid ? SeatSync[Seat].OffsetSec : 0;
          SO.WindowStartSec = F.T0;
          SO.WindowEndSec = Now;
          SO.Host = static_cast<int32_t>(1 + Seat);
          obs::spliceShard(Shard, *Rec, Rec->lane(1 + Seat), SO);
        }
      }
      obs::SpanEvent &D = Rec->lane(1 + Seat).instant(
          Now, EventKind::FunctionDone, obs::Phase::Compile);
      D.Host = C.Host;
      D.Section = T.SectionId;
      D.Function = T.FnId;
      D.Attempt = C.Attempt;
      D.Parent = C.spanId();
      NoteResult(D.spanId());
    }
    if (Metrics)
      Metrics->observe("process.compile_sec", F.Age.seconds());
    if (Cache)
      Cache->store(*T.Section, *T.Function, R);
    FnResults[F.Index] = std::move(R);
    Rounds.produced(F.Index);
    ++ProducedCount;
    if (F.Speculative) {
      ++Result.SpeculativeWins;
      RT.SpecOutstanding = false;
    } else {
      RT.OrigOutstanding = false;
    }
    SeatLoadSec[Seat] += F.Age.seconds();
    SeatBusy[Seat] = 0;
    InFlightCount = InFlightCount ? InFlightCount - 1 : 0;
    RT.Done = true;
    ++RoundResolved;
  };

  // Processes every whole frame a live seat has buffered.
  auto DrainFrames = [&](unsigned Seat) {
    wire::FrameDecoder &Dec =
        Pool.decoder(static_cast<unsigned>(SeatSlot[Seat]));
    wire::Frame Frame;
    while (true) {
      wire::DecodeStatus St = Dec.next(Frame);
      if (St == wire::DecodeStatus::NeedMore)
        return true;
      if (St == wire::DecodeStatus::Corrupt) {
        // The stream is unusable; drop the worker and let the attempt be
        // retried next round (the wire protocol's "retriable, never
        // fatal" contract).
        ++Result.FrameErrors;
        if (Metrics)
          Metrics->add("process.frame_errors");
        Pool.kill(static_cast<unsigned>(SeatSlot[Seat]));
        if (SeatBusy[Seat])
          AttemptFailed(Seat, FaultCause::PoisonedResult,
                        EventKind::ResultRejected);
        return false;
      }
      switch (Frame.Type) {
      case wire::FrameType::Hello: {
        wire::HelloMsg Hello;
        if (!wire::decodeHello(Frame.Payload, Hello) ||
            Hello.NumFunctions != Tasks.size()) {
          ++Result.FrameErrors;
          Pool.kill(static_cast<unsigned>(SeatSlot[Seat]));
          if (SeatBusy[Seat])
            AttemptFailed(Seat, FaultCause::PoisonedResult,
                          EventKind::ResultRejected);
          return false;
        }
        if (!SeatHello[Seat]) {
          SeatHello[Seat] = 1;
          if (Rec) {
            const double HelloRecv = Rec->nowSec();
            // One NTP-style midpoint per worker lifetime: Init send (T1)
            // and Hello receive (T2) on the master clock bracket the
            // worker's InitRecv/HelloSend echo. Shards from this seat are
            // spliced with the resulting offset.
            SeatSync[Seat] = obs::estimateClockOffset(
                SeatSpawnT0[Seat], Hello.InitRecvSec, Hello.HelloSendSec,
                HelloRecv);
            obs::SpanEvent &E = Rec->lane(1 + Seat).span(
                SeatSpawnT0[Seat], HelloRecv - SeatSpawnT0[Seat],
                EventKind::SpanStartup, obs::Phase::Setup);
            E.Host = static_cast<int32_t>(1 + Seat);
            E.Parent = ParseId;
            E.Pid = Hello.Pid;
            Rec->noteProcess(Hello.Pid,
                             "warp-worker " + std::to_string(Seat));
          }
        }
        break;
      }
      case wire::FrameType::Result: {
        if (!SeatBusy[Seat])
          break; // stale frame from an attempt already written off
        wire::ResultMsg Msg;
        driver::FunctionResult R;
        const Flight &F = SeatFlight[Seat];
        const Task &T = Tasks[F.Index];
        bool Valid = wire::decodeResult(Frame.Payload, Msg) &&
                     Msg.TaskIndex == F.Index &&
                     cache::decodeFunctionResult(Msg.ResultBytes, R) &&
                     driver::validateFunctionResult(*T.Section, *T.Function,
                                                    R);
        if (!Valid) {
          ++Result.PoisonedResultsDetected;
          if (Metrics)
            Metrics->add("fault.poisoned_results");
          AttemptFailed(Seat, FaultCause::PoisonedResult,
                        EventKind::ResultRejected);
          break;
        }
        AcceptResult(Seat, Msg, std::move(R));
        break;
      }
      case wire::FrameType::WorkerError: {
        // A worker that reports a fatal condition is as good as dead.
        Pool.kill(static_cast<unsigned>(SeatSlot[Seat]));
        if (SeatBusy[Seat])
          AttemptFailed(Seat, FaultCause::CrashDuringCompile,
                        EventKind::AttemptLost);
        return false;
      }
      default:
        break; // master-bound streams carry no other frame types
      }
    }
  };

  auto NoteWorkerDeath = [&](unsigned Seat) {
    ++Result.WorkerDeaths;
    if (Metrics) {
      Metrics->add("process.worker_deaths");
      Metrics->add("fault.workers_vanished");
    }
    if (SeatBusy[Seat]) {
      const bool MidResult =
          Pool.decoder(static_cast<unsigned>(SeatSlot[Seat]))
              .bufferedBytes() > 0;
      AttemptFailed(Seat,
                    MidResult ? FaultCause::CrashDuringResult
                              : FaultCause::CrashDuringCompile,
                    EventKind::AttemptLost);
    }
  };

  // --- The retry rounds.
  for (unsigned Attempt = 1;
       Attempt <= Policy.MaxAttempts && !Rounds.allProduced() && !PoolBroken;
       ++Attempt) {
    Rounds.beginRound(Attempt);
    std::vector<size_t> Queue = Rounds.pending();
    size_t QueueHead = 0;
    RoundSize = Queue.size();
    RoundResolved = 0;
    for (size_t Index : Queue) {
      RoundState[Index] = RoundTask();
      SpecLaunched[Index] = 0;
    }
    const double HardSec =
        Config.WatchdogSec *
        std::pow(Policy.BackoffFactor, static_cast<double>(Attempt - 1));
    const double SoftSec = HardSec / 2;

    while (RoundResolved < RoundSize) {
      // 1. Dispatch pending tasks onto idle seats (FCFS; retried tasks
      //    are steered away from the seat that failed them).
      bool Dispatched = true;
      while (QueueHead < Queue.size() && Dispatched) {
        Dispatched = false;
        // Idle seats, respawning as needed.
        std::vector<char> SeatIdle(Seats, 0);
        unsigned IdleCount = 0;
        for (unsigned S = 0; S != Seats; ++S) {
          if (SeatBusy[S])
            continue;
          if (!SeatLive(S) && !SpawnSeat(S))
            continue;
          SeatIdle[S] = 1;
          ++IdleCount;
        }
        if (IdleCount == 0)
          break;
        size_t Index = Queue[QueueHead];
        unsigned Seat = Seats; // invalid
        if (EverAttempted[Index]) {
          // The paper's reassignment decision: the least-loaded live host
          // other than the one that failed the function.
          std::vector<char> HostAlive(SeatIdle.begin(), SeatIdle.end());
          unsigned Choice = chooseReassignment(
              SeatLoadSec, HostAlive, PrevSeat[Index]);
          if (Choice < Seats && SeatIdle[Choice])
            Seat = Choice;
        }
        if (Seat == Seats)
          for (unsigned S = 0; S != Seats; ++S)
            if (SeatIdle[S]) {
              Seat = S;
              break;
            }
        if (Seat == Seats)
          break;

        wire::TaskMsg Msg;
        Msg.TaskIndex = static_cast<uint32_t>(Index);
        Msg.Section = static_cast<uint32_t>(Tasks[Index].SectionId);
        Msg.Function = Tasks[Index].FnInSection;
        Msg.Attempt = Attempt;
        Msg.ParentSpanId = AttemptParent[Index];
        if (!Pool.send(static_cast<unsigned>(SeatSlot[Seat]),
                       wire::FrameType::Task, wire::encodeTask(Msg))) {
          // The send itself failed: the worker is gone before the attempt
          // began. Replace it and redo the dispatch (no attempt consumed).
          Pool.kill(static_cast<unsigned>(SeatSlot[Seat]));
          NoteWorkerDeath(Seat);
          Dispatched = true;
          continue;
        }
        if (Rec && EverAttempted[Index] && Seat != PrevSeat[Index]) {
          obs::SpanEvent &E = Rec->lane(0).instant(
              Rec->nowSec(), EventKind::Reassigned, obs::Phase::Recovery);
          E.Host = 0;
          E.Section = Tasks[Index].SectionId;
          E.Function = Tasks[Index].FnId;
          E.Attempt = static_cast<int32_t>(Attempt);
          E.Parent = AttemptParent[Index];
          AttemptParent[Index] = E.spanId();
        }
        Flight F;
        F.Index = Index;
        F.Attempt = Attempt;
        F.Speculative = false;
        F.T0 = Rec ? Rec->nowSec() : 0;
        F.Age.restart();
        F.SoftSec = SoftSec;
        F.HardSec = HardSec;
        SeatFlight[Seat] = F;
        SeatBusy[Seat] = 1;
        ++InFlightCount;
        RoundState[Index].OrigOutstanding = true;
        EverAttempted[Index] = 1;
        PrevSeat[Index] = Seat;
        ++QueueHead;
        Dispatched = true;
      }

      // If nothing is running and nothing can be dispatched, the pool is
      // unrecoverable (spawn budget burned or binary unusable): fail the
      // rest of the round and let the master fallback finish the job.
      if (InFlightCount == 0 && QueueHead >= Queue.size()) {
        bool Progressed = false;
        for (size_t QI = 0; QI != Queue.size(); ++QI) {
          RoundTask &RT = RoundState[Queue[QI]];
          if (!RT.Done && !RT.OrigOutstanding && !RT.SpecOutstanding) {
            RT.Done = true;
            ++RoundResolved;
            Progressed = true;
          }
        }
        if (!Progressed)
          break;
        continue;
      }
      if (InFlightCount == 0 && QueueHead < Queue.size()) {
        // Idle-less dispatch stall with no inflight work: every seat is
        // unspawnable. Give up on the distributed path entirely.
        PoolBroken = true;
        for (size_t QI = QueueHead; QI != Queue.size(); ++QI) {
          RoundTask &RT = RoundState[Queue[QI]];
          if (!RT.Done) {
            RT.Done = true;
            ++RoundResolved;
          }
        }
        continue;
      }

      // 2. Straggler speculation: with the queue drained and idle seats
      //    available, duplicate the oldest attempt past its soft
      //    deadline (one duplicate per function per round).
      if (Config.SpeculateStragglers && Policy.SpeculateStragglers &&
          QueueHead >= Queue.size()) {
        for (unsigned B = 0; B != Seats; ++B) {
          if (!SeatBusy[B] || SeatFlight[B].Speculative)
            continue;
          Flight &F = SeatFlight[B];
          if (RoundState[F.Index].Done || SpecLaunched[F.Index] ||
              F.Age.seconds() < F.SoftSec)
            continue;
          unsigned Idle = Seats;
          for (unsigned S = 0; S != Seats; ++S) {
            if (SeatBusy[S] || S == B)
              continue;
            if (!SeatLive(S) && !SpawnSeat(S))
              continue;
            Idle = S;
            break;
          }
          if (Idle == Seats)
            break;
          wire::TaskMsg Msg;
          Msg.TaskIndex = static_cast<uint32_t>(F.Index);
          Msg.Section = static_cast<uint32_t>(Tasks[F.Index].SectionId);
          Msg.Function = Tasks[F.Index].FnInSection;
          Msg.Attempt = F.Attempt;
          Msg.Speculative = 1;
          Msg.ParentSpanId = AttemptParent[F.Index];
          if (!Pool.send(static_cast<unsigned>(SeatSlot[Idle]),
                         wire::FrameType::Task, wire::encodeTask(Msg))) {
            Pool.kill(static_cast<unsigned>(SeatSlot[Idle]));
            NoteWorkerDeath(Idle);
            continue;
          }
          SpecLaunched[F.Index] = 1;
          ++Result.SpeculativeLaunches;
          if (Metrics)
            Metrics->add("fault.speculations_launched");
          if (Rec) {
            obs::SpanEvent &E = Rec->lane(0).instant(
                Rec->nowSec(), EventKind::SpeculationLaunched,
                obs::Phase::Recovery);
            E.Host = 0;
            E.Section = Tasks[F.Index].SectionId;
            E.Function = Tasks[F.Index].FnId;
            E.Attempt = static_cast<int32_t>(F.Attempt);
            E.Speculative = true;
            E.Parent = AttemptParent[F.Index];
            AttemptParent[F.Index] = E.spanId();
          }
          Flight D;
          D.Index = F.Index;
          D.Attempt = F.Attempt;
          D.Speculative = true;
          D.T0 = Rec ? Rec->nowSec() : 0;
          D.Age.restart();
          D.SoftSec = F.SoftSec;
          D.HardSec = F.HardSec;
          SeatFlight[Idle] = D;
          SeatBusy[Idle] = 1;
          ++InFlightCount;
          RoundState[F.Index].SpecOutstanding = true;
        }
      }

      // 3. Wait for results, deaths, or the next watchdog deadline.
      std::vector<struct pollfd> Fds;
      std::vector<unsigned> FdSeat;
      double NearestDeadline = 0.25; // poll floor: re-check dispatch often
      for (unsigned S = 0; S != Seats; ++S) {
        if (!SeatLive(S))
          continue;
        Fds.push_back({Pool.fd(static_cast<unsigned>(SeatSlot[S])), POLLIN,
                       0});
        FdSeat.push_back(S);
        if (SeatBusy[S])
          NearestDeadline = std::min(
              NearestDeadline,
              SeatFlight[S].HardSec - SeatFlight[S].Age.seconds());
      }
      if (!Fds.empty()) {
        int TimeoutMs = static_cast<int>(
            std::max(1.0, std::min(250.0, NearestDeadline * 1000)));
        ::poll(Fds.data(), Fds.size(), TimeoutMs);
        for (size_t I = 0; I != Fds.size(); ++I) {
          if (!(Fds[I].revents & (POLLIN | POLLHUP | POLLERR)))
            continue;
          unsigned S = FdSeat[I];
          if (!SeatLive(S))
            continue; // killed while handling an earlier fd this pass
          if (Pool.pump(static_cast<unsigned>(SeatSlot[S]))) {
            DrainFrames(S);
          } else {
            // Drain whatever whole frames landed before the stream died,
            // then account the death.
            DrainFrames(S);
            if (SeatLive(S))
              continue;
            NoteWorkerDeath(S);
          }
        }
      }

      // 4. Watchdog: kill attempts past their hard deadline.
      for (unsigned S = 0; S != Seats; ++S) {
        if (!SeatBusy[S] || !SeatLive(S))
          continue;
        Flight &F = SeatFlight[S];
        if (F.Age.seconds() < F.HardSec)
          continue;
        const bool Counted = !RoundState[F.Index].Done;
        Pool.kill(static_cast<unsigned>(SeatSlot[S]));
        if (Counted) {
          ++Result.WatchdogFires;
          if (Metrics)
            Metrics->add("fault.timeouts_fired");
          if (Rec) {
            obs::SpanEvent &E = Rec->lane(0).instant(
                Rec->nowSec(), EventKind::TimeoutFired, obs::Phase::Recovery);
            E.Host = 0;
            E.Section = Tasks[F.Index].SectionId;
            E.Function = Tasks[F.Index].FnId;
            E.Attempt = static_cast<int32_t>(F.Attempt);
            E.Parent = AttemptParent[F.Index];
            AttemptParent[F.Index] = E.spanId();
          }
        }
        AttemptFailed(S, FaultCause::TimeoutExpired, EventKind::AttemptLost);
      }

      // 5. ForkPerTask retires seats that finished an attempt, so the
      //    next dispatch pays a fresh fork+exec+reparse.
      if (Config.ForkPerTask)
        for (unsigned S = 0; S != Seats; ++S)
          if (!SeatBusy[S] && SeatLive(S))
            Pool.shutdown(static_cast<unsigned>(SeatSlot[S]), 0.2);

      if (Rec)
        Telemetry.sampleAll(Rec->nowSec());
    }

    Rounds.settleRound();
    if (Rec) {
      const double Now = Rec->nowSec();
      if (RetryCtr >= 0)
        Rec->lane(0).counter(Now, RetryCtr, Rounds.retriesAttempted());
      if (ReassignCtr >= 0)
        Rec->lane(0).counter(Now, ReassignCtr, Rounds.functionsReassigned());
      if (WatchdogCtr >= 0)
        Rec->lane(0).counter(Now, WatchdogCtr, Result.WatchdogFires);
      if (SpecCtr >= 0)
        Rec->lane(0).counter(Now, SpecCtr, Result.SpeculativeLaunches);
    }
  }
  Result.RetriesAttempted = Rounds.retriesAttempted();
  Result.FunctionsReassigned = Rounds.functionsReassigned();
  Result.WorkersSpawned = Pool.spawned();

  // Recovery of last resort, identical to the thread engine: anything
  // still missing is compiled in the master's own process.
  for (size_t Index : Rounds.pending()) {
    const Task &T = Tasks[Index];
    const double T0 = Rec ? Rec->nowSec() : 0;
    FnResults[Index] =
        driver::compileFunction(*T.Section, *T.Function, MM, Metrics);
    if (Cache)
      Cache->store(*T.Section, *T.Function, FnResults[Index]);
    ++Result.FunctionsRecovered;
    ++ProducedCount;
    if (Rec) {
      const double Now = Rec->nowSec();
      obs::SpanEvent &E = Rec->lane(0).span(T0, Now - T0,
                                            EventKind::SpanMasterRecompile,
                                            obs::Phase::Recovery);
      E.Host = 0;
      E.Section = T.SectionId;
      E.Function = T.FnId;
      E.Cause = FaultCause::AttemptCapReached;
      E.Parent = AttemptParent[Index];
      obs::SpanEvent &D = Rec->lane(0).instant(Now, EventKind::FunctionDone,
                                               obs::Phase::Compile);
      D.Host = 0;
      D.Section = T.SectionId;
      D.Function = T.FnId;
      D.Attempt = 0;
      D.Cause = FaultCause::AttemptCapReached;
      D.Parent = E.spanId();
      NoteResult(D.spanId());
    }
  }
  Result.ParallelPhaseSec = PhaseTimer.seconds();

  // Wind the pool down politely; the destructor SIGKILLs any holdout
  // (e.g. a worker still sleeping through an injected stall).
  for (unsigned S = 0; S != Seats; ++S)
    if (SeatLive(S))
      Pool.shutdown(static_cast<unsigned>(SeatSlot[S]), 0.2);

  // Phase 4: assembly and linking, sequential in the master.
  PhaseTimer.restart();
  const double AsmStart = Rec ? Rec->nowSec() : 0;
  driver::assembleAndLink(*Parsed.Module, std::move(FnResults),
                          Result.Module, Metrics);
  Result.Phase4Sec = PhaseTimer.seconds();

  Result.Module.Succeeded = !Result.Module.Diags.hasErrors();
  Result.ElapsedSec = Total.seconds();
  if (Rec) {
    const double Now = Rec->nowSec();
    obs::SpanEvent &E = Rec->lane(0).span(AsmStart, Now - AsmStart,
                                          EventKind::SpanAssembly,
                                          obs::Phase::Assembly);
    E.Host = 0;
    E.Parent = LastResultId ? LastResultId : ParseId;
    obs::SpanEvent &RC = Rec->lane(0).instant(Now, EventKind::RunComplete,
                                              obs::Phase::Assembly);
    RC.Host = 0;
    RC.Parent = E.spanId();
    Rec->setTopology(Seats + 1,
                     static_cast<uint32_t>(Parsed.Module->numSections()));
    Rec->setRunTotals(Result.ElapsedSec, 0.0,
                      static_cast<uint32_t>(Tasks.size()));
    Telemetry.sampleAll(Now);
    std::vector<obs::TimeSeries> Series = Telemetry.snapshot();
    obs::emitCounterTracks(*Rec, 0, Series);
    for (const obs::Anomaly &A : obs::detectAnomalies(Series)) {
      obs::SpanEvent &AE = Rec->lane(0).instant(
          A.TSec, EventKind::AnomalyDetected, obs::Phase::Recovery);
      AE.Host = A.Host;
    }
  }
  if (Metrics) {
    Metrics->add("fault.retries_attempted", Result.RetriesAttempted);
    Metrics->add("fault.functions_reassigned", Result.FunctionsReassigned);
    Metrics->add("fault.functions_recovered", Result.FunctionsRecovered);
    Metrics->add("process.watchdog_fires", Result.WatchdogFires);
    Metrics->add("process.bytes_sent", Pool.bytesSent());
    Metrics->add("process.bytes_received", Pool.bytesReceived());
    Metrics->setGauge("process.workers_used", Result.WorkersUsed);
  }
  return Result;
}
