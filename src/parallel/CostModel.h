//===- CostModel.h - 1989 compile-time cost model ---------------*- C++ -*-===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Converts measured compiler work (driver::WorkMetrics) into simulated
/// 1989 seconds on a SUN workstation running the Common Lisp W2 compiler,
/// including the two system effects the paper identifies as decisive:
///
///  * Garbage collection: Lisp allocation is swept at a fixed rate, and
///    sweep cost inflates under heap pressure. The sequential compiler
///    accumulates live data (parse structures, emitted code) across all
///    functions in one image, so its GC bill grows superlinearly with
///    module size — the mechanism behind the paper's *negative system
///    overhead* ("the sequential compiler processes a program that does
///    not fit into the local memory and system space of a single
///    workstation. Extensive garbage collection and swapping are the
///    result", Section 4.2.3).
///
///  * Paging: workstations are diskless, so exceeding memory turns into
///    network/file-server traffic that contends with everything else.
///
/// Calibration anchors from the paper (Section 4.3): a ~300-line function
/// compiles sequentially in 19-22 minutes; 5-45 line functions take 2-6
/// minutes; parsing is under 5% of total time (Section 3.4).
///
//===----------------------------------------------------------------------===//

#ifndef WARPC_PARALLEL_COSTMODEL_H
#define WARPC_PARALLEL_COSTMODEL_H

#include "cluster/HostSystem.h"
#include "driver/WorkMetrics.h"

namespace warpc {
namespace parallel {

/// CPU and memory cost of one Lisp compute step.
struct LispStep {
  double WorkSec = 0;   ///< Raw CPU seconds at full speed.
  double AllocKB = 0;   ///< Heap allocated during the step.
  double LiveKB = 0;    ///< Live data resident during the step
                        ///< (excluding the Lisp core itself).
  double PageScale = 1.0; ///< Locality factor on paging traffic. The
                          ///< sequential compiler sweeps its data with good
                          ///< locality and competes with nobody for the
                          ///< server's cache; concurrent function masters
                          ///< evict each other (paper Section 4.2.3:
                          ///< "multiple processes swap off the same file
                          ///< server").
};

/// The simulated cost of executing a LispStep on one workstation.
struct StepCost {
  double CpuSec = 0;        ///< Mutator time.
  double GCSec = 0;         ///< Garbage-collection time.
  double PageTrafficKB = 0; ///< Paging traffic to the file server.

  double computeSec() const { return CpuSec + GCSec; }
};

/// Work-to-seconds conversion rates and memory-behavior constants.
class CostModel {
public:
  /// The calibrated 1989 model used by every bench.
  static CostModel lisp1989();

  // Work-unit rates (units per second) per compiler phase.
  double Phase1WUPerSec = 900;    ///< Parse + semantic check (Lisp).
  double Phase2WUPerSec = 56;    ///< Flowgraph + optimization (Lisp).
  double Phase3WUPerSec = 303;    ///< Scheduling + regalloc (Lisp).
  double Phase4WUPerSec = 1500;   ///< Assembly + linking (Lisp).
  double CMasterWUPerSec = 250000; ///< C master/section-master code.

  /// Fixed Lisp cost per function compilation (reading parse information,
  /// macroexpansion of the compiler itself, result file I/O).
  double PerFunctionSec = 8.0;

  // Garbage collector.
  double GCSweepKBPerSec = 120;  ///< Base sweep throughput.
  double HeapComfortKB = 1200;   ///< Live size where GC overhead doubles.
  double Retention = 0.40;       ///< Fraction of allocation live at GC.

  // The sequential compiler keeps the whole module's parse structures and
  // compiler bookkeeping live while compiling each function; this factor
  // scales (and the cap bounds) that resident set. Function masters only
  // hold the small parse information their section master ships them.
  double SeqParseLiveFactor = 6.0;
  double SeqParseLiveCapKB = 3000;

  // Paging (diskless nodes page over the network).
  double PagingKBPerSec = 800; ///< Refetch traffic per second of compute
                               ///< when the working set just exceeds memory
                               ///< (scaled by the excess fraction).

  /// Paging locality advantage of the single sequential process.
  double SeqPagingLocality = 0.35;

  /// Seconds of phase-1 work (used for the master's setup parse).
  double phase1Sec(const driver::WorkMetrics &M) const {
    return static_cast<double>(M.phase1Work()) / Phase1WUPerSec;
  }
  /// Seconds of phases 2+3 work for one function.
  double compileSec(const driver::WorkMetrics &M) const {
    return PerFunctionSec +
           static_cast<double>(M.phase2Work()) / Phase2WUPerSec +
           static_cast<double>(M.phase3Work()) / Phase3WUPerSec;
  }
  /// Seconds of phase-4 work.
  double phase4Sec(const driver::WorkMetrics &M) const {
    return static_cast<double>(M.phase4Work()) / Phase4WUPerSec;
  }

  /// Master/section-master bookkeeping (C code) for \p WorkUnits of work.
  double cMasterSec(double WorkUnits) const {
    return WorkUnits / CMasterWUPerSec;
  }

  /// Evaluates GC and paging behavior of a step on a host with the given
  /// configuration.
  StepCost evaluate(const LispStep &Step,
                    const cluster::HostConfig &Host) const;
};

} // namespace parallel
} // namespace warpc

#endif // WARPC_PARALLEL_COSTMODEL_H
