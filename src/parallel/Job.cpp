//===- Job.cpp - Compilation job description --------------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "parallel/Job.h"

using namespace warpc;
using namespace warpc::parallel;

ErrorOr<CompilationJob> parallel::buildJob(const std::string &Source,
                                           const codegen::MachineModel &MM) {
  driver::ModuleResult Result = driver::compileModuleSequential(Source, MM);
  if (!Result.Succeeded)
    return makeError("module failed to compile:\n" + Result.Diags.str());

  CompilationJob Job;
  Job.ModuleName = Result.Image.ModuleName;
  Job.Phase1 = Result.Phase1;
  Job.Phase4 = Result.Phase4;

  // Re-group the flat function results by section using the image, which
  // preserves declaration order.
  size_t Cursor = 0;
  for (const asmout::SectionImage &Section : Result.Image.Sections) {
    std::vector<FunctionTask> Tasks;
    for (const asmout::CellProgram &P : Section.Programs) {
      assert(Cursor < Result.Functions.size() && "result count mismatch");
      const driver::FunctionResult &F = Result.Functions[Cursor++];
      FunctionTask Task;
      Task.SectionName = Section.SectionName;
      Task.FunctionName = F.FunctionName;
      Task.Metrics = F.Metrics;
      Task.OutputKB = static_cast<double>(P.Image.size() +
                                          P.Listing.size()) /
                      1024.0;
      // Result files are small but never empty.
      if (Task.OutputKB < 1.0)
        Task.OutputKB = 1.0;
      Tasks.push_back(std::move(Task));
    }
    Job.Sections.push_back(std::move(Tasks));
  }
  return Job;
}
