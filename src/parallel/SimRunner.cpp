//===- SimRunner.cpp - Simulated compilation runs ----------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "parallel/SimRunner.h"

#include "cluster/Simulation.h"
#include "support/PRNG.h"

#include <algorithm>
#include <cassert>
#include <memory>

using namespace warpc;
using namespace warpc::parallel;
using namespace warpc::cluster;

namespace {

/// Parse information shipped to a function master (function ASTs plus
/// section signatures) — small compared to the sequential compiler's
/// whole-module structures.
constexpr double FnMasterParseInfoKB = 64.0;

/// In-image size of a function's emitted code before it is written out,
/// relative to the result file (Lisp structures are fatter than bytes).
constexpr double OutputRetainFactor = 2.0;

/// C work units for the master's scheduling decision per function.
constexpr double SchedWorkPerFn = 4000.0;

/// C work units for a section master to interpret directives, per
/// function in the section.
constexpr double DirectiveWorkPerFn = 2500.0;

/// C work units for a section master to combine results, per KB of
/// function output (code images and diagnostics).
constexpr double CombineWorkPerKB = 900.0;

/// Shared state of one simulated run. Continuation lambdas that form
/// cycles (loops over chunks or task lists) are retained in Keep and
/// released after the event loop drains, avoiding both dangling and
/// self-destruction hazards.
struct SimContext {
  Simulation Sim;
  SerialResource Ethernet;
  SerialResource Server;
  std::vector<std::unique_ptr<SerialResource>> Ws;
  /// Measurement jitter source (inert when JitterPct is zero).
  PRNG Jitter;
  const HostConfig &Host;
  const CostModel &Model;

  double NetWaitSec = 0;
  double PageWaitSec = 0;

  /// Closures kept alive for the duration of the run.
  std::vector<std::shared_ptr<void>> Keep;

  SimContext(const HostConfig &Host, const CostModel &Model)
      : Ethernet(Sim, "ethernet", Host.EthernetContention),
        Server(Sim, "fileserver"), Jitter(Host.JitterSeed), Host(Host),
        Model(Model) {
    for (unsigned W = 0; W != Host.NumWorkstations; ++W)
      Ws.push_back(
          std::make_unique<SerialResource>(Sim, "ws" + std::to_string(W)));
  }

  /// Uniform service-time stretch in [1-J, 1+J].
  double jittered(double Seconds) {
    if (Host.JitterPct <= 0)
      return Seconds;
    return Seconds * Jitter.uniform(1.0 - Host.JitterPct,
                                    1.0 + Host.JitterPct);
  }

  /// A file transfer: server service followed by the Ethernet segment.
  /// \p Done receives the elapsed transfer time.
  void transfer(double KB, std::function<void(double)> Done) {
    double Start = Sim.now();
    double ServerSec =
        jittered(KB / Host.ServerKBps + Host.ServerRequestSec);
    Server.request(
        ServerSec, [this, KB, Start, Done = std::move(Done)](double W1) {
          NetWaitSec += W1;
          double EtherSec = jittered(KB / Host.EthernetKBps);
          Ethernet.request(EtherSec,
                           [this, Start, Done = std::move(Done)](double W2) {
                             NetWaitSec += W2;
                             Done(Sim.now() - Start);
                           });
        });
  }

  /// CPU burst on workstation \p W.
  void cpu(unsigned W, double Seconds, std::function<void()> Done) {
    assert(W < Ws.size() && "workstation out of range");
    Ws[W]->request(jittered(Seconds),
                   [Done = std::move(Done)](double) { Done(); });
  }

  /// Lisp process startup on \p W: core-image download from the file
  /// server plus initialization. \p Done receives the startup elapsed.
  void startLisp(unsigned W, std::function<void(double)> Done) {
    double Start = Sim.now();
    transfer(Host.CoreDownloadKB,
             [this, W, Start, Done = std::move(Done)](double) {
               cpu(W, Host.LispInitSec, [this, Start, Done = std::move(Done)] {
                 Done(Sim.now() - Start);
               });
             });
  }

  /// One Lisp compute step on \p W with GC and paging applied. Paging
  /// traffic interleaves with compute in chunks so that it contends with
  /// other processes' transfers. \p Done receives the StepCost.
  void lispStep(unsigned W, const LispStep &Step,
                std::function<void(StepCost)> Done) {
    StepCost Cost = Model.evaluate(Step, Host);
    if (Cost.PageTrafficKB < 1.0) {
      cpu(W, Cost.computeSec(),
          [Cost, Done = std::move(Done)] { Done(Cost); });
      return;
    }
    // Thrashing: alternate compute and page-fault service.
    constexpr unsigned Chunks = 4;
    struct ChunkLoop {
      unsigned Remaining = Chunks;
      std::function<void()> Step;
    };
    auto Loop = std::make_shared<ChunkLoop>();
    Keep.push_back(Loop);
    Loop->Step = [this, W, Cost, Loop, Done = std::move(Done)] {
      if (Loop->Remaining == 0) {
        Done(Cost);
        return;
      }
      --Loop->Remaining;
      cpu(W, Cost.computeSec() / Chunks, [this, Cost, Loop] {
        transfer(Cost.PageTrafficKB / Chunks, [this, Loop](double Sec) {
          PageWaitSec += Sec;
          Loop->Step();
        });
      });
    };
    Loop->Step();
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// Sequential simulation
//===----------------------------------------------------------------------===//

SeqStats parallel::simulateSequential(const CompilationJob &Job,
                                      const HostConfig &Host,
                                      const CostModel &Model) {
  SimContext Ctx(Host, Model);
  SeqStats Stats;

  // Flatten tasks in declaration order.
  std::vector<const FunctionTask *> Tasks;
  for (const auto &Section : Job.Sections)
    for (const FunctionTask &T : Section)
      Tasks.push_back(&T);

  const double ParseLiveKB =
      std::min(Job.parseResidentKB() * Model.SeqParseLiveFactor,
               Model.SeqParseLiveCapKB);

  // The chain: startup -> parse -> each function -> assembly -> write.
  struct SeqLoop {
    std::function<void(size_t, double)> CompileFrom;
  };
  auto Loop = std::make_shared<SeqLoop>();
  Ctx.Keep.push_back(Loop);

  Loop->CompileFrom = [&, Loop](size_t Index, double RetainedKB) {
    if (Index == Tasks.size()) {
      // Phase 4 with everything live in the image.
      LispStep Asm;
      Asm.WorkSec = Model.phase4Sec(Job.Phase4);
      Asm.AllocKB = static_cast<double>(Job.Phase4.allocationKB());
      Asm.PageScale = Model.SeqPagingLocality;
      Asm.LiveKB = ParseLiveKB + RetainedKB;
      Ctx.lispStep(0, Asm, [&](StepCost Cost) {
        Stats.CpuSec += Cost.computeSec();
        Stats.GCSec += Cost.GCSec;
        double ImageKB =
            static_cast<double>(Job.Phase4.ImageBytes) / 1024.0 + 1.0;
        Ctx.transfer(ImageKB, [](double) {});
      });
      return;
    }
    const FunctionTask *Task = Tasks[Index];
    LispStep Step;
    Step.WorkSec = Model.compileSec(Task->Metrics);
    Step.AllocKB = static_cast<double>(Task->Metrics.allocationKB());
    Step.PageScale = Model.SeqPagingLocality;
    // Live: whole-module parse structures + code already emitted for
    // earlier functions + this function's own working data.
    Step.LiveKB = ParseLiveKB + RetainedKB +
                  static_cast<double>(Task->Metrics.workingSetKB());
    Ctx.lispStep(0, Step, [&, Loop, Index, RetainedKB, Task](StepCost Cost) {
      Stats.CpuSec += Cost.computeSec();
      Stats.GCSec += Cost.GCSec;
      Loop->CompileFrom(Index + 1,
                        RetainedKB + Task->OutputKB * OutputRetainFactor);
    });
  };

  Ctx.startLisp(0, [&, Loop](double StartupSec) {
    Stats.StartupSec = StartupSec;
    LispStep Parse;
    Parse.WorkSec = Model.phase1Sec(Job.Phase1);
    Parse.AllocKB = static_cast<double>(Job.Phase1.allocationKB());
    Parse.LiveKB = ParseLiveKB * 0.5; // structures grow during the parse
    Ctx.lispStep(0, Parse, [&, Loop](StepCost Cost) {
      Stats.CpuSec += Cost.computeSec();
      Stats.GCSec += Cost.GCSec;
      Loop->CompileFrom(0, 0.0);
    });
  });

  Stats.ElapsedSec = Ctx.Sim.run();
  Stats.NetWaitSec = Ctx.NetWaitSec;
  Stats.PageWaitSec = Ctx.PageWaitSec;
  Loop->CompileFrom = nullptr;
  return Stats;
}

//===----------------------------------------------------------------------===//
// Parallel simulation
//===----------------------------------------------------------------------===//

ParStats parallel::simulateParallel(const CompilationJob &Job,
                                    const Assignment &Assign,
                                    const HostConfig &Host,
                                    const CostModel &Model,
                                    std::vector<TraceEvent> *Trace) {
  assert(Assign.WsOf.size() == Job.Sections.size() &&
         "assignment does not match the job");
  SimContext Ctx(Host, Model);
  ParStats Stats;
  Stats.ProcessorsUsed = Assign.ProcessorsUsed;
  auto Record = [&](const std::string &What) {
    if (Trace)
      Trace->push_back(TraceEvent{Ctx.Sim.now(), What});
  };

  const unsigned NumSections = static_cast<unsigned>(Job.Sections.size());
  double TotalOutputKB = 0;
  for (const auto &Section : Job.Sections)
    for (const FunctionTask &T : Section)
      TotalOutputKB += T.OutputKB;

  // Join counters stay alive for the whole run.
  std::vector<std::unique_ptr<JoinCounter>> Joins;

  // --- Phase 4: runs in the master's Lisp process once all sections have
  // combined their results.
  auto RunAssembly = [&] {
    Record("master: all sections complete; assembly begins");
    Ctx.transfer(TotalOutputKB, [&](double) {
      LispStep Asm;
      Asm.WorkSec = Model.phase4Sec(Job.Phase4);
      Asm.AllocKB = static_cast<double>(Job.Phase4.allocationKB());
      Asm.LiveKB =
          Job.parseResidentKB() + TotalOutputKB * OutputRetainFactor;
      Ctx.lispStep(0, Asm, [&](StepCost) {
        // Assembly is compiler work, not coordination overhead.
        Record("master: download module linked");
        double ImageKB =
            static_cast<double>(Job.Phase4.ImageBytes) / 1024.0 + 1.0;
        Ctx.transfer(ImageKB, [](double) {});
      });
    });
  };

  auto SectionsJoin =
      std::make_unique<JoinCounter>(NumSections, [&] { RunAssembly(); });

  // --- One function master: startup, compile, write the result file,
  // report to the section master.
  auto RunFunctionMaster = [&](const FunctionTask *Task, unsigned W,
                               JoinCounter *FnJoin) {
    Record("fork function master for '" + Task->FunctionName + "' -> ws" +
           std::to_string(W));
    Ctx.startLisp(W, [&, Task, W, FnJoin](double StartupSec) {
      Stats.StartupSec += StartupSec;
      Record("ws" + std::to_string(W) + ": '" + Task->FunctionName +
             "' compiling (startup took " +
             std::to_string(static_cast<int>(StartupSec)) + "s)");
      LispStep Step;
      Step.WorkSec = Model.compileSec(Task->Metrics);
      Step.AllocKB = static_cast<double>(Task->Metrics.allocationKB());
      Step.LiveKB = FnMasterParseInfoKB +
                    static_cast<double>(Task->Metrics.workingSetKB());
      Ctx.lispStep(W, Step, [&, Task, FnJoin, W](StepCost Cost) {
        Stats.FnCpuSec += Cost.computeSec();
        Stats.FnGCSec += Cost.GCSec;
        Record("ws" + std::to_string(W) + ": '" + Task->FunctionName +
               "' done (cpu+gc " +
               std::to_string(static_cast<int>(Cost.computeSec())) + "s)");
        Ctx.transfer(Task->OutputKB, [&, FnJoin](double) {
          Ctx.Sim.after(Host.MessageSec, [FnJoin] { FnJoin->arrive(); });
        });
      });
    });
  };

  // --- Section masters.
  auto StartSection = [&, RunFunctionMaster](unsigned S) {
    const auto &Tasks = Job.Sections[S];
    const unsigned NumFns = static_cast<unsigned>(Tasks.size());
    double SectionOutKB = 0;
    for (const FunctionTask &T : Tasks)
      SectionOutKB += T.OutputKB;

    // When every function is done, the section master gathers the result
    // files, combines code and diagnostics, and reports to the master.
    JoinCounter *SectionsJoinPtr = SectionsJoin.get();
    auto Combine = [&, S, SectionOutKB, SectionsJoinPtr] {
      Record("section master " + std::to_string(S) +
             ": combining results and diagnostics");
      Ctx.transfer(SectionOutKB, [&, SectionOutKB, SectionsJoinPtr](double) {
        double CombineSec = Model.cMasterSec(CombineWorkPerKB * SectionOutKB);
        Ctx.cpu(0, CombineSec, [&, CombineSec, SectionOutKB,
                                SectionsJoinPtr] {
          Stats.SectionCpuSec += CombineSec;
          Ctx.transfer(SectionOutKB, [&, SectionsJoinPtr](double) {
            Ctx.Sim.after(Host.MessageSec,
                          [SectionsJoinPtr] { SectionsJoinPtr->arrive(); });
          });
        });
      });
    };
    Joins.push_back(std::make_unique<JoinCounter>(NumFns, Combine));
    JoinCounter *FnJoin = Joins.back().get();

    // Interpret the master's directives, then fork the function masters.
    double DirectiveSec = Model.cMasterSec(DirectiveWorkPerFn * NumFns);
    Ctx.cpu(0, DirectiveSec, [&, S, DirectiveSec, FnJoin, RunFunctionMaster] {
      Stats.SectionCpuSec += DirectiveSec;
      const auto &SectionTasks = Job.Sections[S];
      for (unsigned F = 0; F != SectionTasks.size(); ++F) {
        const FunctionTask *Task = &SectionTasks[F];
        unsigned W = Assign.WsOf[S][F];
        // The fork of each function master runs on the section master's
        // machine (the user's workstation).
        Ctx.cpu(0, Host.ForkSec, [&, Task, W, FnJoin, RunFunctionMaster] {
          Stats.SectionCpuSec += Host.ForkSec;
          RunFunctionMaster(Task, W, FnJoin);
        });
      }
    });
  };

  // --- Master: fork the parse process, parse, schedule, fork sections.
  Ctx.cpu(0, Host.ForkSec, [&, StartSection] {
    Stats.MasterCpuSec += Host.ForkSec;
    Ctx.startLisp(0, [&, StartSection](double StartupSec) {
      Stats.StartupSec += StartupSec;
      LispStep Parse;
      Parse.WorkSec = Model.phase1Sec(Job.Phase1);
      Parse.AllocKB = static_cast<double>(Job.Phase1.allocationKB());
      Parse.LiveKB = Job.parseResidentKB() * 0.5;
      Ctx.lispStep(0, Parse, [&, StartSection](StepCost Cost) {
        // "Time for one extra parse of the program to determine
        // partitioning" counts as master (implementation) overhead.
        Stats.MasterCpuSec += Cost.computeSec();
        Record("master: setup parse complete; scheduling " +
               std::to_string(Job.numFunctions()) + " function(s)");
        double SchedSec =
            Model.cMasterSec(SchedWorkPerFn * Job.numFunctions());
        Ctx.cpu(0, SchedSec, [&, SchedSec, StartSection] {
          Stats.MasterCpuSec += SchedSec;
          for (unsigned S = 0; S != NumSections; ++S) {
            Ctx.cpu(0, Host.ForkSec, [&, S, StartSection] {
              Stats.MasterCpuSec += Host.ForkSec;
              StartSection(S);
            });
          }
        });
      });
    });
  });

  Stats.ElapsedSec = Ctx.Sim.run();
  Stats.NetWaitSec = Ctx.NetWaitSec;
  Stats.PageWaitSec = Ctx.PageWaitSec;
  return Stats;
}

OverheadBreakdown parallel::computeOverheads(const SeqStats &Seq,
                                             const ParStats &Par,
                                             unsigned NumFunctions) {
  assert(NumFunctions > 0 && "overheads need at least one function");
  OverheadBreakdown B;
  B.ParElapsedSec = Par.ElapsedSec;
  B.TotalSec = Par.ElapsedSec - Seq.ElapsedSec / NumFunctions;
  B.ImplSec = Par.implOverheadSec();
  B.SysSec = B.TotalSec - B.ImplSec;
  return B;
}
