//===- SimRunner.cpp - Simulated compilation runs ----------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "parallel/SimRunner.h"

#include "cluster/Simulation.h"
#include "obs/TimeSeries.h"
#include "parallel/RetryRound.h"
#include "support/PRNG.h"

#include <algorithm>
#include <cassert>
#include <memory>

using namespace warpc;
using namespace warpc::parallel;
using namespace warpc::cluster;

namespace {

/// Parse information shipped to a function master (function ASTs plus
/// section signatures) — small compared to the sequential compiler's
/// whole-module structures.
constexpr double FnMasterParseInfoKB = 64.0;

/// In-image size of a function's emitted code before it is written out,
/// relative to the result file (Lisp structures are fatter than bytes).
constexpr double OutputRetainFactor = 2.0;

/// C work units for the master's scheduling decision per function.
constexpr double SchedWorkPerFn = 4000.0;

/// C work units for a section master to interpret directives, per
/// function in the section.
constexpr double DirectiveWorkPerFn = 2500.0;

/// C work units for a section master to combine results, per KB of
/// function output (code images and diagnostics).
constexpr double CombineWorkPerKB = 900.0;

/// Shared state of one simulated run. Continuation lambdas that form
/// cycles (loops over chunks or task lists) are retained in Keep and
/// released after the event loop drains, avoiding both dangling and
/// self-destruction hazards.
struct SimContext {
  Simulation Sim;
  SerialResource Ethernet;
  SerialResource Server;
  std::vector<std::unique_ptr<SerialResource>> Ws;
  /// Measurement jitter source (inert when JitterPct is zero).
  PRNG Jitter;
  const HostConfig &Host;
  const CostModel &Model;
  /// Active fault plan, or null: degraded (slow) hosts stretch their CPU
  /// service times by the plan's slowdown factor.
  const FaultPlan *Faults = nullptr;

  double NetWaitSec = 0;
  double PageWaitSec = 0;

  /// Closures kept alive for the duration of the run.
  std::vector<std::shared_ptr<void>> Keep;
  /// Self-referential closures (a loop object whose continuation captures
  /// a shared_ptr to itself) register a breaker here; the destructor runs
  /// them once the event loop has drained so the reference cycles cannot
  /// outlive the run.
  std::vector<std::function<void()>> CycleBreakers;

  SimContext(const HostConfig &Host, const CostModel &Model)
      : Ethernet(Sim, "ethernet", Host.EthernetContention),
        Server(Sim, "fileserver"), Jitter(Host.JitterSeed), Host(Host),
        Model(Model) {
    for (unsigned W = 0; W != Host.NumWorkstations; ++W)
      Ws.push_back(
          std::make_unique<SerialResource>(Sim, "ws" + std::to_string(W)));
  }

  ~SimContext() {
    for (std::function<void()> &Break : CycleBreakers)
      Break();
  }

  /// Uniform service-time stretch in [1-J, 1+J].
  double jittered(double Seconds) {
    if (Host.JitterPct <= 0)
      return Seconds;
    return Seconds * Jitter.uniform(1.0 - Host.JitterPct,
                                    1.0 + Host.JitterPct);
  }

  /// A file transfer: server service followed by the Ethernet segment.
  /// \p Done receives the elapsed transfer time.
  void transfer(double KB, std::function<void(double)> Done) {
    double Start = Sim.now();
    double ServerSec =
        jittered(KB / Host.ServerKBps + Host.ServerRequestSec);
    Server.request(
        ServerSec, [this, KB, Start, Done = std::move(Done)](double W1) {
          NetWaitSec += W1;
          double EtherSec = jittered(KB / Host.EthernetKBps);
          Ethernet.request(EtherSec,
                           [this, Start, Done = std::move(Done)](double W2) {
                             NetWaitSec += W2;
                             Done(Sim.now() - Start);
                           });
        });
  }

  /// CPU burst on workstation \p W. A degraded host (FaultPlan slowdown
  /// factor > 1) stretches its bursts; host 0 — the master's own
  /// workstation — is never degraded. \p Done receives the time the burst
  /// queued behind other work on the same machine, so a caller can place
  /// a trace span over just the service interval.
  void cpu(unsigned W, double Seconds, std::function<void(double)> Done) {
    assert(W < Ws.size() && "workstation out of range");
    double Stretch =
        (Faults && W != 0) ? std::max(1.0, Faults->slowdown(W)) : 1.0;
    Ws[W]->request(jittered(Seconds) * Stretch,
                   [Done = std::move(Done)](double Waited) { Done(Waited); });
  }

  /// Lisp process startup on \p W: core-image download from the file
  /// server plus initialization. \p Done receives the startup elapsed.
  void startLisp(unsigned W, std::function<void(double)> Done) {
    double Start = Sim.now();
    transfer(Host.CoreDownloadKB,
             [this, W, Start, Done = std::move(Done)](double) {
               cpu(W, Host.LispInitSec,
                   [this, Start, Done = std::move(Done)](double) {
                     Done(Sim.now() - Start);
                   });
             });
  }

  /// One Lisp compute step on \p W with GC and paging applied. Paging
  /// traffic interleaves with compute in chunks so that it contends with
  /// other processes' transfers. \p Done receives the StepCost.
  void lispStep(unsigned W, const LispStep &Step,
                std::function<void(StepCost)> Done) {
    StepCost Cost = Model.evaluate(Step, Host);
    if (Cost.PageTrafficKB < 1.0) {
      cpu(W, Cost.computeSec(),
          [Cost, Done = std::move(Done)](double) { Done(Cost); });
      return;
    }
    // Thrashing: alternate compute and page-fault service.
    constexpr unsigned Chunks = 4;
    struct ChunkLoop {
      unsigned Remaining = Chunks;
      std::function<void()> Step;
    };
    auto Loop = std::make_shared<ChunkLoop>();
    Keep.push_back(Loop);
    CycleBreakers.push_back([Loop] { Loop->Step = nullptr; });
    Loop->Step = [this, W, Cost, Loop, Done = std::move(Done)] {
      if (Loop->Remaining == 0) {
        Done(Cost);
        return;
      }
      --Loop->Remaining;
      cpu(W, Cost.computeSec() / Chunks, [this, Cost, Loop](double) {
        transfer(Cost.PageTrafficKB / Chunks, [this, Loop](double Sec) {
          PageWaitSec += Sec;
          Loop->Step();
        });
      });
    };
    Loop->Step();
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// Sequential simulation
//===----------------------------------------------------------------------===//

SeqStats parallel::simulateSequential(const CompilationJob &Job,
                                      const HostConfig &Host,
                                      const CostModel &Model) {
  SimContext Ctx(Host, Model);
  SeqStats Stats;

  // Flatten tasks in declaration order.
  std::vector<const FunctionTask *> Tasks;
  for (const auto &Section : Job.Sections)
    for (const FunctionTask &T : Section)
      Tasks.push_back(&T);

  const double ParseLiveKB =
      std::min(Job.parseResidentKB() * Model.SeqParseLiveFactor,
               Model.SeqParseLiveCapKB);

  // The chain: startup -> parse -> each function -> assembly -> write.
  struct SeqLoop {
    std::function<void(size_t, double)> CompileFrom;
  };
  auto Loop = std::make_shared<SeqLoop>();
  Ctx.Keep.push_back(Loop);

  Loop->CompileFrom = [&, Loop](size_t Index, double RetainedKB) {
    if (Index == Tasks.size()) {
      // Phase 4 with everything live in the image.
      LispStep Asm;
      Asm.WorkSec = Model.phase4Sec(Job.Phase4);
      Asm.AllocKB = static_cast<double>(Job.Phase4.allocationKB());
      Asm.PageScale = Model.SeqPagingLocality;
      Asm.LiveKB = ParseLiveKB + RetainedKB;
      Ctx.lispStep(0, Asm, [&](StepCost Cost) {
        Stats.CpuSec += Cost.computeSec();
        Stats.GCSec += Cost.GCSec;
        double ImageKB =
            static_cast<double>(Job.Phase4.ImageBytes) / 1024.0 + 1.0;
        Ctx.transfer(ImageKB, [](double) {});
      });
      return;
    }
    const FunctionTask *Task = Tasks[Index];
    LispStep Step;
    Step.WorkSec = Model.compileSec(Task->Metrics);
    Step.AllocKB = static_cast<double>(Task->Metrics.allocationKB());
    Step.PageScale = Model.SeqPagingLocality;
    // Live: whole-module parse structures + code already emitted for
    // earlier functions + this function's own working data.
    Step.LiveKB = ParseLiveKB + RetainedKB +
                  static_cast<double>(Task->Metrics.workingSetKB());
    Ctx.lispStep(0, Step, [&, Loop, Index, RetainedKB, Task](StepCost Cost) {
      Stats.CpuSec += Cost.computeSec();
      Stats.GCSec += Cost.GCSec;
      Loop->CompileFrom(Index + 1,
                        RetainedKB + Task->OutputKB * OutputRetainFactor);
    });
  };

  Ctx.startLisp(0, [&, Loop](double StartupSec) {
    Stats.StartupSec = StartupSec;
    LispStep Parse;
    Parse.WorkSec = Model.phase1Sec(Job.Phase1);
    Parse.AllocKB = static_cast<double>(Job.Phase1.allocationKB());
    Parse.LiveKB = ParseLiveKB * 0.5; // structures grow during the parse
    Ctx.lispStep(0, Parse, [&, Loop](StepCost Cost) {
      Stats.CpuSec += Cost.computeSec();
      Stats.GCSec += Cost.GCSec;
      Loop->CompileFrom(0, 0.0);
    });
  });

  Stats.ElapsedSec = Ctx.Sim.run();
  Stats.NetWaitSec = Ctx.NetWaitSec;
  Stats.PageWaitSec = Ctx.PageWaitSec;
  Loop->CompileFrom = nullptr;
  return Stats;
}

//===----------------------------------------------------------------------===//
// Parallel simulation
//===----------------------------------------------------------------------===//

namespace {

/// One function's distribution state during a fault-tolerant run.
struct TaskRec {
  const FunctionTask *Task = nullptr;
  int32_t FnId = -1; ///< Interned function id for trace events.
  unsigned Section = 0;
  unsigned HomeWs = 0; ///< Workstation the scheduler originally chose.
  unsigned LastWs = 0; ///< Workstation of the most recent attempt.
  unsigned Attempts = 0;
  bool Done = false;            ///< A result has been accepted.
  bool Reassigned = false;      ///< Counted into FunctionsReassigned.
  bool SpecScheduled = false;   ///< A straggler check has been armed.
  bool FallbackStarted = false; ///< Master-local recompile in flight.
  double EstimateSec = 0;       ///< Master's cost-model elapsed estimate.
  double NextTimeoutSec = 0;    ///< Current watchdog interval (backs off).
  double LastAttemptStart = 0;
  /// Span id of the most recent attempt's fork — the causal parent of a
  /// watchdog firing against that attempt.
  uint64_t LastForkId = 0;
  Simulation::CancelToken Timeout;
  Simulation::CancelToken SpecCheck;
  JoinCounter *Join = nullptr;
};

/// Recursive fault-handling actions. Held by shared_ptr in SimContext::Keep
/// so the mutually-recursive std::functions outlive every scheduled event;
/// the cycles are broken explicitly after the event loop drains.
/// Except for ArmTimeout (which reads the task's LastForkId when the
/// watchdog actually fires), every action takes the span id of the event
/// that caused it, so recovery chains stay causally linked in the trace.
struct FaultEngine {
  std::function<void(size_t, unsigned, bool, uint64_t)> Launch;
  std::function<void(size_t)> ArmTimeout;
  std::function<void(size_t, uint64_t)> ArmSpec;
  std::function<void(size_t, uint64_t)> Recover;
  std::function<void(size_t, uint64_t)> MasterFallback;
};

} // namespace

ParStats parallel::simulateParallel(const CompilationJob &Job,
                                    const Assignment &Assign,
                                    const HostConfig &Host,
                                    const CostModel &Model,
                                    obs::TraceRecorder *Rec,
                                    const driver::FaultPolicy &Policy) {
  assert(Assign.WsOf.size() == Job.Sections.size() &&
         "assignment does not match the job");
  using obs::EventKind;
  using obs::FaultCause;
  SimContext Ctx(Host, Model);
  const FaultPlan &Plan = Host.Faults;
  const bool FaultsActive = !Plan.empty();
  if (FaultsActive)
    Ctx.Faults = &Plan;
  PRNG LossPRNG(Plan.Seed);
  ParStats Stats;
  Stats.ProcessorsUsed = Assign.ProcessorsUsed;

  // All emission goes through lane 0: the simulator is single-threaded.
  // Spans that feed a Stats CPU ledger carry the exact unjittered value
  // in CpuSec; the span extent itself is simulated elapsed time.
  obs::TraceRecorder::Lane *Lane = Rec ? &Rec->lane(0) : nullptr;
  auto Instant = [&](EventKind K, obs::Phase Ph) -> obs::SpanEvent * {
    return Lane ? &Lane->instant(Ctx.Sim.now(), K, Ph) : nullptr;
  };
  auto Span = [&](double StartSec, EventKind K,
                  obs::Phase Ph) -> obs::SpanEvent * {
    return Lane ? &Lane->span(StartSec, Ctx.Sim.now() - StartSec, K, Ph)
                : nullptr;
  };

  const unsigned NumSections = static_cast<unsigned>(Job.Sections.size());
  double TotalOutputKB = 0;
  for (const auto &Section : Job.Sections)
    for (const FunctionTask &T : Section)
      TotalOutputKB += T.OutputKB;

  // Join counters stay alive for the whole run.
  std::vector<std::unique_ptr<JoinCounter>> Joins;

  // --- Task table. Built completely before the event loop starts, so the
  // vector never reallocates while events hold indices into it.
  auto Tasks = std::make_shared<std::vector<TaskRec>>();
  Ctx.Keep.push_back(Tasks);
  std::vector<std::vector<size_t>> SectionTaskIds(NumSections);

  auto MakeStep = [&](const FunctionTask &T) {
    LispStep Step;
    Step.WorkSec = Model.compileSec(T.Metrics);
    Step.AllocKB = static_cast<double>(T.Metrics.allocationKB());
    Step.LiveKB =
        FnMasterParseInfoKB + static_cast<double>(T.Metrics.workingSetKB());
    return Step;
  };

  // The master's elapsed estimate for one function master, used to derive
  // its watchdog timeout: quiet-network startup plus a backlog term (the
  // fan-out pushes every core-image download through one file server),
  // compute including GC, result write-back, and the completion message.
  const unsigned TotalFns = Job.numFunctions();
  auto EstimateFor = [&](const FunctionTask &T) {
    StepCost Cost = Model.evaluate(MakeStep(T), Host);
    double ServerLegSec =
        Host.CoreDownloadKB / Host.ServerKBps + Host.ServerRequestSec;
    double StartupSec =
        ServerLegSec + Host.CoreDownloadKB / Host.EthernetKBps +
        Host.LispInitSec;
    double BacklogSec = (TotalFns > 0 ? TotalFns - 1 : 0) * ServerLegSec;
    double OutputSec = (T.OutputKB + Cost.PageTrafficKB) *
                           (1.0 / Host.ServerKBps + 1.0 / Host.EthernetKBps) +
                       Host.ServerRequestSec;
    return StartupSec + BacklogSec + Cost.computeSec() + OutputSec +
           Host.MessageSec;
  };

  for (unsigned S = 0; S != NumSections; ++S) {
    for (unsigned F = 0; F != Job.Sections[S].size(); ++F) {
      TaskRec TR;
      TR.Task = &Job.Sections[S][F];
      TR.FnId = Rec ? Rec->internFunction(TR.Task->FunctionName)
                    : static_cast<int32_t>(Tasks->size());
      TR.Section = S;
      TR.HomeWs = Assign.WsOf[S][F];
      TR.LastWs = TR.HomeWs;
      TR.EstimateSec = EstimateFor(*TR.Task);
      SectionTaskIds[S].push_back(Tasks->size());
      Tasks->push_back(TR);
    }
  }

  // Time series of concurrently compiling function masters.
  const int32_t ActiveCtr =
      Rec ? Rec->internCounter("active_function_masters") : -1;
  auto ActiveFnMasters = std::make_shared<int>(0);
  // Cumulative scheduler activity, sampled at each recovery event so the
  // fault machinery shows up as counter tracks next to the gauges.
  const int32_t WatchdogCtr =
      Rec ? Rec->internCounter("scheduler.watchdog_fires") : -1;
  const int32_t ReassignCtr =
      Rec ? Rec->internCounter("scheduler.reassignments") : -1;
  const int32_t SpecCtr =
      Rec ? Rec->internCounter("scheduler.speculative_launches") : -1;
  unsigned ReassignEvents = 0;
  unsigned SpecEvents = 0;
  if (Rec)
    Rec->setTopology(Host.NumWorkstations, NumSections);

  // Span ids of the causal frontier: the newest accepted result per
  // section (parents SpanCombine), the last section's completion report
  // (parents AllSectionsDone), and the link milestone (parents
  // RunComplete). Zero means "not yet recorded".
  std::vector<uint64_t> SectionLastDoneId(NumSections, 0);
  uint64_t LastSectionDoneId = 0;
  uint64_t ModuleLinkedId = 0;

  // Estimated work currently placed on each host; reassignment picks the
  // least-loaded live machine.
  std::vector<double> WsLoad(Host.NumWorkstations, 0.0);

  auto HostUp = [&](unsigned W) {
    return W == 0 || !FaultsActive || Plan.isUp(W, Ctx.Sim.now());
  };
  auto LostWork = [&](unsigned W, double Since) {
    return FaultsActive && W != 0 && Plan.losesWork(W, Since, Ctx.Sim.now());
  };
  // Elapsed an attempt really consumed before now — clipped at the host's
  // crash instant so a long-unnoticed failure is not billed as retry time.
  auto ConsumedSince = [&](unsigned W, double Since) {
    double End = Ctx.Sim.now();
    if (FaultsActive) {
      const HostFault &H = Plan.host(W);
      if (H.crashes() && H.CrashAtSec > Since && H.CrashAtSec < End)
        End = H.CrashAtSec;
    }
    return std::max(0.0, End - Since);
  };
  auto PickHost = [&](unsigned Avoid) {
    std::vector<char> Alive(Host.NumWorkstations, 0);
    for (unsigned W = 0; W != Host.NumWorkstations; ++W)
      Alive[W] = HostUp(W) ? 1 : 0;
    return chooseReassignment(WsLoad, Alive, Avoid);
  };

  // --- Phase 4: runs in the master's Lisp process once all sections have
  // combined their results. The compilation is over when the final image
  // transfer lands; abandoned attempts (redundant speculation losers, work
  // on crashed hosts) may still be draining from the event queue after
  // that, and must not count toward the elapsed time.
  double FinishedAtSec = -1.0;
  auto RunAssembly = [&] {
    uint64_t AllDoneId = 0;
    if (auto *E = Instant(EventKind::AllSectionsDone, obs::Phase::Assembly)) {
      E->Host = 0;
      E->Parent = LastSectionDoneId;
      AllDoneId = E->spanId();
    }
    Ctx.transfer(TotalOutputKB, [&, AllDoneId](double) {
      const double AsmStart = Ctx.Sim.now();
      LispStep Asm;
      Asm.WorkSec = Model.phase4Sec(Job.Phase4);
      Asm.AllocKB = static_cast<double>(Job.Phase4.allocationKB());
      Asm.LiveKB =
          Job.parseResidentKB() + TotalOutputKB * OutputRetainFactor;
      Ctx.lispStep(0, Asm, [&, AsmStart, AllDoneId](StepCost) {
        // Assembly is compiler work, not coordination overhead, so its
        // span carries no CpuSec attribution.
        uint64_t AsmId = AllDoneId;
        if (auto *E = Span(AsmStart, EventKind::SpanAssembly,
                           obs::Phase::Assembly)) {
          E->Host = 0;
          E->Parent = AllDoneId;
          AsmId = E->spanId();
        }
        if (auto *E = Instant(EventKind::ModuleLinked,
                              obs::Phase::Assembly)) {
          E->Host = 0;
          E->Parent = AsmId;
          ModuleLinkedId = E->spanId();
        }
        double ImageKB =
            static_cast<double>(Job.Phase4.ImageBytes) / 1024.0 + 1.0;
        Ctx.transfer(ImageKB, [&](double) { FinishedAtSec = Ctx.Sim.now(); });
      });
    });
  };

  auto SectionsJoin =
      std::make_unique<JoinCounter>(NumSections, [&] { RunAssembly(); });

  // One milestone check, shared with the thread engine through
  // checkAttempt: abandon the attempt if its host crashed since it began
  // (billing clipped at the crash instant) or if a competing attempt
  // already delivered (billing the full elapsed — the machine really ran).
  // \p ReleaseLoad is false only after the caller already released the
  // host's estimated load itself.
  auto AttemptAbandoned = [&](size_t Id, unsigned W, double AttemptStart,
                              bool LostToCrash, FaultCause CrashCause,
                              const auto &Tag, bool ReleaseLoad,
                              uint64_t ParentId) -> bool {
    TaskRec &TR = (*Tasks)[Id];
    AttemptGate Gate = checkAttempt(LostToCrash, CrashCause, TR.Done);
    if (Gate.Proceed)
      return false;
    if (auto *E = Instant(EventKind::AttemptLost, obs::Phase::Recovery)) {
      Tag(E, static_cast<int32_t>(W));
      E->Cause = Gate.Cause;
      E->Parent = ParentId;
    }
    Stats.RetriesSec += Gate.ClipAtCrash ? ConsumedSince(W, AttemptStart)
                                         : Ctx.Sim.now() - AttemptStart;
    if (ReleaseLoad)
      WsLoad[W] -= TR.EstimateSec;
    return true;
  };

  // --- The fault engine: launching (and re-launching) function masters,
  // watchdog timeouts, reassignment, straggler speculation, and the
  // master-local fallback recompile. With an empty fault plan only Launch
  // ever runs, and its event schedule is exactly the legacy one.
  auto Eng = std::make_shared<FaultEngine>();
  Ctx.Keep.push_back(Eng);

  // One attempt of one function master: startup, compile, write the
  // result file, report to the section master. Milestone checks discard
  // the attempt if its host crashed since the attempt began or if a
  // competing attempt already delivered; a discarded attempt is *not*
  // retried here — the master's watchdog timeout drives recovery.
  Eng->Launch = [&, Eng](size_t Id, unsigned W, bool Speculative,
                         uint64_t ParentId) {
    {
      TaskRec &TR = (*Tasks)[Id];
      ++TR.Attempts;
      TR.LastWs = W;
      WsLoad[W] += TR.EstimateSec;
    }
    const bool Extra = (*Tasks)[Id].Attempts > 1;
    const int32_t Attempt = static_cast<int32_t>((*Tasks)[Id].Attempts);
    // Tags every event of this attempt, so the analyzer can stitch the
    // winning fork -> startup -> compile -> done chain back together.
    auto Tag = [Tasks, Id, Attempt, Speculative](obs::SpanEvent *E,
                                                 int32_t HostId) {
      if (!E)
        return;
      TaskRec &TR = (*Tasks)[Id];
      E->Host = HostId;
      E->Section = static_cast<int32_t>(TR.Section);
      E->Function = TR.FnId;
      E->Attempt = Attempt;
      E->Speculative = Speculative;
    };
    const double ForkStart = Ctx.Sim.now();
    // The fork of each function master runs on the section master's
    // machine (the user's workstation).
    Ctx.cpu(0, Host.ForkSec, [&, Eng, Id, W, Speculative, Extra, Tag,
                              ForkStart, ParentId](double ForkWaitSec) {
      Stats.SectionCpuSec += Host.ForkSec;
      TaskRec &TR = (*Tasks)[Id];
      const FunctionTask *Task = TR.Task;
      // The fork's CPU hits the section-master ledger no matter what
      // happens next, so the span is emitted unconditionally too.
      uint64_t ForkId = ParentId;
      if (auto *E = Span(ForkStart + ForkWaitSec, EventKind::SpanFunctionFork,
                         obs::Phase::Setup)) {
        Tag(E, 0);
        E->CpuSec = Host.ForkSec;
        E->Parent = ParentId;
        ForkId = E->spanId();
      }
      TR.LastForkId = ForkId;
      if (TR.Done) {
        WsLoad[W] -= TR.EstimateSec;
        return;
      }
      if (FaultsActive && !HostUp(W)) {
        // The fork's first message goes unanswered: the master notices
        // right away and re-places the function without burning a timeout.
        uint64_t FailId = ForkId;
        if (auto *E = Instant(EventKind::PlacementFailed,
                              obs::Phase::Recovery)) {
          Tag(E, static_cast<int32_t>(W));
          E->Cause = FaultCause::HostDown;
          E->Parent = ForkId;
          FailId = E->spanId();
        }
        WsLoad[W] -= TR.EstimateSec;
        Eng->Recover(Id, FailId);
        return;
      }
      const double AttemptStart = Ctx.Sim.now();
      TR.LastAttemptStart = AttemptStart;
      if (!Speculative)
        Eng->ArmSpec(Id, ForkId);
      Ctx.startLisp(W, [&, Eng, Id, W, Task, Speculative, Extra, Tag,
                        AttemptStart, ForkId](double StartupSec) {
        if (AttemptAbandoned(Id, W, AttemptStart, LostWork(W, AttemptStart),
                             FaultCause::CrashDuringStartup, Tag, true,
                             ForkId))
          return;
        Stats.StartupSec += StartupSec;
        uint64_t StartupId = ForkId;
        if (auto *E = Span(Ctx.Sim.now() - StartupSec, EventKind::SpanStartup,
                           obs::Phase::Setup)) {
          Tag(E, static_cast<int32_t>(W));
          E->Parent = ForkId;
          StartupId = E->spanId();
        }
        const double CompileStart = Ctx.Sim.now();
        if (Lane && ActiveCtr >= 0)
          Lane->counter(CompileStart, ActiveCtr, ++*ActiveFnMasters);
        LispStep Step = MakeStep(*Task);
        Ctx.lispStep(W, Step, [&, Eng, Id, W, Task, Speculative, Extra, Tag,
                               AttemptStart, CompileStart,
                               StartupId](StepCost Cost) {
          if (Lane && ActiveCtr >= 0)
            Lane->counter(Ctx.Sim.now(), ActiveCtr, --*ActiveFnMasters);
          if (AttemptAbandoned(Id, W, AttemptStart,
                               LostWork(W, AttemptStart),
                               FaultCause::CrashDuringCompile, Tag, true,
                               StartupId))
            return;
          Stats.FnCpuSec += Cost.computeSec();
          Stats.FnGCSec += Cost.GCSec;
          uint64_t CompileId = StartupId;
          if (auto *E = Span(CompileStart, EventKind::SpanCompile,
                             obs::Phase::Compile)) {
            Tag(E, static_cast<int32_t>(W));
            E->Parent = StartupId;
            CompileId = E->spanId();
          }
          Ctx.transfer(Task->OutputKB, [&, Eng, Id, W, Task, Speculative,
                                        Extra, Tag, AttemptStart,
                                        CompileId](double) {
            TaskRec &TR = (*Tasks)[Id];
            if (AttemptAbandoned(Id, W, AttemptStart,
                                 LostWork(W, AttemptStart),
                                 FaultCause::CrashDuringResult, Tag, true,
                                 CompileId))
              return;
            // The result file is durable on the server now; only the
            // completion message itself can still be lost.
            if (FaultsActive && W != 0 && Plan.MessageLossProb > 0 &&
                LossPRNG.uniform() < Plan.MessageLossProb) {
              if (auto *E = Instant(EventKind::MessageLost,
                                    obs::Phase::Recovery)) {
                Tag(E, static_cast<int32_t>(W));
                E->Cause = FaultCause::MessageLoss;
                E->Parent = CompileId;
              }
              Stats.RetriesSec += Ctx.Sim.now() - AttemptStart;
              WsLoad[W] -= TR.EstimateSec;
              return;
            }
            Ctx.Sim.after(Host.MessageSec, [&, Eng, Id, W, Speculative, Extra,
                                            Tag, AttemptStart, CompileId] {
              TaskRec &TR = (*Tasks)[Id];
              WsLoad[W] -= TR.EstimateSec;
              // The load was already released; a crash can no longer lose
              // the durable result file, only supersession applies.
              if (AttemptAbandoned(Id, W, AttemptStart, false,
                                   FaultCause::None, Tag, false, CompileId))
                return;
              TR.Done = true;
              if (TR.Timeout) {
                *TR.Timeout = true;
                TR.Timeout = nullptr;
              }
              if (TR.SpecCheck) {
                *TR.SpecCheck = true;
                TR.SpecCheck = nullptr;
              }
              ++Stats.FunctionsCompleted;
              if (Speculative)
                ++Stats.SpeculativeWins;
              if (Extra)
                Stats.RetriesSec += Ctx.Sim.now() - AttemptStart;
              // The completion message crosses back to the section master;
              // its id becomes the section's causal frontier so Combine
              // chains off whichever result really arrived last.
              if (auto *E = Instant(EventKind::FunctionDone,
                                    obs::Phase::Compile)) {
                Tag(E, static_cast<int32_t>(W));
                E->Parent = CompileId;
                SectionLastDoneId[TR.Section] = E->spanId();
              }
              TR.Join->arrive();
            });
          });
        });
      });
    });
  };

  Eng->ArmTimeout = [&, Eng](size_t Id) {
    if (!FaultsActive)
      return;
    TaskRec &TR = (*Tasks)[Id];
    if (TR.Timeout)
      *TR.Timeout = true;
    TR.Timeout = Ctx.Sim.atCancellable(
        Ctx.Sim.now() + TR.NextTimeoutSec, [&, Eng, Id] {
          TaskRec &TR = (*Tasks)[Id];
          if (TR.Done || TR.FallbackStarted)
            return;
          ++Stats.TimeoutsFired;
          uint64_t TimeoutId = TR.LastForkId;
          if (auto *E = Instant(EventKind::TimeoutFired,
                                obs::Phase::Recovery)) {
            E->Host = static_cast<int32_t>(TR.LastWs);
            E->Section = static_cast<int32_t>(TR.Section);
            E->Function = TR.FnId;
            E->Attempt = static_cast<int32_t>(TR.Attempts);
            E->Cause = FaultCause::TimeoutExpired;
            E->Parent = TR.LastForkId;
            TimeoutId = E->spanId();
          }
          if (Lane && WatchdogCtr >= 0)
            Lane->counter(Ctx.Sim.now(), WatchdogCtr, Stats.TimeoutsFired);
          Eng->Recover(Id, TimeoutId);
        });
  };

  Eng->Recover = [&, Eng](size_t Id, uint64_t ParentId) {
    TaskRec &TR = (*Tasks)[Id];
    if (TR.Done || TR.FallbackStarted)
      return;
    if (TR.Attempts >= Policy.MaxAttempts) {
      Eng->MasterFallback(Id, ParentId);
      return;
    }
    unsigned W = PickHost(TR.LastWs);
    if (W != TR.HomeWs && !TR.Reassigned) {
      TR.Reassigned = true;
      ++Stats.FunctionsReassigned;
    }
    TR.NextTimeoutSec *= Policy.BackoffFactor;
    uint64_t ReassignId = ParentId;
    if (auto *E = Instant(EventKind::Reassigned, obs::Phase::Recovery)) {
      E->Host = static_cast<int32_t>(W);
      E->Section = static_cast<int32_t>(TR.Section);
      E->Function = TR.FnId;
      E->Attempt = static_cast<int32_t>(TR.Attempts + 1);
      E->Parent = ParentId;
      ReassignId = E->spanId();
    }
    ++ReassignEvents;
    if (Lane && ReassignCtr >= 0)
      Lane->counter(Ctx.Sim.now(), ReassignCtr, ReassignEvents);
    Eng->ArmTimeout(Id);
    Eng->Launch(Id, W, false, ReassignId);
  };

  // Last resort after the attempt cap: the master recompiles the function
  // in its own Lisp process, which already holds the module's parse data.
  // Host 0 is reliable, so this always completes.
  Eng->MasterFallback = [&, Eng](size_t Id, uint64_t ParentId) {
    TaskRec &TR = (*Tasks)[Id];
    if (TR.Done || TR.FallbackStarted)
      return;
    TR.FallbackStarted = true;
    if (TR.Timeout) {
      *TR.Timeout = true;
      TR.Timeout = nullptr;
    }
    ++Stats.MasterRecompiles;
    const double Start = Ctx.Sim.now();
    LispStep Step = MakeStep(*TR.Task);
    Step.LiveKB += Job.parseResidentKB();
    Ctx.lispStep(0, Step, [&, Eng, Id, Start, ParentId](StepCost Cost) {
      TaskRec &TR = (*Tasks)[Id];
      Stats.FnCpuSec += Cost.computeSec();
      Stats.FnGCSec += Cost.GCSec;
      // Emitted whether or not this recompile wins, so the trace's
      // recompile count matches Stats.MasterRecompiles.
      uint64_t RecompileId = ParentId;
      if (auto *E = Span(Start, EventKind::SpanMasterRecompile,
                         obs::Phase::Recovery)) {
        E->Host = 0;
        E->Section = static_cast<int32_t>(TR.Section);
        E->Function = TR.FnId;
        E->Cause = FaultCause::AttemptCapReached;
        E->Parent = ParentId;
        RecompileId = E->spanId();
      }
      if (TR.Done) {
        Stats.RetriesSec += Ctx.Sim.now() - Start;
        return;
      }
      Ctx.transfer(TR.Task->OutputKB, [&, Eng, Id, Start,
                                       RecompileId](double) {
        TaskRec &TR = (*Tasks)[Id];
        Stats.RetriesSec += Ctx.Sim.now() - Start;
        if (TR.Done)
          return;
        TR.Done = true;
        if (TR.SpecCheck) {
          *TR.SpecCheck = true;
          TR.SpecCheck = nullptr;
        }
        ++Stats.FunctionsCompleted;
        // Attempt 0 marks a master-fallback win (never a distributed
        // attempt, whose numbering starts at 1).
        if (auto *E = Instant(EventKind::FunctionDone, obs::Phase::Compile)) {
          E->Host = 0;
          E->Section = static_cast<int32_t>(TR.Section);
          E->Function = TR.FnId;
          E->Attempt = 0;
          E->Cause = FaultCause::AttemptCapReached;
          E->Parent = RecompileId;
          SectionLastDoneId[TR.Section] = E->spanId();
        }
        TR.Join->arrive();
      });
    });
  };

  // Straggler speculation: a soft deadline at half the watchdog interval.
  // A function master that runs well past the master's estimate — slow
  // host, silently crashed host, lost completion message — is duplicated
  // on another live machine and whichever copy reports first wins. The
  // original is not declared dead; the hard watchdog still backs it up.
  // One speculation per function, and only if no recovery has superseded
  // the attempt it was armed for.
  Eng->ArmSpec = [&, Eng](size_t Id, uint64_t ParentId) {
    if (!FaultsActive || !Policy.SpeculateStragglers)
      return;
    TaskRec &TR = (*Tasks)[Id];
    if (TR.SpecScheduled)
      return;
    TR.SpecScheduled = true;
    const unsigned ArmedAttempts = TR.Attempts;
    double SlackSec = std::max(Policy.MinTimeoutSec,
                               0.5 * Policy.TimeoutFactor * TR.EstimateSec);
    TR.SpecCheck = Ctx.Sim.atCancellable(
        Ctx.Sim.now() + SlackSec, [&, Eng, Id, ArmedAttempts, ParentId] {
          TaskRec &TR = (*Tasks)[Id];
          if (TR.Done || TR.FallbackStarted || TR.Attempts != ArmedAttempts)
            return;
          if (TR.Attempts >= Policy.MaxAttempts)
            return; // the watchdog path handles exhaustion
          unsigned W = PickHost(TR.LastWs);
          uint64_t SpecId = ParentId;
          if (auto *E = Instant(EventKind::SpeculationLaunched,
                                obs::Phase::Recovery)) {
            E->Host = static_cast<int32_t>(W);
            E->Section = static_cast<int32_t>(TR.Section);
            E->Function = TR.FnId;
            E->Attempt = static_cast<int32_t>(TR.Attempts + 1);
            E->Speculative = true;
            E->Parent = ParentId;
            SpecId = E->spanId();
          }
          ++SpecEvents;
          if (Lane && SpecCtr >= 0)
            Lane->counter(Ctx.Sim.now(), SpecCtr, SpecEvents);
          Eng->Launch(Id, W, true, SpecId);
        });
  };

  // --- Section masters.
  auto StartSection = [&, Eng](unsigned S, uint64_t ParentId) {
    const auto &SectionTasks = Job.Sections[S];
    const unsigned NumFns = static_cast<unsigned>(SectionTasks.size());
    double SectionOutKB = 0;
    for (const FunctionTask &T : SectionTasks)
      SectionOutKB += T.OutputKB;

    // When every function is done, the section master gathers the result
    // files, combines code and diagnostics, and reports to the master.
    // Combine's causal parent is the section's last accepted result: the
    // message that released the join.
    JoinCounter *SectionsJoinPtr = SectionsJoin.get();
    auto Combine = [&, S, SectionOutKB, SectionsJoinPtr] {
      const double CombineStart = Ctx.Sim.now();
      Ctx.transfer(SectionOutKB, [&, S, SectionOutKB, SectionsJoinPtr,
                                  CombineStart](double) {
        double CombineSec = Model.cMasterSec(CombineWorkPerKB * SectionOutKB);
        Ctx.cpu(0, CombineSec, [&, S, CombineSec, SectionOutKB,
                                SectionsJoinPtr, CombineStart](double) {
          Stats.SectionCpuSec += CombineSec;
          uint64_t CombineId = SectionLastDoneId[S];
          if (auto *E = Span(CombineStart, EventKind::SpanCombine,
                             obs::Phase::Combine)) {
            E->Host = 0;
            E->Section = static_cast<int32_t>(S);
            E->CpuSec = CombineSec;
            E->Parent = SectionLastDoneId[S];
            CombineId = E->spanId();
          }
          Ctx.transfer(SectionOutKB, [&, S, SectionsJoinPtr,
                                      CombineId](double) {
            Ctx.Sim.after(Host.MessageSec, [&, S, SectionsJoinPtr,
                                            CombineId] {
              if (auto *E = Instant(EventKind::SectionDone,
                                    obs::Phase::Combine)) {
                E->Host = 0;
                E->Section = static_cast<int32_t>(S);
                E->Parent = CombineId;
                LastSectionDoneId = E->spanId();
              }
              SectionsJoinPtr->arrive();
            });
          });
        });
      });
    };
    Joins.push_back(std::make_unique<JoinCounter>(NumFns, Combine));
    JoinCounter *FnJoin = Joins.back().get();
    for (size_t Id : SectionTaskIds[S])
      (*Tasks)[Id].Join = FnJoin;

    // Interpret the master's directives, then fork the function masters,
    // arming a watchdog per function when a fault plan is active. The
    // timeout is derived from the master's own cost estimate.
    double DirectiveSec = Model.cMasterSec(DirectiveWorkPerFn * NumFns);
    const double DirectivesStart = Ctx.Sim.now();
    Ctx.cpu(0, DirectiveSec, [&, Eng, S, DirectiveSec, DirectivesStart,
                              ParentId](double WaitSec) {
      Stats.SectionCpuSec += DirectiveSec;
      uint64_t DirectivesId = ParentId;
      if (auto *E = Span(DirectivesStart + WaitSec, EventKind::SpanDirectives,
                         obs::Phase::Schedule)) {
        E->Host = 0;
        E->Section = static_cast<int32_t>(S);
        E->CpuSec = DirectiveSec;
        E->Parent = ParentId;
        DirectivesId = E->spanId();
      }
      for (size_t Id : SectionTaskIds[S]) {
        TaskRec &TR = (*Tasks)[Id];
        // A warm cache entry replaces the whole function-master
        // lifecycle (fork, startup, compile, write-back) with a fixed-
        // cost lookup on the section master's own machine. The result
        // file already sits on the file server, so Combine's gather
        // transfer still moves it; no timeout is armed — host 0 does not
        // fail.
        if (Job.CacheEnabled && TR.Task->Cached) {
          const double LookupStart = Ctx.Sim.now();
          Ctx.cpu(0, Host.CacheLookupSec, [&, Id, LookupStart,
                                           DirectivesId](double WaitSec) {
            TaskRec &TR = (*Tasks)[Id];
            Stats.SectionCpuSec += Host.CacheLookupSec;
            if (auto *E = Span(LookupStart + WaitSec,
                               EventKind::SpanCacheHit,
                               obs::Phase::Compile)) {
              E->Host = 0;
              E->Section = static_cast<int32_t>(TR.Section);
              E->Function = TR.FnId;
              E->CpuSec = Host.CacheLookupSec;
              E->Parent = DirectivesId;
              SectionLastDoneId[TR.Section] = E->spanId();
            }
            ++Stats.CacheHits;
            Stats.CacheBytesKB += TR.Task->OutputKB;
            ++Stats.FunctionsCompleted;
            TR.Done = true;
            TR.Join->arrive();
          });
          continue;
        }
        if (Job.CacheEnabled)
          ++Stats.CacheMisses;
        TR.NextTimeoutSec = std::max(Policy.MinTimeoutSec,
                                     Policy.TimeoutFactor * TR.EstimateSec);
        Eng->ArmTimeout(Id);
        Eng->Launch(Id, TR.HomeWs, false, DirectivesId);
      }
    });
  };

  // --- Telemetry sampler: a self-rescheduling tick on the simulated
  // clock polls the scheduler/cache/host gauges. The tick requests no
  // resources, so arming it never perturbs the run's service times; the
  // first sample is taken synchronously at t=0, before the master forks.
  std::shared_ptr<obs::TimeSeriesSet> Telemetry;
  if (Rec) {
    Telemetry = std::make_shared<obs::TimeSeriesSet>();
    Telemetry->registerGauge("sched.tasks_pending", [Tasks] {
      int Pending = 0;
      for (const TaskRec &TR : *Tasks)
        Pending += TR.Done ? 0 : 1;
      return static_cast<double>(Pending);
    });
    Telemetry->registerGauge("sched.inflight_compiles", [ActiveFnMasters] {
      return static_cast<double>(*ActiveFnMasters);
    });
    Telemetry->registerGauge("cache.hit_rate", [&Stats] {
      double Probes =
          static_cast<double>(Stats.CacheHits + Stats.CacheMisses);
      return Probes > 0 ? Stats.CacheHits / Probes : 0.0;
    });
    for (unsigned W = 0; W != Host.NumWorkstations; ++W)
      Telemetry->registerGauge("host.busy.ws" + std::to_string(W),
                               [&Ctx, W] {
                                 double Now = Ctx.Sim.now();
                                 if (Now <= 0)
                                   return 0.0;
                                 return std::min(
                                     1.0, Ctx.Ws[W]->busySeconds() / Now);
                               });
    struct SamplerLoop {
      std::function<void()> Tick;
    };
    auto Sampler = std::make_shared<SamplerLoop>();
    Ctx.Keep.push_back(Sampler);
    Ctx.CycleBreakers.push_back([Sampler] { Sampler->Tick = nullptr; });
    Sampler->Tick = [&, Sampler, Telemetry] {
      if (FinishedAtSec >= 0)
        return;
      Telemetry->sampleAll(Ctx.Sim.now());
      Ctx.Sim.after(Host.TelemetrySamplePeriodSec, [Sampler] {
        if (Sampler->Tick)
          Sampler->Tick();
      });
    };
    Sampler->Tick();
  }

  // --- Master: fork the parse process, parse, schedule, fork sections.
  const double MasterForkStart = Ctx.Sim.now();
  Ctx.cpu(0, Host.ForkSec, [&, StartSection, MasterForkStart](double WaitSec) {
    Stats.MasterCpuSec += Host.ForkSec;
    uint64_t MForkId = 0;
    if (auto *E = Span(MasterForkStart + WaitSec, EventKind::SpanMasterFork,
                       obs::Phase::Setup)) {
      E->Host = 0;
      E->CpuSec = Host.ForkSec;
      MForkId = E->spanId();
    }
    Ctx.startLisp(0, [&, StartSection, MForkId](double StartupSec) {
      Stats.StartupSec += StartupSec;
      uint64_t MStartupId = MForkId;
      if (auto *E = Span(Ctx.Sim.now() - StartupSec, EventKind::SpanStartup,
                         obs::Phase::Setup)) {
        E->Host = 0;
        E->Parent = MForkId;
        MStartupId = E->spanId();
      }
      const double ParseStart = Ctx.Sim.now();
      LispStep Parse;
      Parse.WorkSec = Model.phase1Sec(Job.Phase1);
      Parse.AllocKB = static_cast<double>(Job.Phase1.allocationKB());
      Parse.LiveKB = Job.parseResidentKB() * 0.5;
      Ctx.lispStep(0, Parse, [&, StartSection, ParseStart,
                              MStartupId](StepCost Cost) {
        // "Time for one extra parse of the program to determine
        // partitioning" counts as master (implementation) overhead.
        Stats.MasterCpuSec += Cost.computeSec();
        uint64_t ParseId = MStartupId;
        if (auto *E = Span(ParseStart, EventKind::SpanParse,
                           obs::Phase::Parse)) {
          E->Host = 0;
          E->CpuSec = Cost.computeSec();
          E->Parent = MStartupId;
          ParseId = E->spanId();
        }
        double SchedSec =
            Model.cMasterSec(SchedWorkPerFn * Job.numFunctions());
        const double SchedStart = Ctx.Sim.now();
        Ctx.cpu(0, SchedSec, [&, SchedSec, StartSection, SchedStart,
                              ParseId](double WaitSec) {
          Stats.MasterCpuSec += SchedSec;
          uint64_t SchedId = ParseId;
          if (auto *E = Span(SchedStart + WaitSec, EventKind::SpanSchedule,
                             obs::Phase::Schedule)) {
            E->Host = 0;
            E->CpuSec = SchedSec;
            E->Parent = ParseId;
            SchedId = E->spanId();
          }
          for (unsigned S = 0; S != NumSections; ++S) {
            const double SecForkStart = Ctx.Sim.now();
            Ctx.cpu(0, Host.ForkSec, [&, S, StartSection, SecForkStart,
                                      SchedId](double WaitSec) {
              Stats.MasterCpuSec += Host.ForkSec;
              uint64_t SecForkId = SchedId;
              if (auto *E = Span(SecForkStart + WaitSec,
                                 EventKind::SpanSectionFork,
                                 obs::Phase::Setup)) {
                E->Host = 0;
                E->Section = static_cast<int32_t>(S);
                E->CpuSec = Host.ForkSec;
                E->Parent = SchedId;
                SecForkId = E->spanId();
              }
              StartSection(S, SecForkId);
            });
          }
        });
      });
    });
  });

  double DrainedAtSec = Ctx.Sim.run();
  Stats.ElapsedSec = FinishedAtSec >= 0 ? FinishedAtSec : DrainedAtSec;
  Stats.NetWaitSec = Ctx.NetWaitSec;
  Stats.PageWaitSec = Ctx.PageWaitSec;
  if (Rec) {
    obs::SpanEvent &E = Lane->instant(Stats.ElapsedSec,
                                      EventKind::RunComplete,
                                      obs::Phase::Assembly);
    E.Host = 0;
    E.Parent = ModuleLinkedId;
    // Callers that also ran a sequential baseline overwrite the zero
    // SeqElapsedSec via setRunTotals before finish().
    Rec->setRunTotals(Stats.ElapsedSec, 0.0, Job.numFunctions());
    if (Telemetry) {
      // Close the series with an end-of-run sample (the straggler check
      // reads each host's final busy fraction), then materialize them as
      // counter tracks and flag anomalies in the trace itself.
      Telemetry->sampleAll(Stats.ElapsedSec);
      std::vector<obs::TimeSeries> Series = Telemetry->snapshot();
      obs::emitCounterTracks(*Rec, 0, Series);
      for (const obs::Anomaly &A : obs::detectAnomalies(Series)) {
        obs::SpanEvent &AE = Lane->instant(
            A.TSec, EventKind::AnomalyDetected, obs::Phase::Recovery);
        AE.Host = A.Host;
      }
    }
  }
  // Break the shared_ptr cycles among the engine's recursive closures.
  Eng->Launch = nullptr;
  Eng->ArmTimeout = nullptr;
  Eng->ArmSpec = nullptr;
  Eng->Recover = nullptr;
  Eng->MasterFallback = nullptr;
  return Stats;
}

OverheadBreakdown parallel::computeOverheads(const SeqStats &Seq,
                                             const ParStats &Par,
                                             unsigned NumFunctions) {
  OverheadBreakdown B;
  B.ParElapsedSec = Par.ElapsedSec;
  if (NumFunctions == 0)
    return B; // no ideal speedup to compare against
  B.TotalSec = Par.ElapsedSec - Seq.ElapsedSec / NumFunctions;
  B.ImplSec = Par.implOverheadSec();
  B.SysSec = B.TotalSec - B.ImplSec;
  return B;
}
