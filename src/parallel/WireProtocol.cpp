//===- WireProtocol.cpp - Master/worker wire protocol ---------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "parallel/WireProtocol.h"

#include <cstring>

using namespace warpc;
using namespace warpc::parallel;
using namespace warpc::parallel::wire;

std::vector<uint8_t> wire::encodeFrame(FrameType Type,
                                       const std::vector<uint8_t> &Payload) {
  return framing::encodeFrame(Spec, static_cast<uint8_t>(Type), Payload);
}

DecodeStatus FrameDecoder::next(Frame &Out) {
  framing::RawFrame Raw;
  const DecodeStatus S = Inner.next(Raw);
  if (S == DecodeStatus::Ready) {
    Out.Type = static_cast<FrameType>(Raw.Type);
    Out.Payload = std::move(Raw.Payload);
  }
  return S;
}

// --- Message payload codecs ----------------------------------------------

// Trace-context and timestamp fields are trailing extensions: encoders
// always write them, decoders accept a payload that ends where the old
// format did (the new fields keep their zero defaults). The frame
// checksum has already vouched for integrity by the time a codec runs,
// so "ends early" means "older peer", not "truncated".

std::vector<uint8_t> wire::encodeHello(const HelloMsg &M) {
  BinaryWriter W;
  W.u64(M.Pid);
  W.u32(M.Protocol);
  W.u32(M.WorkerIndex);
  W.u32(M.NumFunctions);
  W.f64(M.InitRecvSec);
  W.f64(M.HelloSendSec);
  return W.take();
}

bool wire::decodeHello(const std::vector<uint8_t> &Payload, HelloMsg &Out) {
  BinaryReader R(Payload);
  Out.Pid = R.u64();
  Out.Protocol = R.u32();
  Out.WorkerIndex = R.u32();
  Out.NumFunctions = R.u32();
  if (R.atEnd())
    return true;
  Out.InitRecvSec = R.f64();
  Out.HelloSendSec = R.f64();
  return R.atEnd();
}

std::vector<uint8_t> wire::encodeInit(const InitMsg &M) {
  BinaryWriter W;
  W.u32(M.WorkerIndex);
  W.str(M.ModuleSource);
  W.u64(M.Faults.Seed);
  W.f64(M.Faults.KillProb);
  W.f64(M.Faults.StallProb);
  W.f64(M.Faults.CorruptProb);
  W.f64(M.Faults.StallSec);
  W.u32(M.Faults.MaxFaultAttempt);
  W.u64(M.TraceId);
  W.u64(M.ParentSpanId);
  return W.take();
}

bool wire::decodeInit(const std::vector<uint8_t> &Payload, InitMsg &Out) {
  BinaryReader R(Payload);
  Out.WorkerIndex = R.u32();
  Out.ModuleSource = R.str();
  Out.Faults.Seed = R.u64();
  Out.Faults.KillProb = R.f64();
  Out.Faults.StallProb = R.f64();
  Out.Faults.CorruptProb = R.f64();
  Out.Faults.StallSec = R.f64();
  Out.Faults.MaxFaultAttempt = R.u32();
  if (R.atEnd())
    return true;
  Out.TraceId = R.u64();
  Out.ParentSpanId = R.u64();
  return R.atEnd();
}

std::vector<uint8_t> wire::encodeTask(const TaskMsg &M) {
  BinaryWriter W;
  W.u32(M.TaskIndex);
  W.u32(M.Section);
  W.u32(M.Function);
  W.u32(M.Attempt);
  W.u8(M.Speculative);
  W.u64(M.ParentSpanId);
  return W.take();
}

bool wire::decodeTask(const std::vector<uint8_t> &Payload, TaskMsg &Out) {
  BinaryReader R(Payload);
  Out.TaskIndex = R.u32();
  Out.Section = R.u32();
  Out.Function = R.u32();
  Out.Attempt = R.u32();
  Out.Speculative = R.u8();
  if (R.atEnd())
    return true;
  Out.ParentSpanId = R.u64();
  return R.atEnd();
}

std::vector<uint8_t> wire::encodeResult(const ResultMsg &M) {
  BinaryWriter W;
  W.u32(M.TaskIndex);
  W.u32(M.Attempt);
  W.u8(M.Speculative);
  W.bytes(M.ResultBytes);
  W.bytes(M.ShardBytes);
  return W.take();
}

bool wire::decodeResult(const std::vector<uint8_t> &Payload, ResultMsg &Out) {
  BinaryReader R(Payload);
  Out.TaskIndex = R.u32();
  Out.Attempt = R.u32();
  Out.Speculative = R.u8();
  Out.ResultBytes = R.bytes();
  if (R.atEnd())
    return true;
  Out.ShardBytes = R.bytes();
  return R.atEnd();
}

std::vector<uint8_t> wire::encodeWorkerError(const WorkerErrorMsg &M) {
  BinaryWriter W;
  W.str(M.Message);
  return W.take();
}

bool wire::decodeWorkerError(const std::vector<uint8_t> &Payload,
                             WorkerErrorMsg &Out) {
  BinaryReader R(Payload);
  Out.Message = R.str();
  return R.atEnd();
}
