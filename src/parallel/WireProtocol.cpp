//===- WireProtocol.cpp - Master/worker wire protocol ---------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "parallel/WireProtocol.h"

#include <cstring>

using namespace warpc;
using namespace warpc::parallel;
using namespace warpc::parallel::wire;

std::vector<uint8_t> wire::encodeFrame(FrameType Type,
                                       const std::vector<uint8_t> &Payload) {
  BinaryWriter W;
  W.u32(FrameMagic);
  W.u8(ProtocolVersion);
  W.u8(static_cast<uint8_t>(Type));
  W.u32(static_cast<uint32_t>(Payload.size()));
  std::vector<uint8_t> Out = W.take();
  Out.insert(Out.end(), Payload.begin(), Payload.end());
  BinaryWriter T;
  T.u64(fnv1a64(Payload));
  const std::vector<uint8_t> &Trailer = T.buffer();
  Out.insert(Out.end(), Trailer.begin(), Trailer.end());
  return Out;
}

void FrameDecoder::fail(const std::string &Why) {
  Failed = true;
  Error = Why;
  Buf.clear();
  Pos = 0;
}

void FrameDecoder::feed(const uint8_t *Data, size_t Size) {
  if (Failed || Size == 0)
    return;
  // Compact once the dead prefix dominates, so a long-lived worker
  // connection does not grow its buffer without bound.
  if (Pos > 4096 && Pos * 2 > Buf.size()) {
    Buf.erase(Buf.begin(), Buf.begin() + static_cast<ptrdiff_t>(Pos));
    Pos = 0;
  }
  Buf.insert(Buf.end(), Data, Data + Size);
}

DecodeStatus FrameDecoder::next(Frame &Out) {
  if (Failed)
    return DecodeStatus::Corrupt;
  const size_t Avail = Buf.size() - Pos;
  if (Avail < FrameHeaderSize)
    return DecodeStatus::NeedMore;

  BinaryReader Header(Buf.data() + Pos, FrameHeaderSize);
  const uint32_t Magic = Header.u32();
  const uint8_t Version = Header.u8();
  const uint8_t Type = Header.u8();
  const uint32_t Len = Header.u32();
  if (Magic != FrameMagic) {
    fail("bad frame magic");
    return DecodeStatus::Corrupt;
  }
  if (Version != ProtocolVersion) {
    fail("unsupported protocol version " + std::to_string(Version));
    return DecodeStatus::Corrupt;
  }
  if (Type == 0 || Type > MaxFrameType) {
    fail("unknown frame type " + std::to_string(Type));
    return DecodeStatus::Corrupt;
  }
  if (Len > MaxFramePayload) {
    fail("oversized frame payload (" + std::to_string(Len) + " bytes)");
    return DecodeStatus::Corrupt;
  }
  const size_t Whole = FrameHeaderSize + Len + FrameTrailerSize;
  if (Avail < Whole)
    return DecodeStatus::NeedMore;

  const uint8_t *Payload = Buf.data() + Pos + FrameHeaderSize;
  BinaryReader Trailer(Payload + Len, FrameTrailerSize);
  if (Trailer.u64() != fnv1a64(Payload, Len)) {
    fail("frame checksum mismatch");
    return DecodeStatus::Corrupt;
  }
  Out.Type = static_cast<FrameType>(Type);
  Out.Payload.assign(Payload, Payload + Len);
  Pos += Whole;
  return DecodeStatus::Ready;
}

// --- Message payload codecs ----------------------------------------------

std::vector<uint8_t> wire::encodeHello(const HelloMsg &M) {
  BinaryWriter W;
  W.u64(M.Pid);
  W.u32(M.Protocol);
  W.u32(M.WorkerIndex);
  W.u32(M.NumFunctions);
  return W.take();
}

bool wire::decodeHello(const std::vector<uint8_t> &Payload, HelloMsg &Out) {
  BinaryReader R(Payload);
  Out.Pid = R.u64();
  Out.Protocol = R.u32();
  Out.WorkerIndex = R.u32();
  Out.NumFunctions = R.u32();
  return R.atEnd();
}

std::vector<uint8_t> wire::encodeInit(const InitMsg &M) {
  BinaryWriter W;
  W.u32(M.WorkerIndex);
  W.str(M.ModuleSource);
  W.u64(M.Faults.Seed);
  W.f64(M.Faults.KillProb);
  W.f64(M.Faults.StallProb);
  W.f64(M.Faults.CorruptProb);
  W.f64(M.Faults.StallSec);
  W.u32(M.Faults.MaxFaultAttempt);
  return W.take();
}

bool wire::decodeInit(const std::vector<uint8_t> &Payload, InitMsg &Out) {
  BinaryReader R(Payload);
  Out.WorkerIndex = R.u32();
  Out.ModuleSource = R.str();
  Out.Faults.Seed = R.u64();
  Out.Faults.KillProb = R.f64();
  Out.Faults.StallProb = R.f64();
  Out.Faults.CorruptProb = R.f64();
  Out.Faults.StallSec = R.f64();
  Out.Faults.MaxFaultAttempt = R.u32();
  return R.atEnd();
}

std::vector<uint8_t> wire::encodeTask(const TaskMsg &M) {
  BinaryWriter W;
  W.u32(M.TaskIndex);
  W.u32(M.Section);
  W.u32(M.Function);
  W.u32(M.Attempt);
  W.u8(M.Speculative);
  return W.take();
}

bool wire::decodeTask(const std::vector<uint8_t> &Payload, TaskMsg &Out) {
  BinaryReader R(Payload);
  Out.TaskIndex = R.u32();
  Out.Section = R.u32();
  Out.Function = R.u32();
  Out.Attempt = R.u32();
  Out.Speculative = R.u8();
  return R.atEnd();
}

std::vector<uint8_t> wire::encodeResult(const ResultMsg &M) {
  BinaryWriter W;
  W.u32(M.TaskIndex);
  W.u32(M.Attempt);
  W.u8(M.Speculative);
  W.bytes(M.ResultBytes);
  return W.take();
}

bool wire::decodeResult(const std::vector<uint8_t> &Payload, ResultMsg &Out) {
  BinaryReader R(Payload);
  Out.TaskIndex = R.u32();
  Out.Attempt = R.u32();
  Out.Speculative = R.u8();
  Out.ResultBytes = R.bytes();
  return R.atEnd();
}

std::vector<uint8_t> wire::encodeWorkerError(const WorkerErrorMsg &M) {
  BinaryWriter W;
  W.str(M.Message);
  return W.take();
}

bool wire::decodeWorkerError(const std::vector<uint8_t> &Payload,
                             WorkerErrorMsg &Out) {
  BinaryReader R(Payload);
  Out.Message = R.str();
  return R.atEnd();
}
