//===- RetryRound.h - Shared retry-round bookkeeping ------------*- C++ -*-===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The result-validation decision both engines make at every attempt
/// milestone, and the round bookkeeping the thread engine repeats per
/// retry round. Both used to live as copy-pasted blocks inside
/// SimRunner.cpp and ThreadRunner.cpp; keeping one implementation means
/// the simulator and the real thread pool cannot drift in how they decide
/// that an attempt's work is lost, which failure cause they report, or
/// how they bill abandoned time.
///
//===----------------------------------------------------------------------===//

#ifndef WARPC_PARALLEL_RETRYROUND_H
#define WARPC_PARALLEL_RETRYROUND_H

#include "obs/Event.h"

#include <cstddef>
#include <vector>

namespace warpc {
namespace parallel {

/// Verdict on one attempt milestone: whether the attempt may proceed,
/// and — if not — why it was abandoned and how to bill its elapsed time.
struct AttemptGate {
  bool Proceed = true;
  /// The cause to stamp on the AttemptLost event (None when proceeding).
  obs::FaultCause Cause = obs::FaultCause::None;
  /// True when the abandoned time must be clipped at the host's crash
  /// instant: a crash that goes unnoticed for a while is not billed as
  /// retry time past the moment the work was actually lost. Superseded
  /// attempts bill their full elapsed — the machine really was busy.
  bool ClipAtCrash = false;
};

/// The milestone check an attempt runs after every step (startup done,
/// compile done, result written, message delivered). \p LostToCrash is
/// whether the attempt's host crashed since the attempt began, and
/// \p CrashCause names the step it would have died in; \p Superseded is
/// whether a competing attempt already delivered. A crash outranks
/// supersession: a dead host's work is lost whether or not someone else
/// finished first, and its billing must clip at the crash.
AttemptGate checkAttempt(bool LostToCrash, obs::FaultCause CrashCause,
                         bool Superseded);

/// Produced / pending partition of a fault-tolerant retry loop: which
/// functions have an accepted result, which still need an attempt, and
/// the retry and reassignment tallies the engines report. One instance
/// drives all rounds of one run.
///
/// Not synchronized: workers may mark produced() concurrently only for
/// distinct indices (each function index has one accepted result), and
/// beginRound()/settleRound() must be called with no workers running.
class RetryRoundTracker {
public:
  explicit RetryRoundTracker(size_t NumTasks);

  /// Starts the round for \p Attempt (1-based). Every function still
  /// pending on a second or later round counts as a retry attempted.
  void beginRound(unsigned Attempt);

  /// Records an accepted result for \p Index.
  void produced(size_t Index) { Produced[Index] = 1; }
  bool isProduced(size_t Index) const { return Produced[Index] != 0; }

  /// Ends the round: drops produced functions from the pending list. A
  /// function produced on a retry round counts as reassigned — the pool
  /// analogue of moving a function master to another workstation.
  void settleRound();

  /// Functions still lacking a result (the next round's worklist, or the
  /// master-fallback worklist after the attempt cap).
  const std::vector<size_t> &pending() const { return Pending; }
  bool allProduced() const { return Pending.empty(); }

  unsigned retriesAttempted() const { return RetriesAttempted; }
  unsigned functionsReassigned() const { return FunctionsReassigned; }

private:
  std::vector<char> Produced;
  std::vector<size_t> Pending;
  unsigned CurrentAttempt = 0;
  unsigned RetriesAttempted = 0;
  unsigned FunctionsReassigned = 0;
};

} // namespace parallel
} // namespace warpc

#endif // WARPC_PARALLEL_RETRYROUND_H
