//===- CostModel.cpp - 1989 compile-time cost model -------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "parallel/CostModel.h"

#include <algorithm>

using namespace warpc;
using namespace warpc::parallel;

CostModel CostModel::lisp1989() { return CostModel(); }

StepCost CostModel::evaluate(const LispStep &Step,
                             const cluster::HostConfig &Host) const {
  StepCost Cost;
  Cost.CpuSec = Step.WorkSec;

  // GC: sweep cost proportional to allocation, inflated by heap pressure.
  // Live data is what must be traced repeatedly; a heap living far above
  // the comfort point collects more often and copies more.
  double LiveHeapKB = Step.LiveKB + Retention * Step.AllocKB;
  double Pressure = std::max(1.0, LiveHeapKB / HeapComfortKB);
  Cost.GCSec = (Step.AllocKB / GCSweepKBPerSec) * Pressure;

  // Paging: the working set is the core image plus live data. Excess over
  // usable memory is refetched continuously from the file server while the
  // process computes.
  double WorkingSetKB = Host.LispCoreKB + LiveHeapKB;
  double ExcessKB = WorkingSetKB - Host.UsableMemoryKB;
  if (ExcessKB > 0) {
    double ExcessFraction = ExcessKB / WorkingSetKB;
    Cost.PageTrafficKB = (Cost.CpuSec + Cost.GCSec) * PagingKBPerSec *
                         ExcessFraction * Step.PageScale;
  }
  return Cost;
}
