//===- Scheduler.h - Processor assignment -----------------------*- C++ -*-===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Assignment of function masters to workstations. The paper's default is
/// "a simple first-come-first-served strategy that distributes the tasks
/// over the available processors" (Section 3.3); Section 4.3 improves on
/// it for mixed workloads with a balancing heuristic where "a combination
/// of lines of code and loop nesting can serve as approximation of the
/// compilation time", letting 5 processors match 9.
///
//===----------------------------------------------------------------------===//

#ifndef WARPC_PARALLEL_SCHEDULER_H
#define WARPC_PARALLEL_SCHEDULER_H

#include "parallel/Job.h"

#include <cstdint>
#include <vector>

namespace warpc {
namespace parallel {

/// Maps every function (by section, index) to a workstation id.
struct Assignment {
  /// WsOf[S][F] = workstation running function F of section S.
  std::vector<std::vector<unsigned>> WsOf;
  unsigned ProcessorsUsed = 0;
};

/// The master's compile-time estimate for one function, computed from the
/// parse information only (lines and loop nesting): the heuristic of
/// Section 4.3. Unit: arbitrary "cost points", comparable across tasks.
double heuristicCostEstimate(const driver::WorkMetrics &M);

/// First-come-first-served: functions are assigned to workstations in
/// declaration order, round-robin over \p NumProcessors machines. With at
/// least as many machines as functions this is the paper's
/// one-function-per-processor configuration.
Assignment scheduleFCFS(const CompilationJob &Job, unsigned NumProcessors);

/// Longest-processing-time-first bin packing over \p NumProcessors
/// machines using heuristicCostEstimate: the improved scheduler of
/// Section 4.3 ("smaller functions can be grouped and compiled on the
/// same processor").
Assignment scheduleBalanced(const CompilationJob &Job,
                            unsigned NumProcessors);

/// Picks the workstation for a retried (or speculated) function master:
/// the least-loaded live host other than \p PreviousHost, where
/// \p HostLoadSec is the estimated work currently assigned to each host
/// and \p HostAlive marks hosts accepting work. Falls back to
/// \p PreviousHost when it is the only live host, and to host 0 (the
/// master's own workstation, assumed reliable) when nothing is alive.
unsigned chooseReassignment(const std::vector<double> &HostLoadSec,
                            const std::vector<char> &HostAlive,
                            unsigned PreviousHost);

} // namespace parallel
} // namespace warpc

#endif // WARPC_PARALLEL_SCHEDULER_H
