//===- Scheduler.cpp - Processor assignment ----------------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "parallel/Scheduler.h"

#include <algorithm>
#include <cassert>
#include <set>

using namespace warpc;
using namespace warpc::parallel;

double parallel::heuristicCostEstimate(const driver::WorkMetrics &M) {
  // Lines of code scaled by loop nesting: scheduling cost grows quickly
  // with nesting because the pipeliner works hardest on deep loop bodies.
  double Depth = static_cast<double>(M.LoopDepth);
  return static_cast<double>(M.SourceLines) * (1.0 + 0.6 * Depth * Depth);
}

Assignment parallel::scheduleFCFS(const CompilationJob &Job,
                                  unsigned NumProcessors) {
  assert(NumProcessors > 0 && "need at least one processor");
  Assignment Result;
  std::set<unsigned> Used;
  unsigned Next = 0;
  for (const auto &Section : Job.Sections) {
    std::vector<unsigned> Ws;
    for (size_t F = 0; F != Section.size(); ++F) {
      // Cached functions never launch a function master: they stay on
      // host 0 without consuming a round-robin slot, so a warm run packs
      // its real work onto as few machines as a smaller module would.
      if (Section[F].Cached) {
        Ws.push_back(0);
        continue;
      }
      unsigned Target = Next % NumProcessors;
      ++Next;
      Ws.push_back(Target);
      Used.insert(Target);
    }
    Result.WsOf.push_back(std::move(Ws));
  }
  Result.ProcessorsUsed = static_cast<unsigned>(Used.size());
  return Result;
}

Assignment parallel::scheduleBalanced(const CompilationJob &Job,
                                      unsigned NumProcessors) {
  assert(NumProcessors > 0 && "need at least one processor");

  struct Item {
    unsigned Section;
    unsigned Index;
    double Cost;
  };
  std::vector<Item> Items;
  for (unsigned S = 0; S != Job.Sections.size(); ++S)
    for (unsigned F = 0; F != Job.Sections[S].size(); ++F)
      // Cached functions carry no compile load; leaving them out of the
      // LPT pass keeps their zero cost from occupying a machine. Their
      // WsOf entry stays at the host-0 default.
      if (!Job.Sections[S][F].Cached)
        Items.push_back(
            Item{S, F, heuristicCostEstimate(Job.Sections[S][F].Metrics)});

  // Longest processing time first onto the least-loaded machine.
  std::sort(Items.begin(), Items.end(), [](const Item &A, const Item &B) {
    if (A.Cost != B.Cost)
      return A.Cost > B.Cost;
    if (A.Section != B.Section)
      return A.Section < B.Section;
    return A.Index < B.Index;
  });

  std::vector<double> Load(NumProcessors, 0.0);
  Assignment Result;
  Result.WsOf.resize(Job.Sections.size());
  for (unsigned S = 0; S != Job.Sections.size(); ++S)
    Result.WsOf[S].assign(Job.Sections[S].size(), 0);

  std::set<unsigned> Used;
  for (const Item &I : Items) {
    unsigned Best = 0;
    for (unsigned P = 1; P != NumProcessors; ++P)
      if (Load[P] < Load[Best])
        Best = P;
    Load[Best] += I.Cost;
    Result.WsOf[I.Section][I.Index] = Best;
    Used.insert(Best);
  }
  Result.ProcessorsUsed = static_cast<unsigned>(Used.size());
  return Result;
}

unsigned parallel::chooseReassignment(const std::vector<double> &HostLoadSec,
                                      const std::vector<char> &HostAlive,
                                      unsigned PreviousHost) {
  assert(HostLoadSec.size() == HostAlive.size() &&
         "load and liveness tables disagree");
  bool Found = false;
  unsigned Best = 0;
  for (unsigned W = 0; W != HostAlive.size(); ++W) {
    if (!HostAlive[W] || W == PreviousHost)
      continue;
    if (!Found || HostLoadSec[W] < HostLoadSec[Best]) {
      Best = W;
      Found = true;
    }
  }
  if (Found)
    return Best;
  if (PreviousHost < HostAlive.size() && HostAlive[PreviousHost])
    return PreviousHost;
  return 0;
}
