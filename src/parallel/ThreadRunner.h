//===- ThreadRunner.h - Real parallel compilation ---------------*- C++ -*-===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Actually-parallel compilation on the host machine: the same
/// master / section-master / function-master decomposition, with function
/// masters as worker threads instead of Lisp processes on remote
/// workstations. This engine demonstrates that the decomposition is
/// correct and yields real wall-clock speedup; the cluster simulator is
/// what reproduces the 1989 numbers.
///
//===----------------------------------------------------------------------===//

#ifndef WARPC_PARALLEL_THREADRUNNER_H
#define WARPC_PARALLEL_THREADRUNNER_H

#include "codegen/MachineModel.h"
#include "driver/Compiler.h"

#include <cstdint>
#include <functional>
#include <string>

namespace warpc {
namespace parallel {

/// Result of a thread-backed parallel compilation.
struct ThreadRunResult {
  driver::ModuleResult Module;
  double ElapsedSec = 0;      ///< Wall clock of the whole compilation.
  double Phase1Sec = 0;       ///< Sequential parse + semantic check.
  double ParallelPhaseSec = 0;///< Wall clock of the phases 2+3 fan-out.
  double Phase4Sec = 0;       ///< Sequential assembly + linking.
  unsigned WorkersUsed = 0;
  /// Function masters that died and were recompiled by the master
  /// (Section 5.2: "the application code becomes unwieldy as it tries to
  /// account for all possible failures in the child processes and their
  /// host processors" — here the recovery is built in).
  unsigned FunctionsRecovered = 0;
};

/// Test hook simulating the loss of a function master (a crashed child
/// process or a rebooted workstation). Called with the flat function
/// index; returning true makes that master vanish without a result.
using FailureInjector = std::function<bool(size_t FunctionIndex)>;

/// Compiles \p Source with up to \p NumWorkers function masters running
/// concurrently. The result is bit-identical to
/// driver::compileModuleSequential: phase 1 and phase 4 run on the
/// calling thread; each function is compiled by exactly one worker.
/// \p InjectFailure, when non-null, simulates dying function masters;
/// the master detects missing results after the join and recompiles the
/// affected functions itself, so the compilation still succeeds.
ThreadRunResult compileModuleParallel(const std::string &Source,
                                      const codegen::MachineModel &MM,
                                      unsigned NumWorkers,
                                      const FailureInjector *InjectFailure =
                                          nullptr);

} // namespace parallel
} // namespace warpc

#endif // WARPC_PARALLEL_THREADRUNNER_H
