//===- ThreadRunner.h - Real parallel compilation ---------------*- C++ -*-===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Actually-parallel compilation on the host machine: the same
/// master / section-master / function-master decomposition, with function
/// masters as worker threads instead of Lisp processes on remote
/// workstations. This engine demonstrates that the decomposition is
/// correct and yields real wall-clock speedup; the cluster simulator is
/// what reproduces the 1989 numbers.
///
/// Fault tolerance follows the same policy as the simulator
/// (driver::FaultPolicy): an attempt whose function master vanished or
/// returned a result that fails validation is retried — on whichever
/// worker claims it next, the thread-pool analogue of reassignment to
/// another workstation — up to the attempt cap, after which the master
/// recompiles the function itself. The final module is therefore always
/// bit-identical to driver::compileModuleSequential.
///
//===----------------------------------------------------------------------===//

#ifndef WARPC_PARALLEL_THREADRUNNER_H
#define WARPC_PARALLEL_THREADRUNNER_H

#include "codegen/MachineModel.h"
#include "driver/Compiler.h"
#include "driver/FaultPolicy.h"
#include "obs/MetricsRegistry.h"
#include "obs/TraceRecorder.h"

#include <cstdint>
#include <functional>
#include <string>

namespace warpc {
namespace parallel {

/// Result of a thread-backed parallel compilation.
struct ThreadRunResult {
  driver::ModuleResult Module;
  double ElapsedSec = 0;      ///< Wall clock of the whole compilation.
  double Phase1Sec = 0;       ///< Sequential parse + semantic check.
  double ParallelPhaseSec = 0;///< Wall clock of the phases 2+3 fan-out.
  double Phase4Sec = 0;       ///< Sequential assembly + linking.
  unsigned WorkersUsed = 0;
  /// Function masters that died and were recompiled by the master
  /// (Section 5.2: "the application code becomes unwieldy as it tries to
  /// account for all possible failures in the child processes and their
  /// host processors" — here the recovery is built in).
  unsigned FunctionsRecovered = 0;
  /// Worker attempts beyond each function's first (retry rounds).
  unsigned RetriesAttempted = 0;
  /// Functions whose first attempt failed but that a later worker
  /// attempt completed — the pool analogue of moving a function master
  /// to another workstation.
  unsigned FunctionsReassigned = 0;
  /// Results rejected by driver::validateFunctionResult (truncated or
  /// mislabeled result files from a sick master).
  unsigned PoisonedResultsDetected = 0;
  /// Functions satisfied from the compilation cache before any worker was
  /// dispatched (and the remainder, which the pool compiled). Both zero
  /// when no cache was supplied.
  unsigned CacheHits = 0;
  unsigned CacheMisses = 0;
};

/// Test hook simulating the loss of a function master (a crashed child
/// process or a rebooted workstation). Called with the flat function
/// index; returning true makes that master vanish without a result.
using FailureInjector = std::function<bool(size_t FunctionIndex)>;

/// Deterministic failure schedule for the thread engine. Both hooks are
/// called with the flat function index and the 1-based attempt number;
/// decisions must be pure functions of their arguments so runs are
/// reproducible regardless of thread interleaving. Vanish makes the
/// attempt produce nothing; Poison makes it produce a corrupt result
/// (truncated image) that validation must catch.
struct FaultInjection {
  std::function<bool(size_t FunctionIndex, unsigned Attempt)> Vanish;
  std::function<bool(size_t FunctionIndex, unsigned Attempt)> Poison;
};

/// Builds a FaultInjection whose decisions are seeded hashes of
/// (Seed, FunctionIndex, Attempt): every attempt vanishes with
/// \p VanishProb and is poisoned with \p PoisonProb, independently.
FaultInjection makeSeededInjection(uint64_t Seed, double VanishProb,
                                   double PoisonProb);

/// Compiles \p Source with up to \p NumWorkers function masters running
/// concurrently under \p Policy: failed attempts (vanished masters or
/// poisoned results) are retried by the pool until Policy.MaxAttempts,
/// then recompiled by the master itself. The result is bit-identical to
/// driver::compileModuleSequential no matter the failure schedule.
///
/// A non-null \p Rec must be in the Steady clock domain; the run records
/// parse/compile/assembly spans stamped with steady-clock seconds since
/// the recorder was created — the master on lane 0, worker thread i on
/// lane 1+i (lanes are created before any thread starts, so recording
/// never contends). A non-null \p Metrics additionally receives the
/// driver's phase1-4 series plus fault.* counters for the recovery paths.
///
/// A non-null \p Cache front-ends the fan-out: after phase 1 the master
/// probes it for every function, and hits — replayed results that pass
/// validation — skip worker dispatch entirely (a SpanCacheHit span on the
/// master's lane marks each). Only misses enter the pending list; their
/// validated results are stored back, so an immediate rerun hits on every
/// function. Fault injection applies to misses only — cached functions
/// never ran a function master that could vanish.
ThreadRunResult compileModuleParallel(const std::string &Source,
                                      const codegen::MachineModel &MM,
                                      unsigned NumWorkers,
                                      const driver::FaultPolicy &Policy,
                                      const FaultInjection *Inject = nullptr,
                                      obs::TraceRecorder *Rec = nullptr,
                                      obs::MetricsRegistry *Metrics = nullptr,
                                      driver::FunctionResultCache *Cache =
                                          nullptr);

/// Legacy entry point: one attempt per function (\p InjectFailure decides
/// per flat index); the master recompiles every function whose master
/// died, counted in FunctionsRecovered.
ThreadRunResult compileModuleParallel(const std::string &Source,
                                      const codegen::MachineModel &MM,
                                      unsigned NumWorkers,
                                      const FailureInjector *InjectFailure =
                                          nullptr);

} // namespace parallel
} // namespace warpc

#endif // WARPC_PARALLEL_THREADRUNNER_H
