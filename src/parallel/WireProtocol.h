//===- WireProtocol.h - Master/worker wire protocol -------------*- C++ -*-===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The framed binary protocol between the master and its warp-worker
/// processes, built on support/BinaryStream. Every message travels as one
/// frame:
///
///   u32 magic | u8 version | u8 type | u32 payload length
///   payload bytes...
///   u64 fnv1a-64 checksum of the payload
///
/// The decoder is incremental (feed() arbitrary byte chunks, next() yields
/// whole frames) and treats every malformation — a garbage header, an
/// oversized length, a checksum mismatch — as a sticky Corrupt verdict
/// rather than undefined behavior or an unbounded read. A truncated frame
/// simply never completes (NeedMore); the master resolves it through the
/// worker's EOF or its watchdog, so a dying worker can never hang or crash
/// the master. Corruption is retriable by construction: the master kills
/// the worker whose stream went bad and retries the attempt elsewhere,
/// exactly like any other worker death.
///
//===----------------------------------------------------------------------===//

#ifndef WARPC_PARALLEL_WIREPROTOCOL_H
#define WARPC_PARALLEL_WIREPROTOCOL_H

#include "driver/FaultPolicy.h"
#include "support/BinaryStream.h"
#include "support/Framing.h"

#include <cstdint>
#include <string>
#include <vector>

namespace warpc {
namespace parallel {
namespace wire {

/// "WRP1" little-endian: rejects streams that are not ours at all.
inline constexpr uint32_t FrameMagic = 0x31505257;
inline constexpr uint8_t ProtocolVersion = 1;
/// Largest payload the decoder will buffer. A function result is a few
/// KB; the module source in an Init frame is the only large payload, and
/// 64 MiB bounds even absurd generated modules.
inline constexpr uint32_t MaxFramePayload = 64u << 20;
/// magic + version + type + payload length.
inline constexpr size_t FrameHeaderSize = framing::FrameHeaderSize;
/// Trailing payload checksum.
inline constexpr size_t FrameTrailerSize = framing::FrameTrailerSize;

enum class FrameType : uint8_t {
  Hello = 1,    ///< worker -> master: pid + sanity data after Init.
  Init = 2,     ///< master -> worker: module source + fault plan.
  Task = 3,     ///< master -> worker: compile one function.
  Result = 4,   ///< worker -> master: serialized FunctionResult.
  WorkerError = 5, ///< worker -> master: fatal worker-side condition.
  Shutdown = 6, ///< master -> worker: exit cleanly.
};
inline constexpr uint8_t MaxFrameType =
    static_cast<uint8_t>(FrameType::Shutdown);

/// The master/worker instantiation of the shared frame layer.
inline constexpr framing::FrameSpec Spec = {FrameMagic, ProtocolVersion,
                                            MaxFrameType, MaxFramePayload};

struct Frame {
  FrameType Type = FrameType::Hello;
  std::vector<uint8_t> Payload;
};

/// Encodes one whole frame (header + payload + checksum).
std::vector<uint8_t> encodeFrame(FrameType Type,
                                 const std::vector<uint8_t> &Payload);

using DecodeStatus = framing::DecodeStatus;

/// Incremental frame scanner over a byte stream; a typed view of
/// framing::Decoder bound to this protocol's Spec. Corruption is sticky:
/// once a header or checksum fails, nothing later in the stream can be
/// trusted (frames carry no resync markers), so every subsequent next()
/// also reports Corrupt and the caller must drop the connection.
class FrameDecoder {
public:
  FrameDecoder() : Inner(Spec) {}

  void feed(const uint8_t *Data, size_t Size) { Inner.feed(Data, Size); }
  DecodeStatus next(Frame &Out);

  bool corrupt() const { return Inner.corrupt(); }
  const std::string &error() const { return Inner.error(); }
  /// Bytes buffered but not yet consumed (a nonzero value at EOF means
  /// the peer died mid-frame).
  size_t bufferedBytes() const { return Inner.bufferedBytes(); }

private:
  framing::Decoder Inner;
};

// --- Message payloads ----------------------------------------------------

/// worker -> master, in response to Init: proof the worker parsed the
/// module and agrees on its shape.
///
/// The two timestamps are the worker's half of the NTP-style clock
/// exchange (obs::estimateClockOffset): when Init arrived and when this
/// Hello was sent, both in seconds on the worker's own steady clock.
/// They are optional trailing fields — a frame from an older worker
/// (zeros) still decodes, and the master then splices shards with offset
/// 0 plus flight-window clamping.
struct HelloMsg {
  uint64_t Pid = 0;
  uint32_t Protocol = ProtocolVersion;
  uint32_t WorkerIndex = 0;
  uint32_t NumFunctions = 0;
  double InitRecvSec = 0;
  double HelloSendSec = 0;
};

/// master -> worker, once per process: everything a function master needs
/// before any task arrives. The worker runs phase 1 on the source itself
/// — the paper's startup cost, paid per process and amortized by the
/// resident pool.
struct InitMsg {
  uint32_t WorkerIndex = 0;
  std::string ModuleSource;
  driver::ProcessFaultPlan Faults;
  /// Distributed-trace propagation (optional trailing fields; old frames
  /// decode with zeros). TraceId == 0 tells the worker not to record or
  /// ship spans at all; ParentSpanId is the master-side span the worker's
  /// startup work is caused by.
  uint64_t TraceId = 0;
  uint64_t ParentSpanId = 0;
};

/// master -> worker: compile function \p Function of section \p Section
/// (indices into the worker's own parse, which is identical to the
/// master's because the source is identical).
struct TaskMsg {
  uint32_t TaskIndex = 0; ///< Flat function index (the master's key).
  uint32_t Section = 0;
  uint32_t Function = 0;
  uint32_t Attempt = 1;
  /// Straggler duplicates are exempt from fault injection: the (Fn,
  /// Attempt) draw was already consumed by the original attempt, and the
  /// duplicate models re-placement on a healthy host.
  uint8_t Speculative = 0;
  /// Master-side span id of the dispatch edge this task rides (optional
  /// trailing field; old frames decode with 0). The worker parents its
  /// per-task span shard under it.
  uint64_t ParentSpanId = 0;
};

/// worker -> master: the serialized driver::FunctionResult (the same
/// cache::encodeFunctionResult codec the disk cache uses).
struct ResultMsg {
  uint32_t TaskIndex = 0;
  uint32_t Attempt = 1;
  uint8_t Speculative = 0;
  std::vector<uint8_t> ResultBytes;
  /// Encoded obs::SpanShard with the worker's own spans for this task
  /// (optional trailing field; empty from old workers or when the master
  /// is not tracing). A shard that fails to decode is dropped, never
  /// fatal — tracing must not affect compilation.
  std::vector<uint8_t> ShardBytes;
};

struct WorkerErrorMsg {
  std::string Message;
};

std::vector<uint8_t> encodeHello(const HelloMsg &M);
bool decodeHello(const std::vector<uint8_t> &Payload, HelloMsg &Out);

std::vector<uint8_t> encodeInit(const InitMsg &M);
bool decodeInit(const std::vector<uint8_t> &Payload, InitMsg &Out);

std::vector<uint8_t> encodeTask(const TaskMsg &M);
bool decodeTask(const std::vector<uint8_t> &Payload, TaskMsg &Out);

std::vector<uint8_t> encodeResult(const ResultMsg &M);
bool decodeResult(const std::vector<uint8_t> &Payload, ResultMsg &Out);

std::vector<uint8_t> encodeWorkerError(const WorkerErrorMsg &M);
bool decodeWorkerError(const std::vector<uint8_t> &Payload,
                       WorkerErrorMsg &Out);

} // namespace wire
} // namespace parallel
} // namespace warpc

#endif // WARPC_PARALLEL_WIREPROTOCOL_H
