//===- RetryRound.cpp - Shared retry-round bookkeeping ----------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "parallel/RetryRound.h"

#include <cassert>

using namespace warpc;
using namespace warpc::parallel;

AttemptGate parallel::checkAttempt(bool LostToCrash,
                                   obs::FaultCause CrashCause,
                                   bool Superseded) {
  AttemptGate G;
  if (LostToCrash) {
    G.Proceed = false;
    G.Cause = CrashCause;
    G.ClipAtCrash = true;
  } else if (Superseded) {
    G.Proceed = false;
    G.Cause = obs::FaultCause::Superseded;
  }
  return G;
}

RetryRoundTracker::RetryRoundTracker(size_t NumTasks)
    : Produced(NumTasks, 0), Pending(NumTasks) {
  for (size_t Index = 0; Index != NumTasks; ++Index)
    Pending[Index] = Index;
}

void RetryRoundTracker::beginRound(unsigned Attempt) {
  assert(Attempt > CurrentAttempt && "rounds must advance");
  CurrentAttempt = Attempt;
  if (Attempt > 1)
    RetriesAttempted += static_cast<unsigned>(Pending.size());
}

void RetryRoundTracker::settleRound() {
  std::vector<size_t> StillPending;
  for (size_t Index : Pending) {
    if (Produced[Index]) {
      if (CurrentAttempt > 1)
        ++FunctionsReassigned;
    } else {
      StillPending.push_back(Index);
    }
  }
  Pending = std::move(StillPending);
}
