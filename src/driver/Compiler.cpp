//===- Compiler.cpp - The four-phase W2 compiler ----------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"

#include "codegen/CodeGen.h"
#include "ir/IRBuilder.h"
#include "opt/Liveness.h"
#include "opt/LocalOpt.h"
#include "opt/ReachingDefs.h"
#include "w2/Lexer.h"
#include "w2/Parser.h"
#include "w2/Sema.h"

#include <cassert>
#include <chrono>

using namespace warpc;
using namespace warpc::driver;

ParseResult driver::parseAndCheck(const std::string &Source,
                                  obs::MetricsRegistry *Metrics) {
  ParseResult Result;

  w2::Lexer Lexer(Source, Result.Diags);
  std::vector<w2::Token> Tokens = Lexer.lexAll();
  Result.Metrics.Tokens = Lexer.tokenCount();
  if (Result.Diags.hasErrors())
    return Result;

  w2::Parser Parser(std::move(Tokens), Result.Diags);
  Result.Module = Parser.parseModule();
  if (!Result.Module || Result.Diags.hasErrors()) {
    Result.Module.reset();
    return Result;
  }

  for (size_t S = 0; S != Result.Module->numSections(); ++S) {
    const w2::SectionDecl *Section = Result.Module->getSection(S);
    for (size_t F = 0; F != Section->numFunctions(); ++F) {
      const w2::FunctionDecl *Func = Section->getFunction(F);
      Result.Metrics.AstNodes += w2::countAstNodes(*Func);
      Result.Metrics.SourceLines += Func->lineCount();
      Result.Metrics.LoopCount += w2::countLoops(*Func);
      uint32_t Depth = w2::maxLoopDepth(*Func);
      if (Depth > Result.Metrics.LoopDepth)
        Result.Metrics.LoopDepth = Depth;
    }
  }

  w2::Sema Sema(Result.Diags);
  Sema.checkModule(*Result.Module);
  Result.Metrics.SemaNodes = Sema.checkedNodeCount();
  if (Result.Diags.hasErrors())
    Result.Module.reset();
  if (Metrics) {
    Metrics->add("phase1.runs");
    Metrics->add("phase1.tokens", static_cast<double>(Result.Metrics.Tokens));
    Metrics->add("phase1.ast_nodes",
                 static_cast<double>(Result.Metrics.AstNodes));
    Metrics->add("phase1.sema_nodes",
                 static_cast<double>(Result.Metrics.SemaNodes));
    Metrics->add("phase1.source_lines",
                 static_cast<double>(Result.Metrics.SourceLines));
    if (Result.Diags.hasErrors())
      Metrics->add("phase1.failed_runs");
  }
  return Result;
}

FunctionResult driver::compileFunction(const w2::SectionDecl &Section,
                                       const w2::FunctionDecl &F,
                                       const codegen::MachineModel &MM,
                                       obs::MetricsRegistry *Metrics,
                                       FunctionPhaseTimes *Times) {
  using PhaseClock = std::chrono::steady_clock;
  const PhaseClock::time_point Phase2Start = PhaseClock::now();
  FunctionResult Result;
  Result.SectionName = Section.getName();
  Result.FunctionName = F.getName();
  Result.Metrics.SourceLines = F.lineCount();
  Result.Metrics.LoopDepth = w2::maxLoopDepth(F);
  Result.Metrics.LoopCount = w2::countLoops(F);
  Result.Metrics.AstNodes = w2::countAstNodes(F);

  // Phase 2: flowgraph construction and optimization.
  std::unique_ptr<ir::IRFunction> IRF = ir::lowerFunction(F);
  assert(verifyFunction(*IRF).empty() && "lowering produced invalid IR");
  Result.Metrics.IRInstrs = IRF->instructionCount();

  opt::OptStats Stats = opt::runLocalOpt(*IRF);
  Result.Metrics.OptVisited = Stats.InstrsVisited;
  Result.Metrics.OptTransforms = Stats.totalTransforms();
  assert(verifyFunction(*IRF).empty() && "optimization broke the IR");

  // Global dependency computation (liveness + reaching definitions are the
  // "global dependencies" of Section 3.2; their iteration counts meter the
  // dataflow work).
  opt::LivenessInfo Live = opt::LivenessInfo::compute(*IRF);
  opt::ReachingDefsInfo Reach = opt::ReachingDefsInfo::compute(*IRF);
  Result.Metrics.DataflowIterations = Live.Iterations + Reach.Iterations;
  Result.Metrics.DependenceWork =
      Live.Iterations * IRF->instructionCount() +
      Reach.Iterations * IRF->instructionCount();
  Result.IRInstrsAfterOpt = IRF->instructionCount();

  const PhaseClock::time_point Phase3Start = PhaseClock::now();
  if (Times)
    Times->OptSec =
        std::chrono::duration<double>(Phase3Start - Phase2Start).count();

  // Phase 3: scheduling and register allocation.
  codegen::MachineFunction MF = codegen::generateCode(*IRF, MM);
  Result.Metrics.ListSchedAttempts = MF.Metrics.ListSchedAttempts;
  Result.Metrics.ModuloSchedAttempts = MF.Metrics.ModuloSchedAttempts;
  Result.Metrics.RecMIIWork = MF.Metrics.RecMIIWork;
  Result.Metrics.RegAllocWork = MF.Metrics.RegAllocWork;
  Result.LoopsPipelined = MF.Metrics.LoopsPipelined;
  Result.LoopsConsidered = MF.Metrics.LoopsConsidered;

  if (MF.RA.Spills > 0)
    Result.Diags.warning(F.getLoc(),
                         "function '" + F.getName() + "' spills " +
                             std::to_string(MF.RA.Spills) +
                             " value(s) to cell memory");
  for (const auto &[Body, LS] : MF.PipelinedLoops) {
    (void)Body;
    if (LS.II > LS.MII)
      Result.Diags.note(F.getLoc(),
                        "loop pipelined at ii=" + std::to_string(LS.II) +
                            " above its lower bound " +
                            std::to_string(LS.MII));
  }

  // The function's own slice of assembly; the section master combines the
  // resulting CellPrograms so phase 4 sees the same input as in the
  // sequential compiler.
  Result.Program = asmout::assembleFunction(*IRF, MF);
  Result.Metrics.CodeWords = Result.Program.CodeWords;
  Result.Metrics.ImageBytes = Result.Program.Image.size();

  if (Metrics) {
    Metrics->add("phase2.functions");
    Metrics->observe("phase2.ir_instrs",
                     static_cast<double>(Result.Metrics.IRInstrs));
    Metrics->observe("phase2.dataflow_iterations",
                     static_cast<double>(Result.Metrics.DataflowIterations));
    Metrics->add("phase2.opt_transforms",
                 static_cast<double>(Result.Metrics.OptTransforms));
    Metrics->observe("phase3.code_words",
                     static_cast<double>(Result.Metrics.CodeWords));
    Metrics->observe("phase3.image_bytes",
                     static_cast<double>(Result.Metrics.ImageBytes));
    Metrics->add("phase3.loops_pipelined",
                 static_cast<double>(Result.LoopsPipelined));
    if (MF.RA.Spills > 0)
      Metrics->add("phase3.spills", static_cast<double>(MF.RA.Spills));
  }
  if (Times)
    Times->CodegenSec =
        std::chrono::duration<double>(PhaseClock::now() - Phase3Start).count();
  return Result;
}

FunctionResult driver::compileFunctionCached(const w2::SectionDecl &Section,
                                             const w2::FunctionDecl &F,
                                             const codegen::MachineModel &MM,
                                             FunctionResultCache *Cache,
                                             obs::MetricsRegistry *Metrics) {
  if (Cache) {
    std::optional<FunctionResult> Hit = Cache->lookup(Section, F);
    if (Hit && validateFunctionResult(Section, F, *Hit))
      return std::move(*Hit);
  }
  FunctionResult R = compileFunction(Section, F, MM, Metrics);
  if (Cache && validateFunctionResult(Section, F, R))
    Cache->store(Section, F, R);
  return R;
}

bool driver::validateFunctionResult(const w2::SectionDecl &Section,
                                    const w2::FunctionDecl &F,
                                    const FunctionResult &R) {
  // The result must name the task it was produced for.
  if (R.SectionName != Section.getName() || R.FunctionName != F.getName())
    return false;
  if (R.Program.FunctionName != F.getName())
    return false;
  // Every assembled cell program carries at least the 12-byte image
  // header and one instruction word; an empty image is a truncated
  // result file.
  if (R.Program.CodeWords == 0 || R.Program.Image.size() < 12)
    return false;
  return true;
}

WorkMetrics ModuleResult::totalMetrics() const {
  WorkMetrics Total = Phase1;
  for (const FunctionResult &F : Functions)
    Total += F.Metrics;
  Total += Phase4;
  return Total;
}

void driver::assembleAndLink(const w2::ModuleDecl &Module,
                             std::vector<FunctionResult> &&Results,
                             ModuleResult &Out,
                             obs::MetricsRegistry *Metrics) {
  // Group results by section, preserving declaration order.
  std::vector<asmout::SectionImage> Sections;
  size_t Cursor = 0;
  for (size_t S = 0; S != Module.numSections(); ++S) {
    const w2::SectionDecl *Section = Module.getSection(S);
    std::vector<asmout::CellProgram> Programs;
    for (size_t F = 0; F != Section->numFunctions(); ++F) {
      assert(Cursor < Results.size() && "function results out of sync");
      // Section masters combine diagnostics along with code. The program
      // is copied (it is small) so callers can still inspect per-function
      // listings through ModuleResult::Functions.
      Out.Diags.merge(Results[Cursor].Diags);
      Programs.push_back(Results[Cursor].Program);
      ++Cursor;
    }
    Sections.push_back(asmout::combineSection(
        Section->getName(), Section->getNumCells(), std::move(Programs)));
    Out.Phase4.ImageBytes += Sections.back().IODriver.size();
  }
  Out.Image = asmout::linkModule(Module.getName(), std::move(Sections));
  Out.Phase4.CodeWords = 0;
  for (const asmout::SectionImage &S : Out.Image.Sections)
    Out.Phase4.CodeWords += S.totalWords();
  Out.Phase4.ImageBytes += Out.Image.byteSize();
  Out.Functions = std::move(Results);
  if (Metrics) {
    Metrics->add("phase4.runs");
    Metrics->add("phase4.code_words",
                 static_cast<double>(Out.Phase4.CodeWords));
    Metrics->add("phase4.image_bytes",
                 static_cast<double>(Out.Phase4.ImageBytes));
    Metrics->setGauge("phase4.sections",
                      static_cast<double>(Out.Image.Sections.size()));
  }
}

ModuleResult driver::compileModuleSequential(const std::string &Source,
                                             const codegen::MachineModel &MM,
                                             obs::MetricsRegistry *Metrics,
                                             FunctionResultCache *Cache) {
  ModuleResult Result;

  ParseResult Parsed = parseAndCheck(Source, Metrics);
  Result.Diags.merge(Parsed.Diags);
  Result.Phase1 = Parsed.Metrics;
  if (!Parsed.succeeded())
    return Result;

  std::vector<FunctionResult> Functions;
  for (size_t S = 0; S != Parsed.Module->numSections(); ++S) {
    const w2::SectionDecl *Section = Parsed.Module->getSection(S);
    for (size_t F = 0; F != Section->numFunctions(); ++F)
      Functions.push_back(compileFunctionCached(
          *Section, *Section->getFunction(F), MM, Cache, Metrics));
  }

  assembleAndLink(*Parsed.Module, std::move(Functions), Result, Metrics);
  Result.Succeeded = !Result.Diags.hasErrors();
  return Result;
}
