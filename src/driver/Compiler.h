//===- Compiler.h - The four-phase W2 compiler ------------------*- C++ -*-===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The complete W2 compiler pipeline, factored along the paper's phase
/// boundaries so that the parallel compiler can run phase 1 in the master,
/// phases 2+3 in function masters, and phase 4 in the section masters and
/// master:
///
///   Phase 1: parsing and semantic checking            (sequential)
///   Phase 2: flowgraph, local optimization, deps      (per function)
///   Phase 3: software pipelining and code generation  (per function)
///   Phase 4: I/O driver generation, assembly, linking (sequential)
///
//===----------------------------------------------------------------------===//

#ifndef WARPC_DRIVER_COMPILER_H
#define WARPC_DRIVER_COMPILER_H

#include "asmout/DownloadModule.h"
#include "codegen/MachineModel.h"
#include "driver/WorkMetrics.h"
#include "obs/MetricsRegistry.h"
#include "support/Diagnostics.h"
#include "w2/AST.h"

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace warpc {
namespace driver {

/// Result of phase 1 on a whole module.
struct ParseResult {
  std::unique_ptr<w2::ModuleDecl> Module; ///< Null on hard failure.
  DiagnosticEngine Diags;
  WorkMetrics Metrics;

  bool succeeded() const { return Module != nullptr && !Diags.hasErrors(); }
};

/// Runs phase 1 (lex, parse, semantic check) on W2 source text. This is
/// what the master process runs "to obtain enough information to set up
/// the parallel compilation"; syntax and semantic errors surface here and
/// abort the compilation (Section 3.2). A non-null \p Metrics receives
/// phase1.* counters (tokens, AST nodes, sema nodes).
ParseResult parseAndCheck(const std::string &Source,
                          obs::MetricsRegistry *Metrics = nullptr);

/// Result of phases 2+3 for one function (a function master's task).
struct FunctionResult {
  std::string SectionName;
  std::string FunctionName;
  asmout::CellProgram Program;
  WorkMetrics Metrics;
  /// Per-function diagnostic output, combined later by the section master.
  DiagnosticEngine Diags;
  /// Final IR statistics for tests and listings.
  uint64_t IRInstrsAfterOpt = 0;
  uint32_t LoopsPipelined = 0;
  uint32_t LoopsConsidered = 0;
};

/// Wall-clock split of one compileFunction call along the paper's phase
/// boundary: phase 2 (lowering, local optimization, dataflow) vs phase 3
/// (scheduling, register allocation, per-function assembly). Filled by
/// compileFunction when a non-null pointer is passed; worker processes
/// turn these into span_optimize/span_codegen trace spans.
struct FunctionPhaseTimes {
  double OptSec = 0;
  double CodegenSec = 0;
};

/// Compiles one checked function through phases 2 and 3 (+ its private
/// slice of assembly). \p Section provides the signatures of sibling
/// functions; the body of no other function is touched, which is what
/// makes function-level parallel compilation correct. A non-null
/// \p Metrics receives phase2.*/phase3.* distributions (IR sizes, code
/// words, spills); recording is mutex-guarded, so concurrent function
/// masters may share one registry. A non-null \p Times receives the
/// wall-clock phase split.
FunctionResult compileFunction(const w2::SectionDecl &Section,
                               const w2::FunctionDecl &F,
                               const codegen::MachineModel &MM,
                               obs::MetricsRegistry *Metrics = nullptr,
                               FunctionPhaseTimes *Times = nullptr);

/// Interface to a content-addressed store of phase-2/3 results, keyed by
/// the function's post-semantic fingerprint (see cache::CompileCache, the
/// production implementation). The driver depends only on this interface
/// so the cache library can depend on the driver's result types without a
/// cycle. Implementations must be safe to call from concurrent function
/// masters.
class FunctionResultCache {
public:
  virtual ~FunctionResultCache() = default;

  /// Returns the cached result for \p F compiled in \p Section, or
  /// nullopt on a miss (including any load/integrity failure).
  virtual std::optional<FunctionResult>
  lookup(const w2::SectionDecl &Section, const w2::FunctionDecl &F) = 0;

  /// Records a freshly compiled (and validated) result.
  virtual void store(const w2::SectionDecl &Section, const w2::FunctionDecl &F,
                     const FunctionResult &R) = 0;
};

/// compileFunction with a cache in front: a hit skips phases 2+3
/// entirely and replays the stored result — bit-identical code, metrics
/// and diagnostics — a miss compiles and fills the cache. \p Cache may be
/// null (plain compileFunction). Cached results still pass
/// validateFunctionResult before being trusted; a result that does not is
/// treated as a miss.
FunctionResult compileFunctionCached(const w2::SectionDecl &Section,
                                     const w2::FunctionDecl &F,
                                     const codegen::MachineModel &MM,
                                     FunctionResultCache *Cache,
                                     obs::MetricsRegistry *Metrics = nullptr);

/// Sanity-checks a function master's result against the task it was
/// asked to compile: the master's defense against a corrupted (poisoned)
/// result file from a dying worker or host (paper Section 5.2). Returns
/// true when the result plausibly belongs to \p F; a failing result must
/// be discarded and the function recompiled.
bool validateFunctionResult(const w2::SectionDecl &Section,
                            const w2::FunctionDecl &F,
                            const FunctionResult &R);

/// Result of compiling a whole module.
struct ModuleResult {
  bool Succeeded = false;
  DiagnosticEngine Diags;
  /// Phase-1 work (parse + sema).
  WorkMetrics Phase1;
  /// Per-function phases 2+3 results in declaration order.
  std::vector<FunctionResult> Functions;
  /// Phase-4 work (combination + linking).
  WorkMetrics Phase4;
  asmout::DownloadModule Image;

  /// Sum of all work metrics (the sequential compiler's total).
  WorkMetrics totalMetrics() const;
};

/// Runs phase 4: combines per-function programs into section images and
/// links the download module. \p Results must be ordered as the module
/// declares its functions. A non-null \p Metrics receives phase4.*
/// counters (image bytes, code words).
void assembleAndLink(const w2::ModuleDecl &Module,
                     std::vector<FunctionResult> &&Results,
                     ModuleResult &Out,
                     obs::MetricsRegistry *Metrics = nullptr);

/// The sequential compiler: all four phases in one process, functions
/// compiled one after another. The baseline every speedup in the paper is
/// measured against. A non-null \p Cache front-ends every function
/// compile (incremental sequential recompilation).
ModuleResult compileModuleSequential(const std::string &Source,
                                     const codegen::MachineModel &MM,
                                     obs::MetricsRegistry *Metrics = nullptr,
                                     FunctionResultCache *Cache = nullptr);

} // namespace driver
} // namespace warpc

#endif // WARPC_DRIVER_COMPILER_H
