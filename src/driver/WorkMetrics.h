//===- WorkMetrics.h - Compile-work accounting ------------------*- C++ -*-===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Work counters measured from the real compiler, per phase. The cluster
/// simulator's cost model converts these into 1989 compile seconds, so the
/// simulated compile time of a function responds to its true structure
/// (size, loop nesting, scheduling difficulty) the way the paper's Common
/// Lisp compiler did.
///
//===----------------------------------------------------------------------===//

#ifndef WARPC_DRIVER_WORKMETRICS_H
#define WARPC_DRIVER_WORKMETRICS_H

#include <cstdint>

namespace warpc {
namespace driver {

/// Additive work counters for one compilation unit (function or module).
struct WorkMetrics {
  // Phase 1: parsing and semantic checking.
  uint64_t Tokens = 0;
  uint64_t AstNodes = 0;
  uint64_t SemaNodes = 0;

  // Phase 2: flowgraph construction, local optimization, dependencies.
  uint64_t IRInstrs = 0;
  uint64_t OptVisited = 0;
  uint64_t OptTransforms = 0;
  uint64_t DataflowIterations = 0;
  uint64_t DependenceWork = 0;

  // Phase 3: software pipelining and code generation.
  uint64_t ListSchedAttempts = 0;
  uint64_t ModuloSchedAttempts = 0;
  uint64_t RecMIIWork = 0;
  uint64_t RegAllocWork = 0;

  // Phase 4: assembly and post-processing.
  uint64_t CodeWords = 0;
  uint64_t ImageBytes = 0;

  // Shape of the source, for the load-balancing heuristic.
  uint32_t SourceLines = 0;
  uint32_t LoopDepth = 0;
  uint32_t LoopCount = 0;

  WorkMetrics &operator+=(const WorkMetrics &O) {
    Tokens += O.Tokens;
    AstNodes += O.AstNodes;
    SemaNodes += O.SemaNodes;
    IRInstrs += O.IRInstrs;
    OptVisited += O.OptVisited;
    OptTransforms += O.OptTransforms;
    DataflowIterations += O.DataflowIterations;
    DependenceWork += O.DependenceWork;
    ListSchedAttempts += O.ListSchedAttempts;
    ModuloSchedAttempts += O.ModuloSchedAttempts;
    RecMIIWork += O.RecMIIWork;
    RegAllocWork += O.RegAllocWork;
    CodeWords += O.CodeWords;
    ImageBytes += O.ImageBytes;
    SourceLines += O.SourceLines;
    LoopDepth = LoopDepth > O.LoopDepth ? LoopDepth : O.LoopDepth;
    LoopCount += O.LoopCount;
    return *this;
  }

  /// Abstract phase-2 work units.
  uint64_t phase2Work() const {
    return IRInstrs + OptVisited + 4 * OptTransforms + DependenceWork;
  }

  /// Abstract phase-3 work units (the expensive part). The recurrence
  /// analysis counter is an O(n^3) all-pairs computation and is weighted
  /// down accordingly — the Lisp compiler estimated RecMII much more
  /// cheaply than a full longest-path closure.
  uint64_t phase3Work() const {
    return ListSchedAttempts + ModuloSchedAttempts + RecMIIWork / 64 +
           RegAllocWork;
  }

  /// Abstract phase-1 work units.
  uint64_t phase1Work() const { return Tokens + AstNodes + SemaNodes; }

  /// Abstract phase-4 work units.
  uint64_t phase4Work() const { return CodeWords + ImageBytes / 8; }

  /// Estimated Lisp-heap allocation of this compilation in kilobytes; the
  /// GC model charges time proportional to allocation under heap pressure.
  uint64_t allocationKB() const {
    // Every visited node/attempt conses; scheduling tables dominate.
    uint64_t Bytes = 96 * (AstNodes + SemaNodes) + 160 * IRInstrs +
                     48 * OptVisited + 24 * phase3Work() + 64 * Tokens;
    return Bytes / 1024;
  }

  /// Estimated peak working set (data only, excluding the Lisp core) in
  /// kilobytes, driving the paging model.
  uint64_t workingSetKB() const {
    uint64_t Bytes = 200 * (AstNodes + SemaNodes) + 320 * IRInstrs +
                     96 * Tokens + 16 * (CodeWords + ImageBytes);
    return Bytes / 1024;
  }
};

} // namespace driver
} // namespace warpc

#endif // WARPC_DRIVER_WORKMETRICS_H
