//===- FaultPolicy.h - Fault-tolerance policy knobs -------------*- C++ -*-===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The master-side fault-tolerance policy shared by both parallel
/// execution engines (the cluster simulator and the thread runner).
/// Section 5.2 of the paper reports that ad-hoc failure handling made
/// "the application code ... unwieldy"; this policy centralizes it:
/// per-function timeouts derived from the cost-model estimate, bounded
/// retries with backoff and reassignment to a live host, and speculative
/// re-execution of stragglers. When every distributed
/// attempt is exhausted, the master recompiles the function in its own
/// process, so a compilation always completes.
///
//===----------------------------------------------------------------------===//

#ifndef WARPC_DRIVER_FAULTPOLICY_H
#define WARPC_DRIVER_FAULTPOLICY_H

namespace warpc {
namespace driver {

/// Timeout / retry / reassignment policy for the parallel engines.
struct FaultPolicy {
  /// A function master is declared lost when its attempt exceeds this
  /// multiple of the cost-model estimate (startup + compile incl. GC +
  /// result transfer). Large enough that resource contention in a
  /// healthy run never trips it; a host slowed beyond this factor is
  /// treated as failed and its work reassigned.
  double TimeoutFactor = 3.0;

  /// Each retry lengthens the timeout by this factor, so a congested
  /// network does not cause retry storms.
  double BackoffFactor = 1.5;

  /// Floor on any timeout, in simulated seconds: process startup alone
  /// costs tens of seconds on the 1989 host, so shorter timeouts would
  /// misfire on tiny functions.
  double MinTimeoutSec = 30.0;

  /// Distributed attempts per function (including the first) before the
  /// master stops trusting the network and recompiles the function in
  /// its own process.
  unsigned MaxAttempts = 3;

  /// When a function master runs past a soft deadline — half the
  /// watchdog timeout, i.e. TimeoutFactor/2 times the estimate — launch
  /// a speculative duplicate on another live host and accept whichever
  /// result arrives first. The original attempt is not declared dead;
  /// the hard watchdog still backs it up. One speculation per function.
  bool SpeculateStragglers = true;
};

} // namespace driver
} // namespace warpc

#endif // WARPC_DRIVER_FAULTPOLICY_H
