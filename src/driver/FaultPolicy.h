//===- FaultPolicy.h - Fault-tolerance policy knobs -------------*- C++ -*-===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The master-side fault-tolerance policy shared by both parallel
/// execution engines (the cluster simulator and the thread runner).
/// Section 5.2 of the paper reports that ad-hoc failure handling made
/// "the application code ... unwieldy"; this policy centralizes it:
/// per-function timeouts derived from the cost-model estimate, bounded
/// retries with backoff and reassignment to a live host, and speculative
/// re-execution of stragglers. When every distributed
/// attempt is exhausted, the master recompiles the function in its own
/// process, so a compilation always completes.
///
//===----------------------------------------------------------------------===//

#ifndef WARPC_DRIVER_FAULTPOLICY_H
#define WARPC_DRIVER_FAULTPOLICY_H

#include <cstddef>
#include <cstdint>

namespace warpc {
namespace driver {

/// Timeout / retry / reassignment policy for the parallel engines.
struct FaultPolicy {
  /// A function master is declared lost when its attempt exceeds this
  /// multiple of the cost-model estimate (startup + compile incl. GC +
  /// result transfer). Large enough that resource contention in a
  /// healthy run never trips it; a host slowed beyond this factor is
  /// treated as failed and its work reassigned.
  double TimeoutFactor = 3.0;

  /// Each retry lengthens the timeout by this factor, so a congested
  /// network does not cause retry storms.
  double BackoffFactor = 1.5;

  /// Floor on any timeout, in simulated seconds: process startup alone
  /// costs tens of seconds on the 1989 host, so shorter timeouts would
  /// misfire on tiny functions.
  double MinTimeoutSec = 30.0;

  /// Distributed attempts per function (including the first) before the
  /// master stops trusting the network and recompiles the function in
  /// its own process.
  unsigned MaxAttempts = 3;

  /// When a function master runs past a soft deadline — half the
  /// watchdog timeout, i.e. TimeoutFactor/2 times the estimate — launch
  /// a speculative duplicate on another live host and accept whichever
  /// result arrives first. The original attempt is not declared dead;
  /// the hard watchdog still backs it up. One speculation per function.
  bool SpeculateStragglers = true;
};

/// splitmix64 finalizer over a (seed, function, attempt, salt) tuple: a
/// stateless uniform draw in [0, 1). Every fault-injection decision in
/// the thread and process engines is a pure function of these arguments,
/// so failure schedules replay identically regardless of thread
/// interleaving, worker count, or which OS process evaluates the draw.
inline double seededFaultDraw(uint64_t Seed, uint64_t Fn, uint64_t Attempt,
                              uint64_t Salt) {
  uint64_t X = Seed + 0x9E3779B97F4A7C15ULL * (Fn + 1) +
               0xBF58476D1CE4E5B9ULL * (Attempt + 1) +
               0x94D049BB133111EBULL * (Salt + 1);
  X ^= X >> 30;
  X *= 0xBF58476D1CE4E5B9ULL;
  X ^= X >> 27;
  X *= 0x94D049BB133111EBULL;
  X ^= X >> 31;
  return static_cast<double>(X >> 11) * (1.0 / 9007199254740992.0);
}

/// Process-level fault injection for the fork/exec engine. Unlike the
/// thread engine's in-process FaultInjection hooks, this plan is shipped
/// to the worker processes over the wire (it must serialize), and the
/// workers act it out for real: a Kill decision raises SIGKILL in the
/// worker at a phase boundary, a Stall sleeps past the master's watchdog,
/// and a Corrupt decision truncates or garbles the result frame. The
/// master's recovery path therefore faces genuine process death, not a
/// simulated vanish. All decisions are seededFaultDraw(Seed, Fn, Attempt)
/// draws — pure per (function, attempt) — so retry/reassignment stats are
/// deterministic at any worker count.
struct ProcessFaultPlan {
  uint64_t Seed = 0;
  /// P(raise(SIGKILL) at a seeded phase boundary: task receipt, end of
  /// compile, or midway through writing the result frame).
  double KillProb = 0;
  /// P(sleep StallSec before compiling — a wedged worker the master's
  /// watchdog must detect and kill).
  double StallProb = 0;
  /// P(deliver a damaged result: a truncated payload that fails
  /// validation, or a frame with a bad checksum).
  double CorruptProb = 0;
  double StallSec = 30.0;
  /// Inject only into attempts <= this number (1-based); 0 means every
  /// attempt. MaxFaultAttempt=1 makes first attempts fail and retries
  /// succeed — the deterministic retry/reassignment scenario.
  uint32_t MaxFaultAttempt = 0;

  bool enabled() const {
    return KillProb > 0 || StallProb > 0 || CorruptProb > 0;
  }
  /// Whether injection applies to \p Attempt at all.
  bool applies(uint32_t Attempt) const {
    return MaxFaultAttempt == 0 || Attempt <= MaxFaultAttempt;
  }
};

} // namespace driver
} // namespace warpc

#endif // WARPC_DRIVER_FAULTPOLICY_H
