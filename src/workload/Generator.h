//===- Generator.h - Synthetic W2 workload generation -----------*- C++ -*-===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates the paper's benchmark programs (Section 4.1): synthetic W2
/// functions "derived from one of our largest application programs, a
/// Monte Carlo style simulation", in five sizes —
///
///   f_tiny   =   4 lines    f_small =  35 lines    f_medium = 100 lines
///   f_large  = 280 lines    f_huge  = 360 lines
///
/// — each a loop nest ("with deeply nested loop bodies in the case of the
/// larger programs"); the S_n test modules containing n equal-size
/// functions; and the mechanical-engineering user program of Section 4.3
/// (three sections with three functions each: one ~300-line function plus
/// two of 5-45 lines per section).
///
//===----------------------------------------------------------------------===//

#ifndef WARPC_WORKLOAD_GENERATOR_H
#define WARPC_WORKLOAD_GENERATOR_H

#include <cstdint>
#include <string>
#include <vector>

namespace warpc {
namespace workload {

/// The five benchmark function sizes of Section 4.1.
enum class FunctionSize { Tiny, Small, Medium, Large, Huge };

inline constexpr FunctionSize AllSizes[] = {
    FunctionSize::Tiny, FunctionSize::Small, FunctionSize::Medium,
    FunctionSize::Large, FunctionSize::Huge};

/// "f_tiny", "f_small", ...
const char *sizeName(FunctionSize Size);

/// Source lines of the size class (4, 35, 100, 280, 360).
uint32_t sizeLines(FunctionSize Size);

/// Loop nesting depth used for the size class.
uint32_t sizeLoopDepth(FunctionSize Size);

/// Generates one W2 function of the given size class. \p Seed varies the
/// statement mix deterministically so that S_n modules do not contain
/// byte-identical functions.
std::string generateFunction(FunctionSize Size, const std::string &Name,
                             uint64_t Seed);

/// Generates a function with an explicit line target (for Figure 7 style
/// size sweeps and the user program's mixed sizes).
std::string generateFunctionWithLines(uint32_t TargetLines,
                                      uint32_t LoopDepth,
                                      const std::string &Name, uint64_t Seed);

/// The S_n test module: one section of \p NumFunctions functions of size
/// \p Size (the paper varies n over 1, 2, 4 and 8).
std::string makeTestModule(FunctionSize Size, unsigned NumFunctions,
                           uint64_t Seed = 1989);

/// The Section 4.3 user program: a mechanical-engineering application of
/// three section programs with three functions each — per section one
/// function of ~300 lines and two of 5-45 lines (nine functions total).
std::string makeUserProgram(uint64_t Seed = 1989);

/// A small fixed two-section module used by quickstart documentation and
/// smoke tests; mirrors Figure 1's program S (section 1 with one function,
/// section 2 with three).
std::string makeFigure1Program();

} // namespace workload
} // namespace warpc

#endif // WARPC_WORKLOAD_GENERATOR_H
