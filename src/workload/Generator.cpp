//===- Generator.cpp - Synthetic W2 workload generation --------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "workload/Generator.h"

#include "support/PRNG.h"
#include "support/StringUtils.h"

#include <cassert>

using namespace warpc;
using namespace warpc::workload;

const char *workload::sizeName(FunctionSize Size) {
  switch (Size) {
  case FunctionSize::Tiny:
    return "f_tiny";
  case FunctionSize::Small:
    return "f_small";
  case FunctionSize::Medium:
    return "f_medium";
  case FunctionSize::Large:
    return "f_large";
  case FunctionSize::Huge:
    return "f_huge";
  }
  return "?";
}

uint32_t workload::sizeLines(FunctionSize Size) {
  switch (Size) {
  case FunctionSize::Tiny:
    return 4;
  case FunctionSize::Small:
    return 35;
  case FunctionSize::Medium:
    return 100;
  case FunctionSize::Large:
    return 280;
  case FunctionSize::Huge:
    return 360;
  }
  return 4;
}

uint32_t workload::sizeLoopDepth(FunctionSize Size) {
  switch (Size) {
  case FunctionSize::Tiny:
    return 0;
  case FunctionSize::Small:
    return 2;
  case FunctionSize::Medium:
    return 3;
  case FunctionSize::Large:
    return 4;
  case FunctionSize::Huge:
    return 4;
  }
  return 0;
}

namespace {

/// Emits one function line by line with exact line accounting.
class FunctionWriter {
public:
  FunctionWriter(uint32_t TargetLines, uint32_t LoopDepth,
                 const std::string &Name, uint64_t Seed)
      : Target(TargetLines), Depth(LoopDepth), Name(Name), Rng(Seed) {}

  std::string write() {
    assert(Target >= 4 && "a W2 function needs at least 4 lines");
    emit("function " + Name + "(xin: float, gain: float): float {");

    if (Target < 10) {
      // The canonical f_tiny shape: straight-line code, no loops.
      emit("  var acc: float = xin * 2.0 + gain;");
      for (uint32_t L = 4; L != Target; ++L)
        emit("  acc = acc * " + constant() + " + xin;");
      emit("  return acc;");
      emit("}");
      return Out;
    }

    // Preamble: locals and one receive, mirroring a systolic kernel that
    // consumes a stream element per invocation.
    emit("  var acc: float = 0.0;");
    emit("  var tmp: float = 1.0;");
    emit("  var buf: float[64];");
    emit("  var aux: float[64];");
    emit("  receive(X, tmp);");
    uint32_t Preamble = 5;

    // Lines available for the loop nest: total minus header, preamble,
    // the trailing send/return, and the closing brace.
    uint32_t Tail = 3; // send, return, closing brace
    assert(Target > 1 + Preamble + Tail && "line budget too small");
    uint32_t NestBudget = Target - 1 - Preamble - Tail;

    uint32_t EffDepth = Depth;
    // Every loop level costs two lines plus at least one statement.
    while (EffDepth > 0 && NestBudget < 3 * EffDepth)
      --EffDepth;
    emitNest(EffDepth, NestBudget, 1);

    emit("  send(Y, acc);");
    emit("  return acc;");
    emit("}");
    return Out;
  }

private:
  void emit(const std::string &Line) { Out += Line + "\n"; }

  std::string indent(uint32_t Level) const {
    return std::string(2 * Level, ' ');
  }

  /// A float rvalue usable at loop level \p Level (Level >= 1 inside the
  /// outermost loop; index variables i1..iLevel are in scope).
  std::string scalarRef(uint32_t Level) {
    switch (Rng.below(4)) {
    case 0:
      return "acc";
    case 1:
      return "tmp";
    case 2:
      return "xin";
    default:
      return Level >= 1 ? arrayRef(Level) : std::string("gain");
    }
  }

  std::string arrayRef(uint32_t Level) {
    assert(Level >= 1 && "array refs need an index variable");
    std::string Arr = Rng.below(2) == 0 ? "buf" : "aux";
    uint32_t Idx = 1 + static_cast<uint32_t>(Rng.below(Level));
    std::string Index = "i" + std::to_string(Idx);
    // Occasionally offset the subscript so the dependence analyzer sees
    // nonzero distances.
    switch (Rng.below(4)) {
    case 0:
      return Arr + "[" + Index + " + 1]";
    case 1:
      return Arr + "[" + Index + " + 2]";
    default:
      return Arr + "[" + Index + "]";
    }
  }

  std::string constant() {
    static const char *Consts[] = {"0.5", "1.25", "2.0", "3.75", "0.125",
                                   "1.5", "4.0",  "0.25"};
    return Consts[Rng.below(8)];
  }

  /// Emits one computation statement at loop nesting \p Level. The mix
  /// is mostly element-wise array work (independent across iterations,
  /// the shape Warp kernels have) with an occasional accumulator update
  /// — a short recurrence the software pipeliner can still overlap.
  void emitStatement(uint32_t Level) {
    std::string Pad = indent(Level + 1);
    if (Level == 0) {
      // Straight-line statements outside all loops.
      switch (Rng.below(4)) {
      case 0:
        emit(Pad + "acc = acc + tmp * " + constant() + ";");
        return;
      case 1:
        emit(Pad + "acc = acc + xin * gain + " + constant() + ";");
        return;
      case 2:
        emit(Pad + "acc = acc * " + constant() + " + xin;");
        return;
      default:
        emit(Pad + "acc = acc + abs(tmp) + " + constant() + ";");
        return;
      }
    }
    switch (Rng.below(16)) {
    case 0:
    case 1:
    case 2:
      emit(Pad + arrayRef(Level) + " = " + arrayRef(Level) + " * gain + " +
           constant() + ";");
      return;
    case 3:
    case 4:
    case 5:
      emit(Pad + arrayRef(Level) + " = " + arrayRef(Level) + " + xin * " +
           constant() + ";");
      return;
    case 6:
    case 7:
      emit(Pad + arrayRef(Level) + " = " + arrayRef(Level) + " - " +
           arrayRef(Level) + " / " + constant() + ";");
      return;
    case 8:
    case 9:
      emit(Pad + arrayRef(Level) + " = abs(" + arrayRef(Level) + ") + " +
           constant() + ";");
      return;
    case 10:
      // The one serial recurrence per mix: a dot-product style update.
      emit(Pad + "acc = acc + " + arrayRef(Level) + " * " + constant() +
           ";");
      return;
    case 11:
      emit(Pad + "tmp = tmp + " + arrayRef(Level) + " * gain;");
      return;
    case 12:
      emit(Pad + arrayRef(Level) + " = tmp + " + constant() + ";");
      return;
    case 13:
      if (Rng.below(4) == 0) {
        emit(Pad + "send(X, " + arrayRef(Level) + ");");
        return;
      }
      emit(Pad + arrayRef(Level) + " = xin - " + arrayRef(Level) + " * " +
           constant() + ";");
      return;
    case 14:
      if (Rng.below(4) == 0) {
        emit(Pad + "tmp = tmp + sqrt(" + arrayRef(Level) + " * " +
             arrayRef(Level) + " + " + constant() + ");");
        return;
      }
      emit(Pad + arrayRef(Level) + " = " + arrayRef(Level) + " * " +
           constant() + ";");
      return;
    default:
      emit(Pad + arrayRef(Level) + " = " + arrayRef(Level) + " + " +
           arrayRef(Level) + " * " + constant() + ";");
      return;
    }
  }

  /// Emits a nest of \p Levels loops consuming exactly \p Budget lines.
  /// The innermost body is kept small (a pipelinable Warp kernel); the
  /// surplus becomes straight-line work in the outer loop bodies, which is
  /// what makes the larger benchmark functions expensive to schedule.
  void emitNest(uint32_t Levels, uint32_t Budget, uint32_t NextIndex) {
    uint32_t Level = NextIndex - 1; // statements outside use this nesting
    if (Levels == 0) {
      for (uint32_t L = 0; L != Budget; ++L)
        emitStatement(Level);
      return;
    }
    assert(Budget >= 3 * Levels && "insufficient budget for loop nest");

    // Plan the whole nest at once: two lines of loop overhead per level,
    // an innermost body of at most MaxInnerStmts, and the remaining
    // statements spread over the outer bodies (biased toward the deeper
    // levels — "deeply nested loop bodies in the case of the larger
    // programs").
    constexpr uint32_t MaxInnerStmts = 14;
    uint32_t Stmts = Budget - 2 * Levels;
    uint32_t Inner = std::min(
        Stmts - (Levels - 1), // leave one statement per outer level
        6 + static_cast<uint32_t>(Rng.below(MaxInnerStmts - 5)));
    if (Levels == 1)
      Inner = Stmts;
    uint32_t Rest = Stmts - Inner;

    // Shares for outer levels 1..Levels-1, deeper levels get more.
    std::vector<uint32_t> Share(Levels, 0);
    Share[Levels - 1] = Inner;
    if (Levels > 1) {
      uint32_t TotalWeight = Levels * (Levels - 1) / 2;
      uint32_t Assigned = 0;
      for (uint32_t D = 0; D + 1 < Levels; ++D) {
        uint32_t Weight = D + 1;
        uint32_t Part = Rest * Weight / TotalWeight;
        Share[D] = Part;
        Assigned += Part;
      }
      Share[Levels - 2] += Rest - Assigned;
    }

    emitNestLevels(Share, 0, NextIndex);
    (void)Level;
  }

  /// Emits loop level \p D of the planned nest.
  void emitNestLevels(const std::vector<uint32_t> &Share, uint32_t D,
                      uint32_t NextIndex) {
    uint32_t Extent = 16u << Rng.below(3); // 16, 32, or 64 iterations
    if (Extent > 62)
      Extent = 62; // stay within buf[64] with +2 subscript offsets
    std::string Pad = indent(NextIndex);
    emit(Pad + "for i" + std::to_string(NextIndex) + " = 0 to " +
         std::to_string(Extent - 1) + " {");
    if (D + 1 == Share.size()) {
      for (uint32_t L = 0; L != Share[D]; ++L)
        emitStatement(NextIndex);
    } else {
      uint32_t Before = Share[D] / 2;
      for (uint32_t L = 0; L != Before; ++L)
        emitStatement(NextIndex);
      emitNestLevels(Share, D + 1, NextIndex + 1);
      for (uint32_t L = Before; L != Share[D]; ++L)
        emitStatement(NextIndex);
    }
    emit(Pad + "}");
  }

  std::string Out;
  uint32_t Target;
  uint32_t Depth;
  std::string Name;
  PRNG Rng;
};

} // namespace

std::string workload::generateFunctionWithLines(uint32_t TargetLines,
                                                uint32_t LoopDepth,
                                                const std::string &Name,
                                                uint64_t Seed) {
  FunctionWriter Writer(TargetLines, LoopDepth, Name, Seed);
  return Writer.write();
}

std::string workload::generateFunction(FunctionSize Size,
                                       const std::string &Name,
                                       uint64_t Seed) {
  return generateFunctionWithLines(sizeLines(Size), sizeLoopDepth(Size), Name,
                                   Seed);
}

std::string workload::makeTestModule(FunctionSize Size, unsigned NumFunctions,
                                     uint64_t Seed) {
  assert(NumFunctions > 0 && "a test module needs at least one function");
  std::string Out = "module s" + std::to_string(NumFunctions) + "_" +
                    std::string(sizeName(Size)).substr(2) + ";\n";
  Out += "section main cells 10 {\n";
  for (unsigned F = 0; F != NumFunctions; ++F)
    Out += generateFunction(Size, "f" + std::to_string(F + 1),
                            Seed * 1315423911u + F);
  Out += "}\n";
  return Out;
}

std::string workload::makeUserProgram(uint64_t Seed) {
  // "The program consists of three section programs with three functions
  // each ... The sequential compilation times of three functions ranged
  // between 19 and 22 minutes (about 300 lines of code each), the
  // compilation times for the other six functions are in the 2 to 6
  // minutes range (between 5 and 45 lines of code)."
  struct Spec {
    uint32_t Lines;
    uint32_t Depth;
    uint64_t FixedSeed; ///< Calibrated so the big functions land in the
                        ///< paper's 19-22 minute band under the 1989 cost
                        ///< model, with the default Seed.
  };
  const Spec SectionSpecs[3][3] = {
      {{300, 4, 19}, {45, 2, 2}, {12, 1, 3}},
      {{310, 4, 19}, {30, 2, 5}, {5, 0, 4}},
      {{295, 4, 19}, {38, 2, 13}, {18, 1, 10}},
  };

  std::string Out = "module fem_solver;\n";
  for (unsigned S = 0; S != 3; ++S) {
    Out += "section stage" + std::to_string(S + 1) + " cells 3 {\n";
    for (unsigned F = 0; F != 3; ++F) {
      const Spec &SpecFS = SectionSpecs[S][F];
      uint32_t Lines = SpecFS.Lines < 4 ? 4 : SpecFS.Lines;
      Out += generateFunctionWithLines(
          Lines, SpecFS.Depth,
          "phase" + std::to_string(S + 1) + "_f" + std::to_string(F + 1),
          SpecFS.FixedSeed + (Seed - 1989));
    }
    Out += "}\n";
  }
  return Out;
}

std::string workload::makeFigure1Program() {
  // Program S from Figure 1: section 1 holds function 1.1; section 2
  // holds functions 2.1, 2.2 and 2.3.
  std::string Out = "module s;\n";
  Out += "section sec1 cells 4 {\n";
  Out += generateFunctionWithLines(40, 2, "func_1_1", 11);
  Out += "}\n";
  Out += "section sec2 cells 6 {\n";
  Out += generateFunctionWithLines(35, 2, "func_2_1", 21);
  Out += generateFunctionWithLines(28, 1, "func_2_2", 22);
  Out += generateFunctionWithLines(44, 2, "func_2_3", 23);
  Out += "}\n";
  return Out;
}
