//===- Interpreter.h - Flowgraph IR interpreter -----------------*- C++ -*-===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A reference interpreter for the flowgraph IR. It exists for testing:
/// every optimization and the procedure inliner must preserve observable
/// behavior — the returned value, the values sent on each channel, and
/// the final contents of array parameters. The differential tests in
/// tests/ execute a function before and after a transformation on the
/// same inputs and compare.
///
/// The interpreter models one Warp cell: scalar/array storage, the X and
/// Y input queues (provided up front) and output queues (captured).
/// Execution is bounded by a step budget so broken control flow cannot
/// hang the test suite.
///
//===----------------------------------------------------------------------===//

#ifndef WARPC_IR_INTERPRETER_H
#define WARPC_IR_INTERPRETER_H

#include "ir/IR.h"

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace warpc {
namespace ir {

/// A runtime scalar (int or float, after W2's static typing).
struct RuntimeValue {
  bool IsFloat = false;
  int64_t I = 0;
  double F = 0;

  static RuntimeValue ofInt(int64_t V) { return RuntimeValue{false, V, 0}; }
  static RuntimeValue ofFloat(double V) { return RuntimeValue{true, 0, V}; }

  double asFloat() const { return IsFloat ? F : static_cast<double>(I); }
  int64_t asInt() const { return IsFloat ? static_cast<int64_t>(F) : I; }

  friend bool operator==(const RuntimeValue &A, const RuntimeValue &B) {
    if (A.IsFloat != B.IsFloat)
      return false;
    return A.IsFloat ? A.F == B.F : A.I == B.I;
  }
};

/// Inputs to one execution.
struct ExecInput {
  /// One entry per function parameter, in order. Scalar parameters use
  /// Scalar; array parameters use Array (sized to the declared extent or
  /// zero-filled up to it).
  struct Arg {
    RuntimeValue Scalar;
    std::vector<double> Array;
    bool IsArray = false;

    static Arg ofInt(int64_t V) {
      Arg A;
      A.Scalar = RuntimeValue::ofInt(V);
      return A;
    }
    static Arg ofFloat(double V) {
      Arg A;
      A.Scalar = RuntimeValue::ofFloat(V);
      return A;
    }
    static Arg ofArray(std::vector<double> Values) {
      Arg A;
      A.Array = std::move(Values);
      A.IsArray = true;
      return A;
    }
  };
  std::vector<Arg> Args;
  /// Values waiting on the X and Y input queues.
  std::vector<double> XInput;
  std::vector<double> YInput;
  /// Maximum instructions executed before giving up.
  uint64_t StepBudget = 2'000'000;
};

/// Observable results of one execution.
struct ExecResult {
  bool Completed = false;   ///< False on budget exhaustion or a fault.
  std::string Fault;        ///< Empty when clean.
  bool HasReturn = false;
  RuntimeValue Return;
  std::vector<double> XOutput; ///< Values sent on X.
  std::vector<double> YOutput; ///< Values sent on Y.
  /// Final contents of array parameters (same order as declared params,
  /// scalars get empty vectors).
  std::vector<std::vector<double>> FinalArrays;
  uint64_t StepsExecuted = 0;
};

/// Hook for resolving calls (used by differential tests that interpret a
/// whole section: the callee is itself interpreted). Receives the callee
/// name, scalar arguments, and array arguments by reference; returns the
/// call's result.
using CallHandler = std::function<RuntimeValue(
    const std::string &Callee, const std::vector<RuntimeValue> &ScalarArgs,
    std::vector<std::vector<double> *> &ArrayArgs, bool &Ok)>;

/// Executes \p F on \p Input. \p Calls may be null when the function
/// contains no calls (intrinsics are always built in).
ExecResult interpret(const IRFunction &F, const ExecInput &Input,
                     const CallHandler *Calls = nullptr);

} // namespace ir
} // namespace warpc

#endif // WARPC_IR_INTERPRETER_H
