//===- IR.h - Flowgraph intermediate representation -------------*- C++ -*-===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Three-address intermediate representation with an explicit flowgraph.
/// Compiler phase 2 builds this IR from the checked AST ("construction of
/// the flowgraph, local optimization, and computation of global
/// dependencies", Section 3.2), and phase 3 schedules it onto the Warp
/// cell's functional units.
///
/// Instructions are plain structs held contiguously per basic block; values
/// live in virtual registers, and named storage (scalars and arrays) is
/// accessed through Load/Store instructions against a per-function variable
/// table. The representation is deliberately not SSA: the 1989 compiler
/// predates SSA, and the classic bit-vector dataflow in opt/ matches it.
///
//===----------------------------------------------------------------------===//

#ifndef WARPC_IR_IR_H
#define WARPC_IR_IR_H

#include "support/SourceLoc.h"
#include "w2/AST.h"

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

namespace warpc {
namespace ir {

/// A virtual register id.
using Reg = uint32_t;
inline constexpr Reg InvalidReg = std::numeric_limits<Reg>::max();

/// A variable slot id into IRFunction's variable table.
using VarId = uint32_t;

/// A basic block id; blocks are owned and numbered by their IRFunction.
using BlockId = uint32_t;
inline constexpr BlockId InvalidBlock = std::numeric_limits<BlockId>::max();

/// Result/operand scalar type of an instruction.
enum class ValueType : uint8_t { Int, Float };

/// Instruction opcodes.
enum class Opcode : uint8_t {
  // Arithmetic; Ty selects int or float flavor.
  Add,
  Sub,
  Mul,
  Div,
  Rem, // int only
  Neg,
  // Logical (int only). And/Or are strict (W2 has no short-circuit).
  And,
  Or,
  Not,
  // Comparisons produce an int 0/1; Ty is the operand type.
  CmpEQ,
  CmpNE,
  CmpLT,
  CmpLE,
  CmpGT,
  CmpGE,
  // Conversion.
  IntToFloat,
  // Constants and copies.
  ConstInt,
  ConstFloat,
  Copy,
  // Memory: scalars (LoadVar/StoreVar) and array elements (LoadElem uses
  // operand 0 as index; StoreElem uses operand 0 as index, 1 as value).
  LoadVar,
  StoreVar,
  LoadElem,
  StoreElem,
  // Systolic channel queues.
  Send, // operand 0: value
  Recv, // defines Dst
  // Call to a function in the same section (or sqrt/abs intrinsics get
  // their own opcodes below). Scalar args in Operands, array args by VarId.
  Call,
  // Math intrinsics.
  Sqrt,
  Abs,
  // Control flow terminators.
  Br,     // unconditional, to Target0
  CondBr, // operand 0: condition; true -> Target0, false -> Target1
  Ret,    // optional operand 0: return value
};

/// Returns the mnemonic for an opcode.
const char *opcodeName(Opcode Op);

/// Returns true for Br/CondBr/Ret.
bool isTerminator(Opcode Op);

/// One IR instruction.
struct Instr {
  Opcode Op = Opcode::Copy;
  ValueType Ty = ValueType::Int;
  Reg Dst = InvalidReg;
  /// Register operands; the meaning is positional per opcode.
  std::vector<Reg> Operands;
  /// Immediate payloads.
  int64_t IntImm = 0;
  double FloatImm = 0;
  VarId Var = 0;
  w2::Channel Chan = w2::Channel::X;
  /// Callee name and whole-array arguments for Call.
  std::string Callee;
  std::vector<VarId> ArrayArgs;
  /// Branch targets.
  BlockId Target0 = InvalidBlock;
  BlockId Target1 = InvalidBlock;
  SourceLoc Loc;

  bool definesReg() const { return Dst != InvalidReg; }
  bool isBranch() const { return Op == Opcode::Br || Op == Opcode::CondBr; }

  /// True when this instruction reads memory (variable or element load).
  bool readsMemory() const {
    return Op == Opcode::LoadVar || Op == Opcode::LoadElem;
  }
  /// True when this instruction writes memory.
  bool writesMemory() const {
    return Op == Opcode::StoreVar || Op == Opcode::StoreElem;
  }
  /// Calls and channel ops must keep their relative order.
  bool hasSideEffects() const {
    return Op == Opcode::Call || Op == Opcode::Send || Op == Opcode::Recv;
  }
};

/// A maximal straight-line sequence ending in a terminator.
class BasicBlock {
public:
  explicit BasicBlock(BlockId Id) : Id(Id) {}

  BlockId id() const { return Id; }

  std::vector<Instr> Instrs;

  /// Successor block ids derived from the terminator; empty for Ret.
  std::vector<BlockId> successors() const;

  /// The terminator, or null while the block is under construction.
  const Instr *terminator() const {
    if (Instrs.empty() || !isTerminator(Instrs.back().Op))
      return nullptr;
    return &Instrs.back();
  }

private:
  BlockId Id;
};

/// A named storage location: parameter, local scalar, or local array.
struct Variable {
  std::string Name;
  w2::Type Ty;
  bool IsParam = false;
};

/// The IR for one W2 function: the unit of parallel compilation.
class IRFunction {
public:
  IRFunction(std::string Name, w2::Type RetTy)
      : Name(std::move(Name)), RetTy(RetTy) {}

  const std::string &name() const { return Name; }
  w2::Type returnType() const { return RetTy; }

  /// Creates and owns a new empty basic block.
  BasicBlock *createBlock();
  size_t numBlocks() const { return Blocks.size(); }
  BasicBlock *block(BlockId Id) { return Blocks[Id].get(); }
  const BasicBlock *block(BlockId Id) const { return Blocks[Id].get(); }

  /// The entry block is always block 0.
  BasicBlock *entry() { return Blocks.empty() ? nullptr : Blocks[0].get(); }

  /// Allocates a fresh virtual register.
  Reg newReg() { return NextReg++; }
  uint32_t numRegs() const { return NextReg; }

  /// Adds a variable slot; returns its id.
  VarId addVariable(Variable V);
  size_t numVariables() const { return Variables.size(); }
  const Variable &variable(VarId Id) const { return Variables[Id]; }

  /// Predecessor lists; recomputed on demand after CFG edits.
  std::vector<std::vector<BlockId>> computePredecessors() const;

  /// Total instruction count across all blocks, a phase-2 work metric.
  uint64_t instructionCount() const;

private:
  std::string Name;
  w2::Type RetTy;
  std::vector<std::unique_ptr<BasicBlock>> Blocks;
  std::vector<Variable> Variables;
  Reg NextReg = 0;
};

/// Renders the whole function as text, one instruction per line. Used by
/// tests and by -debug style dumps.
std::string printFunction(const IRFunction &F);

/// One structural problem the verifier found, anchored to the offending
/// instruction so failures in a thousand-instruction function are
/// actionable.
struct VerifierIssue {
  std::string Message;
  BlockId Block = InvalidBlock;
  /// Position of the offending instruction within the block; ~0u when the
  /// issue concerns the block or function as a whole.
  uint32_t InstrPos = ~0u;
  SourceLoc Loc;

  /// Renders "function 'f' bb2[3] (12:5): message".
  std::string str(const IRFunction &F) const;
};

/// Structural validity checks, all of them: every block is non-empty and
/// ends in exactly one terminator, branch targets and variable ids are in
/// range, every opcode carries its exact operand arity and defines (or
/// does not define) a result register as its semantics demand, scalar
/// memory ops name scalar variables and element ops name arrays, and
/// every operand register has at least one definition somewhere in the
/// function — the check that catches a transformation deleting a def
/// whose uses survive (e.g. an overzealous DCE). Returns every issue
/// found, not just the first.
std::vector<VerifierIssue> verifyFunctionIssues(const IRFunction &F);

/// Compatibility wrapper: the first issue rendered as a string, or an
/// empty string when the function verifies.
std::string verifyFunction(const IRFunction &F);

/// Number of Send/Recv instructions. Channel traffic is an observable
/// effect of a cell program, so this count is invariant across every
/// opt/ pass — the debug-build pipeline asserts it.
uint64_t countChannelOps(const IRFunction &F);

} // namespace ir
} // namespace warpc

#endif // WARPC_IR_IR_H
