//===- IR.cpp - Flowgraph intermediate representation ---------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/IR.h"

#include "support/StringUtils.h"

#include <cassert>

using namespace warpc;
using namespace warpc::ir;

const char *ir::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::Add:
    return "add";
  case Opcode::Sub:
    return "sub";
  case Opcode::Mul:
    return "mul";
  case Opcode::Div:
    return "div";
  case Opcode::Rem:
    return "rem";
  case Opcode::Neg:
    return "neg";
  case Opcode::And:
    return "and";
  case Opcode::Or:
    return "or";
  case Opcode::Not:
    return "not";
  case Opcode::CmpEQ:
    return "cmpeq";
  case Opcode::CmpNE:
    return "cmpne";
  case Opcode::CmpLT:
    return "cmplt";
  case Opcode::CmpLE:
    return "cmple";
  case Opcode::CmpGT:
    return "cmpgt";
  case Opcode::CmpGE:
    return "cmpge";
  case Opcode::IntToFloat:
    return "itof";
  case Opcode::ConstInt:
    return "iconst";
  case Opcode::ConstFloat:
    return "fconst";
  case Opcode::Copy:
    return "copy";
  case Opcode::LoadVar:
    return "ldvar";
  case Opcode::StoreVar:
    return "stvar";
  case Opcode::LoadElem:
    return "ldelem";
  case Opcode::StoreElem:
    return "stelem";
  case Opcode::Send:
    return "send";
  case Opcode::Recv:
    return "recv";
  case Opcode::Call:
    return "call";
  case Opcode::Sqrt:
    return "sqrt";
  case Opcode::Abs:
    return "abs";
  case Opcode::Br:
    return "br";
  case Opcode::CondBr:
    return "cbr";
  case Opcode::Ret:
    return "ret";
  }
  return "?";
}

bool ir::isTerminator(Opcode Op) {
  return Op == Opcode::Br || Op == Opcode::CondBr || Op == Opcode::Ret;
}

std::vector<BlockId> BasicBlock::successors() const {
  const Instr *Term = terminator();
  if (!Term)
    return {};
  switch (Term->Op) {
  case Opcode::Br:
    return {Term->Target0};
  case Opcode::CondBr:
    return {Term->Target0, Term->Target1};
  default:
    return {};
  }
}

BasicBlock *IRFunction::createBlock() {
  Blocks.push_back(
      std::make_unique<BasicBlock>(static_cast<BlockId>(Blocks.size())));
  return Blocks.back().get();
}

VarId IRFunction::addVariable(Variable V) {
  Variables.push_back(std::move(V));
  return static_cast<VarId>(Variables.size() - 1);
}

std::vector<std::vector<BlockId>> IRFunction::computePredecessors() const {
  std::vector<std::vector<BlockId>> Preds(Blocks.size());
  for (const auto &BB : Blocks)
    for (BlockId Succ : BB->successors())
      Preds[Succ].push_back(BB->id());
  return Preds;
}

uint64_t IRFunction::instructionCount() const {
  uint64_t N = 0;
  for (const auto &BB : Blocks)
    N += BB->Instrs.size();
  return N;
}

//===----------------------------------------------------------------------===//
// Printing
//===----------------------------------------------------------------------===//

static std::string regName(Reg R) {
  if (R == InvalidReg)
    return "<invalid>";
  return "%" + std::to_string(R);
}

static std::string printInstr(const IRFunction &F, const Instr &I) {
  std::string Out = "  ";
  if (I.definesReg())
    Out += regName(I.Dst) + " = ";
  Out += opcodeName(I.Op);
  Out += I.Ty == ValueType::Float ? ".f" : ".i";

  switch (I.Op) {
  case Opcode::ConstInt:
    Out += " " + std::to_string(I.IntImm);
    break;
  case Opcode::ConstFloat:
    Out += " " + formatDouble(I.FloatImm, 6);
    break;
  case Opcode::LoadVar:
  case Opcode::StoreVar:
  case Opcode::LoadElem:
  case Opcode::StoreElem:
    Out += " @" + F.variable(I.Var).Name;
    break;
  case Opcode::Send:
  case Opcode::Recv:
    Out += std::string(" ") + w2::channelName(I.Chan);
    break;
  case Opcode::Call:
    Out += " " + I.Callee;
    break;
  case Opcode::Br:
    Out += " bb" + std::to_string(I.Target0);
    break;
  case Opcode::CondBr:
    Out += " bb" + std::to_string(I.Target0) + ", bb" +
           std::to_string(I.Target1);
    break;
  default:
    break;
  }
  for (Reg R : I.Operands)
    Out += " " + regName(R);
  for (VarId V : I.ArrayArgs)
    Out += " @" + F.variable(V).Name;
  return Out;
}

std::string ir::printFunction(const IRFunction &F) {
  std::string Out = "function " + F.name() + " : " + F.returnType().str() +
                    " {\n";
  for (size_t V = 0; V != F.numVariables(); ++V) {
    const Variable &Var = F.variable(static_cast<VarId>(V));
    Out += "  var @" + Var.Name + " : " + Var.Ty.str() +
           (Var.IsParam ? " (param)\n" : "\n");
  }
  for (size_t B = 0; B != F.numBlocks(); ++B) {
    Out += "bb" + std::to_string(B) + ":\n";
    for (const Instr &I : F.block(static_cast<BlockId>(B))->Instrs) {
      Out += printInstr(F, I);
      Out += '\n';
    }
  }
  Out += "}\n";
  return Out;
}

//===----------------------------------------------------------------------===//
// Verification
//===----------------------------------------------------------------------===//

std::string ir::VerifierIssue::str(const IRFunction &F) const {
  std::string Out = "function '" + F.name() + "'";
  if (Block != InvalidBlock) {
    Out += " bb" + std::to_string(Block);
    if (InstrPos != ~0u)
      Out += "[" + std::to_string(InstrPos) + "]";
  }
  if (Loc.isValid())
    Out += " (" + Loc.str() + ")";
  return Out + ": " + Message;
}

namespace {

/// Exact operand arity and result-register expectations per opcode.
struct OpShape {
  uint32_t NumOperands;
  bool DefinesDst;
};

bool shapeOf(Opcode Op, OpShape &S) {
  switch (Op) {
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::Div:
  case Opcode::Rem:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::CmpEQ:
  case Opcode::CmpNE:
  case Opcode::CmpLT:
  case Opcode::CmpLE:
  case Opcode::CmpGT:
  case Opcode::CmpGE:
    S = {2, true};
    return true;
  case Opcode::Neg:
  case Opcode::Not:
  case Opcode::IntToFloat:
  case Opcode::Copy:
  case Opcode::Sqrt:
  case Opcode::Abs:
    S = {1, true};
    return true;
  case Opcode::ConstInt:
  case Opcode::ConstFloat:
  case Opcode::LoadVar:
  case Opcode::Recv:
    S = {0, true};
    return true;
  case Opcode::StoreVar:
  case Opcode::Send:
    S = {1, false};
    return true;
  case Opcode::LoadElem:
    S = {1, true};
    return true;
  case Opcode::StoreElem:
    S = {2, false};
    return true;
  case Opcode::Br:
    S = {0, false};
    return true;
  case Opcode::CondBr:
    S = {1, false};
    return true;
  // Variable arity: Call takes any number of scalar args, Ret an optional
  // value.
  case Opcode::Call:
  case Opcode::Ret:
    return false;
  }
  return false;
}

} // namespace

std::vector<VerifierIssue> ir::verifyFunctionIssues(const IRFunction &F) {
  std::vector<VerifierIssue> Issues;
  auto Report = [&](BlockId B, uint32_t Pos, SourceLoc Loc,
                    std::string Message) {
    Issues.push_back({std::move(Message), B, Pos, Loc});
  };

  if (F.numBlocks() == 0) {
    Report(InvalidBlock, ~0u, SourceLoc(), "has no blocks");
    return Issues;
  }

  // Pass 1: which registers have a definition anywhere (the IR is not
  // SSA, so multiple defs — induction registers — are legal).
  std::vector<bool> HasDef(F.numRegs(), false);
  for (size_t B = 0; B != F.numBlocks(); ++B)
    for (const Instr &I : F.block(static_cast<BlockId>(B))->Instrs)
      if (I.definesReg() && I.Dst < F.numRegs())
        HasDef[I.Dst] = true;

  for (size_t BI = 0; BI != F.numBlocks(); ++BI) {
    BlockId B = static_cast<BlockId>(BI);
    const BasicBlock *BB = F.block(B);
    if (BB->Instrs.empty()) {
      Report(B, ~0u, SourceLoc(), "block is empty");
      continue;
    }
    if (!isTerminator(BB->Instrs.back().Op))
      Report(B, static_cast<uint32_t>(BB->Instrs.size() - 1),
             BB->Instrs.back().Loc, "block does not end in a terminator");

    for (size_t PosI = 0; PosI != BB->Instrs.size(); ++PosI) {
      const Instr &I = BB->Instrs[PosI];
      uint32_t Pos = static_cast<uint32_t>(PosI);
      std::string Name = opcodeName(I.Op);
      if (isTerminator(I.Op) && PosI + 1 != BB->Instrs.size())
        Report(B, Pos, I.Loc, "terminator before the end of the block");

      for (Reg R : I.Operands) {
        if (R >= F.numRegs())
          Report(B, Pos, I.Loc,
                 Name + " uses unallocated register %" + std::to_string(R));
        else if (!HasDef[R])
          Report(B, Pos, I.Loc,
                 Name + " uses register %" + std::to_string(R) +
                     " which no instruction defines");
      }
      if (I.definesReg() && I.Dst >= F.numRegs())
        Report(B, Pos, I.Loc,
               Name + " defines unallocated register %" +
                   std::to_string(I.Dst));

      OpShape Shape;
      if (shapeOf(I.Op, Shape)) {
        if (I.Operands.size() != Shape.NumOperands)
          Report(B, Pos, I.Loc,
                 Name + " expects " + std::to_string(Shape.NumOperands) +
                     " operand(s), has " + std::to_string(I.Operands.size()));
        if (Shape.DefinesDst && !I.definesReg())
          Report(B, Pos, I.Loc, Name + " must define a result register");
        if (!Shape.DefinesDst && I.definesReg())
          Report(B, Pos, I.Loc, Name + " must not define a result register");
      } else if (I.Op == Opcode::Ret && I.Operands.size() > 1) {
        Report(B, Pos, I.Loc, "ret takes at most one operand");
      }

      switch (I.Op) {
      case Opcode::LoadVar:
      case Opcode::StoreVar:
      case Opcode::LoadElem:
      case Opcode::StoreElem:
        if (I.Var >= F.numVariables()) {
          Report(B, Pos, I.Loc, Name + " references unknown variable slot");
          break;
        }
        if ((I.Op == Opcode::LoadVar || I.Op == Opcode::StoreVar) &&
            F.variable(I.Var).Ty.isArray())
          Report(B, Pos, I.Loc,
                 Name + " addresses array variable '" +
                     F.variable(I.Var).Name + "' as a scalar");
        if ((I.Op == Opcode::LoadElem || I.Op == Opcode::StoreElem) &&
            !F.variable(I.Var).Ty.isArray())
          Report(B, Pos, I.Loc,
                 Name + " subscripts scalar variable '" +
                     F.variable(I.Var).Name + "'");
        break;
      case Opcode::Call:
        for (VarId A : I.ArrayArgs)
          if (A >= F.numVariables())
            Report(B, Pos, I.Loc, "call passes unknown variable slot");
        break;
      case Opcode::Br:
        if (I.Target0 >= F.numBlocks())
          Report(B, Pos, I.Loc, "branch to unknown block");
        break;
      case Opcode::CondBr:
        if (I.Target0 >= F.numBlocks() || I.Target1 >= F.numBlocks())
          Report(B, Pos, I.Loc, "branch to unknown block");
        break;
      default:
        break;
      }
    }
  }
  return Issues;
}

std::string ir::verifyFunction(const IRFunction &F) {
  std::vector<VerifierIssue> Issues = verifyFunctionIssues(F);
  return Issues.empty() ? std::string() : Issues.front().str(F);
}

uint64_t ir::countChannelOps(const IRFunction &F) {
  uint64_t N = 0;
  for (size_t B = 0; B != F.numBlocks(); ++B)
    for (const Instr &I : F.block(static_cast<BlockId>(B))->Instrs)
      if (I.Op == Opcode::Send || I.Op == Opcode::Recv)
        ++N;
  return N;
}
