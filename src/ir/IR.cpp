//===- IR.cpp - Flowgraph intermediate representation ---------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/IR.h"

#include "support/StringUtils.h"

#include <cassert>

using namespace warpc;
using namespace warpc::ir;

const char *ir::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::Add:
    return "add";
  case Opcode::Sub:
    return "sub";
  case Opcode::Mul:
    return "mul";
  case Opcode::Div:
    return "div";
  case Opcode::Rem:
    return "rem";
  case Opcode::Neg:
    return "neg";
  case Opcode::And:
    return "and";
  case Opcode::Or:
    return "or";
  case Opcode::Not:
    return "not";
  case Opcode::CmpEQ:
    return "cmpeq";
  case Opcode::CmpNE:
    return "cmpne";
  case Opcode::CmpLT:
    return "cmplt";
  case Opcode::CmpLE:
    return "cmple";
  case Opcode::CmpGT:
    return "cmpgt";
  case Opcode::CmpGE:
    return "cmpge";
  case Opcode::IntToFloat:
    return "itof";
  case Opcode::ConstInt:
    return "iconst";
  case Opcode::ConstFloat:
    return "fconst";
  case Opcode::Copy:
    return "copy";
  case Opcode::LoadVar:
    return "ldvar";
  case Opcode::StoreVar:
    return "stvar";
  case Opcode::LoadElem:
    return "ldelem";
  case Opcode::StoreElem:
    return "stelem";
  case Opcode::Send:
    return "send";
  case Opcode::Recv:
    return "recv";
  case Opcode::Call:
    return "call";
  case Opcode::Sqrt:
    return "sqrt";
  case Opcode::Abs:
    return "abs";
  case Opcode::Br:
    return "br";
  case Opcode::CondBr:
    return "cbr";
  case Opcode::Ret:
    return "ret";
  }
  return "?";
}

bool ir::isTerminator(Opcode Op) {
  return Op == Opcode::Br || Op == Opcode::CondBr || Op == Opcode::Ret;
}

std::vector<BlockId> BasicBlock::successors() const {
  const Instr *Term = terminator();
  if (!Term)
    return {};
  switch (Term->Op) {
  case Opcode::Br:
    return {Term->Target0};
  case Opcode::CondBr:
    return {Term->Target0, Term->Target1};
  default:
    return {};
  }
}

BasicBlock *IRFunction::createBlock() {
  Blocks.push_back(
      std::make_unique<BasicBlock>(static_cast<BlockId>(Blocks.size())));
  return Blocks.back().get();
}

VarId IRFunction::addVariable(Variable V) {
  Variables.push_back(std::move(V));
  return static_cast<VarId>(Variables.size() - 1);
}

std::vector<std::vector<BlockId>> IRFunction::computePredecessors() const {
  std::vector<std::vector<BlockId>> Preds(Blocks.size());
  for (const auto &BB : Blocks)
    for (BlockId Succ : BB->successors())
      Preds[Succ].push_back(BB->id());
  return Preds;
}

uint64_t IRFunction::instructionCount() const {
  uint64_t N = 0;
  for (const auto &BB : Blocks)
    N += BB->Instrs.size();
  return N;
}

//===----------------------------------------------------------------------===//
// Printing
//===----------------------------------------------------------------------===//

static std::string regName(Reg R) {
  if (R == InvalidReg)
    return "<invalid>";
  return "%" + std::to_string(R);
}

static std::string printInstr(const IRFunction &F, const Instr &I) {
  std::string Out = "  ";
  if (I.definesReg())
    Out += regName(I.Dst) + " = ";
  Out += opcodeName(I.Op);
  Out += I.Ty == ValueType::Float ? ".f" : ".i";

  switch (I.Op) {
  case Opcode::ConstInt:
    Out += " " + std::to_string(I.IntImm);
    break;
  case Opcode::ConstFloat:
    Out += " " + formatDouble(I.FloatImm, 6);
    break;
  case Opcode::LoadVar:
  case Opcode::StoreVar:
  case Opcode::LoadElem:
  case Opcode::StoreElem:
    Out += " @" + F.variable(I.Var).Name;
    break;
  case Opcode::Send:
  case Opcode::Recv:
    Out += std::string(" ") + w2::channelName(I.Chan);
    break;
  case Opcode::Call:
    Out += " " + I.Callee;
    break;
  case Opcode::Br:
    Out += " bb" + std::to_string(I.Target0);
    break;
  case Opcode::CondBr:
    Out += " bb" + std::to_string(I.Target0) + ", bb" +
           std::to_string(I.Target1);
    break;
  default:
    break;
  }
  for (Reg R : I.Operands)
    Out += " " + regName(R);
  for (VarId V : I.ArrayArgs)
    Out += " @" + F.variable(V).Name;
  return Out;
}

std::string ir::printFunction(const IRFunction &F) {
  std::string Out = "function " + F.name() + " : " + F.returnType().str() +
                    " {\n";
  for (size_t V = 0; V != F.numVariables(); ++V) {
    const Variable &Var = F.variable(static_cast<VarId>(V));
    Out += "  var @" + Var.Name + " : " + Var.Ty.str() +
           (Var.IsParam ? " (param)\n" : "\n");
  }
  for (size_t B = 0; B != F.numBlocks(); ++B) {
    Out += "bb" + std::to_string(B) + ":\n";
    for (const Instr &I : F.block(static_cast<BlockId>(B))->Instrs) {
      Out += printInstr(F, I);
      Out += '\n';
    }
  }
  Out += "}\n";
  return Out;
}

//===----------------------------------------------------------------------===//
// Verification
//===----------------------------------------------------------------------===//

std::string ir::verifyFunction(const IRFunction &F) {
  if (F.numBlocks() == 0)
    return "function '" + F.name() + "' has no blocks";

  for (size_t B = 0; B != F.numBlocks(); ++B) {
    const BasicBlock *BB = F.block(static_cast<BlockId>(B));
    std::string Where =
        "function '" + F.name() + "' block bb" + std::to_string(B);
    if (BB->Instrs.empty())
      return Where + " is empty";
    if (!isTerminator(BB->Instrs.back().Op))
      return Where + " does not end in a terminator";
    for (size_t Pos = 0; Pos != BB->Instrs.size(); ++Pos) {
      const Instr &I = BB->Instrs[Pos];
      if (isTerminator(I.Op) && Pos + 1 != BB->Instrs.size())
        return Where + " has a terminator before the end";
      for (Reg R : I.Operands)
        if (R >= F.numRegs())
          return Where + " uses unallocated register %" + std::to_string(R);
      if (I.definesReg() && I.Dst >= F.numRegs())
        return Where + " defines unallocated register %" +
               std::to_string(I.Dst);
      switch (I.Op) {
      case Opcode::LoadVar:
      case Opcode::StoreVar:
      case Opcode::LoadElem:
      case Opcode::StoreElem:
        if (I.Var >= F.numVariables())
          return Where + " references unknown variable slot";
        break;
      case Opcode::Br:
        if (I.Target0 >= F.numBlocks())
          return Where + " branches to unknown block";
        break;
      case Opcode::CondBr:
        if (I.Target0 >= F.numBlocks() || I.Target1 >= F.numBlocks())
          return Where + " branches to unknown block";
        if (I.Operands.size() != 1)
          return Where + " conditional branch needs one condition operand";
        break;
      default:
        break;
      }
    }
  }
  return "";
}
