//===- IRBuilder.h - AST to IR lowering -------------------------*- C++ -*-===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers a semantically checked W2 function into flowgraph IR. This is
/// the entry of compiler phase 2 and runs inside a function master during
/// parallel compilation: lowering one function never needs another
/// function's body, only the signatures Sema already checked.
///
//===----------------------------------------------------------------------===//

#ifndef WARPC_IR_IRBUILDER_H
#define WARPC_IR_IRBUILDER_H

#include "ir/IR.h"
#include "w2/AST.h"

#include <memory>

namespace warpc {
namespace ir {

/// Lowers \p F to IR. \p F must have passed Sema (every expression typed,
/// casts explicit); lowering asserts on malformed input rather than
/// diagnosing it.
std::unique_ptr<IRFunction> lowerFunction(const w2::FunctionDecl &F);

} // namespace ir
} // namespace warpc

#endif // WARPC_IR_IRBUILDER_H
