//===- IRBuilder.cpp - AST to IR lowering ---------------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/IRBuilder.h"

#include "support/Casting.h"

#include <cassert>
#include <map>
#include <vector>

using namespace warpc;
using namespace warpc::ir;
using namespace warpc::w2;

namespace {

/// Lowers one function body. Scalar variables live in memory slots; loop
/// induction variables live in a dedicated virtual register so that the
/// increment forms an explicit recurrence for the software pipeliner.
class Builder {
public:
  explicit Builder(const FunctionDecl &F)
      : F(F), IRF(std::make_unique<IRFunction>(F.getName(),
                                               F.getReturnType())) {}

  std::unique_ptr<IRFunction> run() {
    Cur = IRF->createBlock();
    pushScope();
    for (const ParamDecl &P : F.params()) {
      VarId Id = IRF->addVariable(Variable{P.Name, P.Ty, /*IsParam=*/true});
      bindVar(P.Name, Id, P.Ty);
    }
    lowerStmt(F.getBody());
    popScope();
    ensureTerminated();
    return std::move(IRF);
  }

private:
  //===--------------------------------------------------------------------===//
  // Bindings and scopes
  //===--------------------------------------------------------------------===//

  struct Binding {
    bool InReg = false;
    Reg R = InvalidReg;
    VarId V = 0;
    w2::Type Ty;
  };

  void pushScope() { Scopes.emplace_back(); }
  void popScope() { Scopes.pop_back(); }

  void bindVar(const std::string &Name, VarId V, w2::Type Ty) {
    Scopes.back()[Name] = Binding{false, InvalidReg, V, Ty};
  }
  void bindReg(const std::string &Name, Reg R, w2::Type Ty) {
    Scopes.back()[Name] = Binding{true, R, 0, Ty};
  }

  const Binding &lookup(const std::string &Name) const {
    for (auto It = Scopes.rbegin(), E = Scopes.rend(); It != E; ++It) {
      auto Found = It->find(Name);
      if (Found != It->end())
        return Found->second;
    }
    assert(false && "Sema guarantees all names resolve");
    static Binding Dummy;
    return Dummy;
  }

  //===--------------------------------------------------------------------===//
  // Emission helpers
  //===--------------------------------------------------------------------===//

  Instr &emit(Instr I) {
    // After a return the insert point is cleared; any trailing statements
    // are unreachable and get a fresh block lazily so reachable code never
    // carries empty dead blocks.
    if (!Cur)
      Cur = IRF->createBlock();
    Cur->Instrs.push_back(std::move(I));
    return Cur->Instrs.back();
  }

  static ValueType valueTypeOf(w2::Type Ty) {
    assert(Ty.isScalarNumeric() && "value type of non-scalar");
    return Ty.isInt() ? ValueType::Int : ValueType::Float;
  }

  Reg emitConstInt(int64_t Value, SourceLoc Loc) {
    Instr I;
    I.Op = Opcode::ConstInt;
    I.Ty = ValueType::Int;
    I.Dst = IRF->newReg();
    I.IntImm = Value;
    I.Loc = Loc;
    return emit(std::move(I)).Dst;
  }

  Reg emitConstFloat(double Value, SourceLoc Loc) {
    Instr I;
    I.Op = Opcode::ConstFloat;
    I.Ty = ValueType::Float;
    I.Dst = IRF->newReg();
    I.FloatImm = Value;
    I.Loc = Loc;
    return emit(std::move(I)).Dst;
  }

  /// Emits a register-defining instruction with the given operands.
  Reg emitDef(Opcode Op, ValueType Ty, std::vector<Reg> Operands,
              SourceLoc Loc) {
    Instr I;
    I.Op = Op;
    I.Ty = Ty;
    I.Dst = IRF->newReg();
    I.Operands = std::move(Operands);
    I.Loc = Loc;
    return emit(std::move(I)).Dst;
  }

  void emitBr(BlockId Target, SourceLoc Loc) {
    Instr I;
    I.Op = Opcode::Br;
    I.Target0 = Target;
    I.Loc = Loc;
    emit(std::move(I));
  }

  void emitCondBr(Reg Cond, BlockId TrueB, BlockId FalseB, SourceLoc Loc) {
    Instr I;
    I.Op = Opcode::CondBr;
    I.Operands = {Cond};
    I.Target0 = TrueB;
    I.Target1 = FalseB;
    I.Loc = Loc;
    emit(std::move(I));
  }

  /// If the current block has no terminator, emit a function-exit return.
  void ensureTerminated() {
    if (!Cur || Cur->terminator())
      return;
    Instr I;
    I.Op = Opcode::Ret;
    if (!F.getReturnType().isVoid()) {
      // Sema guarantees a value return exists on some path; paths that fall
      // off the end return zero, matching the 1989 compiler's behavior.
      Reg Zero = F.getReturnType().isInt()
                     ? emitConstInt(0, F.getEndLoc())
                     : emitConstFloat(0.0, F.getEndLoc());
      I.Operands = {Zero};
      I.Ty = valueTypeOf(F.getReturnType());
    }
    I.Loc = F.getEndLoc();
    emit(std::move(I));
  }

  /// Starts emitting into \p BB.
  void setInsertPoint(BasicBlock *BB) { Cur = BB; }

  //===--------------------------------------------------------------------===//
  // Expressions
  //===--------------------------------------------------------------------===//

  Reg lowerExpr(const Expr *E) {
    switch (E->getKind()) {
    case Expr::Kind::IntLit:
      return emitConstInt(cast<IntLitExpr>(E)->getValue(), E->getLoc());
    case Expr::Kind::FloatLit:
      return emitConstFloat(cast<FloatLitExpr>(E)->getValue(), E->getLoc());
    case Expr::Kind::VarRef: {
      const auto *Ref = cast<VarRefExpr>(E);
      const Binding &B = lookup(Ref->getName());
      if (B.InReg)
        return B.R;
      assert(!B.Ty.isArray() && "whole-array reference in scalar context");
      Instr I;
      I.Op = Opcode::LoadVar;
      I.Ty = valueTypeOf(B.Ty);
      I.Dst = IRF->newReg();
      I.Var = B.V;
      I.Loc = E->getLoc();
      return emit(std::move(I)).Dst;
    }
    case Expr::Kind::Index: {
      const auto *Idx = cast<IndexExpr>(E);
      const Binding &B = lookup(Idx->getBaseName());
      Reg Index = lowerExpr(Idx->getIndex());
      Instr I;
      I.Op = Opcode::LoadElem;
      I.Ty = valueTypeOf(B.Ty.elementType());
      I.Dst = IRF->newReg();
      I.Var = B.V;
      I.Operands = {Index};
      I.Loc = E->getLoc();
      return emit(std::move(I)).Dst;
    }
    case Expr::Kind::Unary: {
      const auto *U = cast<UnaryExpr>(E);
      Reg Operand = lowerExpr(U->getOperand());
      Opcode Op = U->getOp() == UnaryOp::Neg ? Opcode::Neg : Opcode::Not;
      return emitDef(Op, valueTypeOf(U->getType()), {Operand}, E->getLoc());
    }
    case Expr::Kind::Binary:
      return lowerBinary(cast<BinaryExpr>(E));
    case Expr::Kind::Call:
      return lowerCall(cast<CallExpr>(E));
    case Expr::Kind::Cast: {
      Reg Operand = lowerExpr(cast<CastExpr>(E)->getOperand());
      return emitDef(Opcode::IntToFloat, ValueType::Float, {Operand},
                     E->getLoc());
    }
    }
    assert(false && "unhandled expression kind");
    return InvalidReg;
  }

  Reg lowerBinary(const BinaryExpr *B) {
    Reg L = lowerExpr(B->getLHS());
    Reg R = lowerExpr(B->getRHS());
    // Comparisons carry the operand type so the scheduler can pick the
    // right functional unit; the result is always an int.
    ValueType OperandTy = valueTypeOf(B->getLHS()->getType());
    ValueType ResultTy = valueTypeOf(B->getType());

    Opcode Op = Opcode::Add;
    ValueType Ty = ResultTy;
    switch (B->getOp()) {
    case BinaryOp::Add:
      Op = Opcode::Add;
      break;
    case BinaryOp::Sub:
      Op = Opcode::Sub;
      break;
    case BinaryOp::Mul:
      Op = Opcode::Mul;
      break;
    case BinaryOp::Div:
      Op = Opcode::Div;
      break;
    case BinaryOp::Rem:
      Op = Opcode::Rem;
      break;
    case BinaryOp::LAnd:
      Op = Opcode::And;
      break;
    case BinaryOp::LOr:
      Op = Opcode::Or;
      break;
    case BinaryOp::EQ:
      Op = Opcode::CmpEQ;
      Ty = OperandTy;
      break;
    case BinaryOp::NE:
      Op = Opcode::CmpNE;
      Ty = OperandTy;
      break;
    case BinaryOp::LT:
      Op = Opcode::CmpLT;
      Ty = OperandTy;
      break;
    case BinaryOp::LE:
      Op = Opcode::CmpLE;
      Ty = OperandTy;
      break;
    case BinaryOp::GT:
      Op = Opcode::CmpGT;
      Ty = OperandTy;
      break;
    case BinaryOp::GE:
      Op = Opcode::CmpGE;
      Ty = OperandTy;
      break;
    }
    return emitDef(Op, Ty, {L, R}, B->getLoc());
  }

  Reg lowerCall(const CallExpr *C) {
    // Intrinsics lower to dedicated opcodes.
    if (C->getCallee() == "sqrt" || C->getCallee() == "abs") {
      Reg Arg = lowerExpr(C->getArg(0));
      Opcode Op = C->getCallee() == "sqrt" ? Opcode::Sqrt : Opcode::Abs;
      return emitDef(Op, ValueType::Float, {Arg}, C->getLoc());
    }

    Instr I;
    I.Op = Opcode::Call;
    I.Callee = C->getCallee();
    I.Loc = C->getLoc();
    for (size_t A = 0, N = C->getNumArgs(); A != N; ++A) {
      const Expr *Arg = C->getArg(A);
      if (const auto *Ref = dyn_cast<VarRefExpr>(Arg)) {
        const Binding &B = lookup(Ref->getName());
        if (B.Ty.isArray()) {
          I.ArrayArgs.push_back(B.V);
          continue;
        }
      }
      I.Operands.push_back(lowerExpr(Arg));
    }
    if (!C->getType().isVoid()) {
      I.Dst = IRF->newReg();
      I.Ty = valueTypeOf(C->getType());
    }
    return emit(std::move(I)).Dst;
  }

  //===--------------------------------------------------------------------===//
  // Statements
  //===--------------------------------------------------------------------===//

  void lowerStmt(const Stmt *S) {
    switch (S->getKind()) {
    case Stmt::Kind::Block: {
      const auto *B = cast<BlockStmt>(S);
      pushScope();
      for (const StmtPtr &Child : B->stmts())
        lowerStmt(Child.get());
      popScope();
      return;
    }
    case Stmt::Kind::Decl: {
      const VarDecl *D = cast<DeclStmt>(S)->getDecl();
      VarId Id = IRF->addVariable(
          Variable{D->getName(), D->getType(), /*IsParam=*/false});
      bindVar(D->getName(), Id, D->getType());
      if (D->getInit()) {
        Reg Value = lowerExpr(D->getInit());
        Instr I;
        I.Op = Opcode::StoreVar;
        I.Ty = valueTypeOf(D->getType());
        I.Var = Id;
        I.Operands = {Value};
        I.Loc = D->getLoc();
        emit(std::move(I));
      }
      return;
    }
    case Stmt::Kind::Assign: {
      const auto *A = cast<AssignStmt>(S);
      Reg Value = lowerExpr(A->getValue());
      storeTo(A->getTarget(), Value, A->getLoc());
      return;
    }
    case Stmt::Kind::If:
      lowerIf(cast<IfStmt>(S));
      return;
    case Stmt::Kind::For:
      lowerFor(cast<ForStmt>(S));
      return;
    case Stmt::Kind::While:
      lowerWhile(cast<WhileStmt>(S));
      return;
    case Stmt::Kind::Return: {
      const auto *R = cast<ReturnStmt>(S);
      Instr I;
      I.Op = Opcode::Ret;
      if (R->getValue()) {
        I.Operands = {lowerExpr(R->getValue())};
        I.Ty = valueTypeOf(R->getValue()->getType());
      }
      I.Loc = R->getLoc();
      emit(std::move(I));
      // Trailing statements are unreachable; clear the insert point so a
      // block is only created if they exist.
      setInsertPoint(nullptr);
      return;
    }
    case Stmt::Kind::Send: {
      const auto *Send = cast<SendStmt>(S);
      Reg Value = lowerExpr(Send->getValue());
      Instr I;
      I.Op = Opcode::Send;
      I.Ty = ValueType::Float;
      I.Chan = Send->getChannel();
      I.Operands = {Value};
      I.Loc = Send->getLoc();
      emit(std::move(I));
      return;
    }
    case Stmt::Kind::Receive: {
      const auto *Recv = cast<ReceiveStmt>(S);
      Instr I;
      I.Op = Opcode::Recv;
      I.Ty = ValueType::Float;
      I.Chan = Recv->getChannel();
      I.Dst = IRF->newReg();
      I.Loc = Recv->getLoc();
      Reg Value = emit(std::move(I)).Dst;
      storeTo(Recv->getTarget(), Value, Recv->getLoc());
      return;
    }
    case Stmt::Kind::ExprStmt:
      lowerExpr(cast<ExprStmt>(S)->getExpr());
      return;
    }
  }

  void storeTo(const Expr *Target, Reg Value, SourceLoc Loc) {
    if (const auto *Ref = dyn_cast<VarRefExpr>(Target)) {
      const Binding &B = lookup(Ref->getName());
      assert(!B.InReg && "Sema rejects assignment to induction variables");
      Instr I;
      I.Op = Opcode::StoreVar;
      I.Ty = valueTypeOf(B.Ty);
      I.Var = B.V;
      I.Operands = {Value};
      I.Loc = Loc;
      emit(std::move(I));
      return;
    }
    const auto *Idx = cast<IndexExpr>(Target);
    const Binding &B = lookup(Idx->getBaseName());
    Reg Index = lowerExpr(Idx->getIndex());
    Instr I;
    I.Op = Opcode::StoreElem;
    I.Ty = valueTypeOf(B.Ty.elementType());
    I.Var = B.V;
    I.Operands = {Index, Value};
    I.Loc = Loc;
    emit(std::move(I));
  }

  void lowerIf(const IfStmt *S) {
    Reg Cond = lowerExpr(S->getCond());
    BasicBlock *ThenB = IRF->createBlock();
    BasicBlock *ElseB = S->getElse() ? IRF->createBlock() : nullptr;
    BasicBlock *MergeB = IRF->createBlock();
    emitCondBr(Cond, ThenB->id(), ElseB ? ElseB->id() : MergeB->id(),
               S->getLoc());

    setInsertPoint(ThenB);
    lowerStmt(S->getThen());
    if (Cur && !Cur->terminator())
      emitBr(MergeB->id(), S->getLoc());

    if (ElseB) {
      setInsertPoint(ElseB);
      lowerStmt(S->getElse());
      if (Cur && !Cur->terminator())
        emitBr(MergeB->id(), S->getLoc());
    }
    setInsertPoint(MergeB);
  }

  void lowerFor(const ForStmt *S) {
    SourceLoc Loc = S->getLoc();
    Reg Lo = lowerExpr(S->getLo());
    Reg Hi = lowerExpr(S->getHi());
    Reg Step = emitConstInt(S->getStep(), Loc);
    // The induction variable is a fixed register updated in the latch; the
    // Copy below and the Add in the latch define the same register, forming
    // the recurrence the modulo scheduler uses for RecMII.
    Reg Ind = IRF->newReg();
    {
      Instr I;
      I.Op = Opcode::Copy;
      I.Ty = ValueType::Int;
      I.Dst = Ind;
      I.Operands = {Lo};
      I.Loc = Loc;
      emit(std::move(I));
    }

    BasicBlock *Header = IRF->createBlock();
    BasicBlock *Body = IRF->createBlock();
    BasicBlock *Exit = IRF->createBlock();
    emitBr(Header->id(), Loc);

    setInsertPoint(Header);
    Opcode CmpOp = S->getStep() > 0 ? Opcode::CmpLE : Opcode::CmpGE;
    Reg Cond = emitDef(CmpOp, ValueType::Int, {Ind, Hi}, Loc);
    emitCondBr(Cond, Body->id(), Exit->id(), Loc);

    setInsertPoint(Body);
    pushScope();
    bindReg(S->getIndVar(), Ind, w2::Type::intTy());
    lowerStmt(S->getBody());
    popScope();
    if (Cur && !Cur->terminator()) {
      // Latch: advance the induction register and loop back.
      Instr I;
      I.Op = Opcode::Add;
      I.Ty = ValueType::Int;
      I.Dst = Ind;
      I.Operands = {Ind, Step};
      I.Loc = Loc;
      emit(std::move(I));
      emitBr(Header->id(), Loc);
    }
    setInsertPoint(Exit);
  }

  void lowerWhile(const WhileStmt *S) {
    SourceLoc Loc = S->getLoc();
    BasicBlock *Header = IRF->createBlock();
    BasicBlock *Body = IRF->createBlock();
    BasicBlock *Exit = IRF->createBlock();
    emitBr(Header->id(), Loc);

    setInsertPoint(Header);
    Reg Cond = lowerExpr(S->getCond());
    emitCondBr(Cond, Body->id(), Exit->id(), Loc);

    setInsertPoint(Body);
    lowerStmt(S->getBody());
    if (Cur && !Cur->terminator())
      emitBr(Header->id(), Loc);
    setInsertPoint(Exit);
  }

  const FunctionDecl &F;
  std::unique_ptr<IRFunction> IRF;
  BasicBlock *Cur = nullptr;
  std::vector<std::map<std::string, Binding>> Scopes;
};

} // namespace

std::unique_ptr<IRFunction> ir::lowerFunction(const FunctionDecl &F) {
  Builder B(F);
  return B.run();
}
