//===- Interpreter.cpp - Flowgraph IR interpreter ---------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/Interpreter.h"

#include <cassert>
#include <cmath>
#include <deque>

using namespace warpc;
using namespace warpc::ir;

namespace {

/// Execution state of one function activation.
class Machine {
public:
  Machine(const IRFunction &F, const ExecInput &Input,
          const CallHandler *Calls)
      : F(F), Input(Input), Calls(Calls) {
    Regs.resize(F.numRegs());
    Scalars.resize(F.numVariables());
    Arrays.resize(F.numVariables());
    XQueue.assign(Input.XInput.begin(), Input.XInput.end());
    YQueue.assign(Input.YInput.begin(), Input.YInput.end());
  }

  ExecResult run() {
    if (!bindParameters())
      return Result;
    BlockId Block = 0;
    uint32_t Pos = 0;
    while (Result.StepsExecuted < Input.StepBudget) {
      const BasicBlock *BB = F.block(Block);
      if (Pos >= BB->Instrs.size())
        return fault("fell off the end of bb" + std::to_string(Block));
      const Instr &I = BB->Instrs[Pos];
      ++Result.StepsExecuted;

      switch (I.Op) {
      case Opcode::Br:
        Block = I.Target0;
        Pos = 0;
        continue;
      case Opcode::CondBr: {
        RuntimeValue Cond = Regs[I.Operands[0]];
        Block = Cond.asInt() != 0 ? I.Target0 : I.Target1;
        Pos = 0;
        continue;
      }
      case Opcode::Ret:
        if (!I.Operands.empty()) {
          Result.HasReturn = true;
          Result.Return = Regs[I.Operands[0]];
        }
        finish();
        Result.Completed = true;
        return Result;
      default:
        if (!execute(I))
          return Result;
        ++Pos;
        continue;
      }
    }
    return fault("step budget exhausted");
  }

private:
  ExecResult fault(std::string Message) {
    Result.Completed = false;
    Result.Fault = std::move(Message);
    return Result;
  }

  /// Copies array parameters out so callers can observe mutations.
  void finish() {
    for (size_t P = 0; P != Input.Args.size(); ++P) {
      if (Input.Args[P].IsArray)
        Result.FinalArrays.push_back(Arrays[P]);
      else
        Result.FinalArrays.emplace_back();
    }
  }

  bool bindParameters() {
    // Parameters occupy the first variable slots, in declaration order.
    size_t NumParams = 0;
    for (size_t V = 0; V != F.numVariables(); ++V)
      NumParams += F.variable(static_cast<VarId>(V)).IsParam;
    if (Input.Args.size() != NumParams) {
      fault("argument count mismatch");
      return false;
    }
    for (size_t P = 0; P != NumParams; ++P) {
      const Variable &Var = F.variable(static_cast<VarId>(P));
      const ExecInput::Arg &Arg = Input.Args[P];
      if (Var.Ty.isArray() != Arg.IsArray) {
        fault("argument kind mismatch for '" + Var.Name + "'");
        return false;
      }
      if (Arg.IsArray) {
        Arrays[P] = Arg.Array;
        Arrays[P].resize(Var.Ty.arraySize(), 0.0);
      } else {
        Scalars[P] = Arg.Scalar;
      }
    }
    // Locals: zero-initialize (stores happen before loads in well-formed
    // programs, but the interpreter must not read indeterminate data).
    for (size_t V = NumParams; V != F.numVariables(); ++V) {
      const Variable &Var = F.variable(static_cast<VarId>(V));
      if (Var.Ty.isArray())
        Arrays[V].assign(Var.Ty.arraySize(), 0.0);
      else
        Scalars[V] = Var.Ty.isFloat() ? RuntimeValue::ofFloat(0)
                                      : RuntimeValue::ofInt(0);
    }
    return true;
  }

  RuntimeValue arith(const Instr &I, bool &Ok) {
    bool FloatOp = I.Ty == ValueType::Float;
    auto L = [&](size_t K) { return Regs[I.Operands[K]].asFloat(); };
    auto Li = [&](size_t K) { return Regs[I.Operands[K]].asInt(); };
    Ok = true;
    switch (I.Op) {
    case Opcode::Add:
      return FloatOp ? RuntimeValue::ofFloat(L(0) + L(1))
                     : RuntimeValue::ofInt(Li(0) + Li(1));
    case Opcode::Sub:
      return FloatOp ? RuntimeValue::ofFloat(L(0) - L(1))
                     : RuntimeValue::ofInt(Li(0) - Li(1));
    case Opcode::Mul:
      return FloatOp ? RuntimeValue::ofFloat(L(0) * L(1))
                     : RuntimeValue::ofInt(Li(0) * Li(1));
    case Opcode::Div:
      if (FloatOp) {
        if (L(1) == 0) {
          Ok = false;
          return RuntimeValue();
        }
        return RuntimeValue::ofFloat(L(0) / L(1));
      }
      if (Li(1) == 0) {
        Ok = false;
        return RuntimeValue();
      }
      return RuntimeValue::ofInt(Li(0) / Li(1));
    case Opcode::Rem:
      if (Li(1) == 0) {
        Ok = false;
        return RuntimeValue();
      }
      return RuntimeValue::ofInt(Li(0) % Li(1));
    case Opcode::Neg:
      return FloatOp ? RuntimeValue::ofFloat(-L(0))
                     : RuntimeValue::ofInt(-Li(0));
    case Opcode::And:
      return RuntimeValue::ofInt((Li(0) != 0 && Li(1) != 0) ? 1 : 0);
    case Opcode::Or:
      return RuntimeValue::ofInt((Li(0) != 0 || Li(1) != 0) ? 1 : 0);
    case Opcode::Not:
      return RuntimeValue::ofInt(Li(0) == 0 ? 1 : 0);
    case Opcode::CmpEQ:
      return RuntimeValue::ofInt(FloatOp ? L(0) == L(1) : Li(0) == Li(1));
    case Opcode::CmpNE:
      return RuntimeValue::ofInt(FloatOp ? L(0) != L(1) : Li(0) != Li(1));
    case Opcode::CmpLT:
      return RuntimeValue::ofInt(FloatOp ? L(0) < L(1) : Li(0) < Li(1));
    case Opcode::CmpLE:
      return RuntimeValue::ofInt(FloatOp ? L(0) <= L(1) : Li(0) <= Li(1));
    case Opcode::CmpGT:
      return RuntimeValue::ofInt(FloatOp ? L(0) > L(1) : Li(0) > Li(1));
    case Opcode::CmpGE:
      return RuntimeValue::ofInt(FloatOp ? L(0) >= L(1) : Li(0) >= Li(1));
    case Opcode::IntToFloat:
      return RuntimeValue::ofFloat(static_cast<double>(Li(0)));
    case Opcode::Sqrt:
      // The cell's sqrt operates on the magnitude (no trap path on Warp).
      return RuntimeValue::ofFloat(std::sqrt(std::fabs(L(0))));
    case Opcode::Abs:
      return RuntimeValue::ofFloat(std::fabs(L(0)));
    default:
      Ok = false;
      return RuntimeValue();
    }
  }

  /// Executes one non-terminator instruction. Returns false on fault.
  bool execute(const Instr &I) {
    switch (I.Op) {
    case Opcode::ConstInt:
      Regs[I.Dst] = RuntimeValue::ofInt(I.IntImm);
      return true;
    case Opcode::ConstFloat:
      Regs[I.Dst] = RuntimeValue::ofFloat(I.FloatImm);
      return true;
    case Opcode::Copy:
      Regs[I.Dst] = Regs[I.Operands[0]];
      return true;
    case Opcode::LoadVar:
      Regs[I.Dst] = Scalars[I.Var];
      return true;
    case Opcode::StoreVar:
      Scalars[I.Var] = Regs[I.Operands[0]];
      // Keep the stored representation faithful to the variable's type.
      if (F.variable(I.Var).Ty.isFloat() && !Scalars[I.Var].IsFloat)
        Scalars[I.Var] = RuntimeValue::ofFloat(Scalars[I.Var].asFloat());
      return true;
    case Opcode::LoadElem: {
      int64_t Index = Regs[I.Operands[0]].asInt();
      auto &Array = Arrays[I.Var];
      if (Index < 0 || static_cast<size_t>(Index) >= Array.size()) {
        fault("array index out of bounds");
        return false;
      }
      double V = Array[static_cast<size_t>(Index)];
      Regs[I.Dst] = I.Ty == ValueType::Float
                        ? RuntimeValue::ofFloat(V)
                        : RuntimeValue::ofInt(static_cast<int64_t>(V));
      return true;
    }
    case Opcode::StoreElem: {
      int64_t Index = Regs[I.Operands[0]].asInt();
      auto &Array = Arrays[I.Var];
      if (Index < 0 || static_cast<size_t>(Index) >= Array.size()) {
        fault("array index out of bounds");
        return false;
      }
      Array[static_cast<size_t>(Index)] = Regs[I.Operands[1]].asFloat();
      return true;
    }
    case Opcode::Send: {
      double V = Regs[I.Operands[0]].asFloat();
      (I.Chan == w2::Channel::X ? Result.XOutput : Result.YOutput)
          .push_back(V);
      return true;
    }
    case Opcode::Recv: {
      auto &Queue = I.Chan == w2::Channel::X ? XQueue : YQueue;
      if (Queue.empty()) {
        fault("receive on an empty channel");
        return false;
      }
      Regs[I.Dst] = RuntimeValue::ofFloat(Queue.front());
      Queue.pop_front();
      return true;
    }
    case Opcode::Call: {
      if (!Calls) {
        fault("call to '" + I.Callee + "' without a call handler");
        return false;
      }
      std::vector<RuntimeValue> ScalarArgs;
      for (Reg R : I.Operands)
        ScalarArgs.push_back(Regs[R]);
      std::vector<std::vector<double> *> ArrayArgs;
      for (VarId V : I.ArrayArgs)
        ArrayArgs.push_back(&Arrays[V]);
      bool Ok = true;
      RuntimeValue R = (*Calls)(I.Callee, ScalarArgs, ArrayArgs, Ok);
      if (!Ok) {
        fault("call to '" + I.Callee + "' faulted");
        return false;
      }
      if (I.definesReg())
        Regs[I.Dst] = R;
      return true;
    }
    default: {
      bool Ok = true;
      RuntimeValue R = arith(I, Ok);
      if (!Ok) {
        fault(std::string("arithmetic fault in ") + opcodeName(I.Op));
        return false;
      }
      assert(I.definesReg() && "arithmetic must define a register");
      Regs[I.Dst] = R;
      return true;
    }
    }
  }

  const IRFunction &F;
  const ExecInput &Input;
  const CallHandler *Calls;
  ExecResult Result;
  std::vector<RuntimeValue> Regs;
  std::vector<RuntimeValue> Scalars;
  std::vector<std::vector<double>> Arrays;
  std::deque<double> XQueue, YQueue;
};

} // namespace

ExecResult ir::interpret(const IRFunction &F, const ExecInput &Input,
                         const CallHandler *Calls) {
  Machine M(F, Input, Calls);
  return M.run();
}
