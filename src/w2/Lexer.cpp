//===- Lexer.cpp - W2 lexer -----------------------------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "w2/Lexer.h"

#include <cassert>
#include <cctype>

using namespace warpc;
using namespace warpc::w2;

const char *w2::tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::Eof:
    return "end of file";
  case TokenKind::Invalid:
    return "invalid token";
  case TokenKind::Identifier:
    return "identifier";
  case TokenKind::IntLiteral:
    return "integer literal";
  case TokenKind::FloatLiteral:
    return "float literal";
  case TokenKind::KwModule:
    return "'module'";
  case TokenKind::KwSection:
    return "'section'";
  case TokenKind::KwCells:
    return "'cells'";
  case TokenKind::KwFunction:
    return "'function'";
  case TokenKind::KwVar:
    return "'var'";
  case TokenKind::KwIf:
    return "'if'";
  case TokenKind::KwElse:
    return "'else'";
  case TokenKind::KwFor:
    return "'for'";
  case TokenKind::KwTo:
    return "'to'";
  case TokenKind::KwBy:
    return "'by'";
  case TokenKind::KwWhile:
    return "'while'";
  case TokenKind::KwReturn:
    return "'return'";
  case TokenKind::KwSend:
    return "'send'";
  case TokenKind::KwReceive:
    return "'receive'";
  case TokenKind::KwInt:
    return "'int'";
  case TokenKind::KwFloat:
    return "'float'";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::LBrace:
    return "'{'";
  case TokenKind::RBrace:
    return "'}'";
  case TokenKind::LBracket:
    return "'['";
  case TokenKind::RBracket:
    return "']'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::Colon:
    return "':'";
  case TokenKind::Semicolon:
    return "';'";
  case TokenKind::Assign:
    return "'='";
  case TokenKind::Plus:
    return "'+'";
  case TokenKind::Minus:
    return "'-'";
  case TokenKind::Star:
    return "'*'";
  case TokenKind::Slash:
    return "'/'";
  case TokenKind::Percent:
    return "'%'";
  case TokenKind::EqualEqual:
    return "'=='";
  case TokenKind::BangEqual:
    return "'!='";
  case TokenKind::Less:
    return "'<'";
  case TokenKind::LessEqual:
    return "'<='";
  case TokenKind::Greater:
    return "'>'";
  case TokenKind::GreaterEqual:
    return "'>='";
  case TokenKind::AmpAmp:
    return "'&&'";
  case TokenKind::PipePipe:
    return "'||'";
  case TokenKind::Bang:
    return "'!'";
  }
  return "unknown token";
}

Lexer::Lexer(std::string_view Source, DiagnosticEngine &Diags)
    : Source(Source), Diags(Diags) {}

char Lexer::peek(size_t Ahead) const {
  return Pos + Ahead < Source.size() ? Source[Pos + Ahead] : '\0';
}

char Lexer::advance() {
  assert(!atEnd() && "advance past end of buffer");
  char C = Source[Pos++];
  if (C == '\n') {
    ++Line;
    Column = 1;
  } else {
    ++Column;
  }
  return C;
}

void Lexer::skipWhitespaceAndComments() {
  while (!atEnd()) {
    char C = peek();
    if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
      advance();
      continue;
    }
    // Line comments start with "//" as in C++, or "--" as in W2 listings.
    if ((C == '/' && peek(1) == '/') || (C == '-' && peek(1) == '-')) {
      while (!atEnd() && peek() != '\n')
        advance();
      continue;
    }
    return;
  }
}

Token Lexer::makeToken(TokenKind Kind, SourceLoc Loc, std::string Text) {
  ++NumTokens;
  return Token{Kind, Loc, std::move(Text)};
}

Token Lexer::lexIdentifierOrKeyword() {
  SourceLoc Start = loc();
  std::string Text;
  while (!atEnd() && (std::isalnum(static_cast<unsigned char>(peek())) ||
                      peek() == '_'))
    Text += advance();

  struct Keyword {
    const char *Spelling;
    TokenKind Kind;
  };
  static const Keyword Keywords[] = {
      {"module", TokenKind::KwModule},     {"section", TokenKind::KwSection},
      {"cells", TokenKind::KwCells},       {"function", TokenKind::KwFunction},
      {"var", TokenKind::KwVar},           {"if", TokenKind::KwIf},
      {"else", TokenKind::KwElse},         {"for", TokenKind::KwFor},
      {"to", TokenKind::KwTo},             {"by", TokenKind::KwBy},
      {"while", TokenKind::KwWhile},       {"return", TokenKind::KwReturn},
      {"send", TokenKind::KwSend},         {"receive", TokenKind::KwReceive},
      {"int", TokenKind::KwInt},           {"float", TokenKind::KwFloat},
  };
  for (const Keyword &K : Keywords)
    if (Text == K.Spelling)
      return makeToken(K.Kind, Start);
  return makeToken(TokenKind::Identifier, Start, std::move(Text));
}

Token Lexer::lexNumber() {
  SourceLoc Start = loc();
  std::string Text;
  bool IsFloat = false;
  while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())))
    Text += advance();
  if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
    IsFloat = true;
    Text += advance();
    while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())))
      Text += advance();
  }
  if (peek() == 'e' || peek() == 'E') {
    size_t Look = 1;
    if (peek(1) == '+' || peek(1) == '-')
      Look = 2;
    if (std::isdigit(static_cast<unsigned char>(peek(Look)))) {
      IsFloat = true;
      for (size_t I = 0; I != Look; ++I)
        Text += advance();
      while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())))
        Text += advance();
    }
  }
  return makeToken(IsFloat ? TokenKind::FloatLiteral : TokenKind::IntLiteral,
                   Start, std::move(Text));
}

Token Lexer::lexToken() {
  skipWhitespaceAndComments();
  SourceLoc Start = loc();
  if (atEnd())
    return makeToken(TokenKind::Eof, Start);

  char C = peek();
  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_')
    return lexIdentifierOrKeyword();
  if (std::isdigit(static_cast<unsigned char>(C)))
    return lexNumber();

  advance();
  switch (C) {
  case '(':
    return makeToken(TokenKind::LParen, Start);
  case ')':
    return makeToken(TokenKind::RParen, Start);
  case '{':
    return makeToken(TokenKind::LBrace, Start);
  case '}':
    return makeToken(TokenKind::RBrace, Start);
  case '[':
    return makeToken(TokenKind::LBracket, Start);
  case ']':
    return makeToken(TokenKind::RBracket, Start);
  case ',':
    return makeToken(TokenKind::Comma, Start);
  case ':':
    return makeToken(TokenKind::Colon, Start);
  case ';':
    return makeToken(TokenKind::Semicolon, Start);
  case '+':
    return makeToken(TokenKind::Plus, Start);
  case '-':
    return makeToken(TokenKind::Minus, Start);
  case '*':
    return makeToken(TokenKind::Star, Start);
  case '/':
    return makeToken(TokenKind::Slash, Start);
  case '%':
    return makeToken(TokenKind::Percent, Start);
  case '=':
    if (peek() == '=') {
      advance();
      return makeToken(TokenKind::EqualEqual, Start);
    }
    return makeToken(TokenKind::Assign, Start);
  case '!':
    if (peek() == '=') {
      advance();
      return makeToken(TokenKind::BangEqual, Start);
    }
    return makeToken(TokenKind::Bang, Start);
  case '<':
    if (peek() == '=') {
      advance();
      return makeToken(TokenKind::LessEqual, Start);
    }
    return makeToken(TokenKind::Less, Start);
  case '>':
    if (peek() == '=') {
      advance();
      return makeToken(TokenKind::GreaterEqual, Start);
    }
    return makeToken(TokenKind::Greater, Start);
  case '&':
    if (peek() == '&') {
      advance();
      return makeToken(TokenKind::AmpAmp, Start);
    }
    break;
  case '|':
    if (peek() == '|') {
      advance();
      return makeToken(TokenKind::PipePipe, Start);
    }
    break;
  default:
    break;
  }
  Diags.error(Start, std::string("unexpected character '") + C + "'");
  return makeToken(TokenKind::Invalid, Start, std::string(1, C));
}

std::vector<Token> Lexer::lexAll() {
  std::vector<Token> Tokens;
  while (true) {
    Token T = lexToken();
    bool Done = T.is(TokenKind::Eof);
    Tokens.push_back(std::move(T));
    if (Done)
      return Tokens;
  }
}
