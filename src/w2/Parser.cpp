//===- Parser.cpp - W2 parser ---------------------------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "w2/Parser.h"

#include <cassert>
#include <cstdlib>

using namespace warpc;
using namespace warpc::w2;

Parser::Parser(std::vector<Token> Tokens, DiagnosticEngine &Diags)
    : Tokens(std::move(Tokens)), Diags(Diags) {
  assert(!this->Tokens.empty() && this->Tokens.back().is(TokenKind::Eof) &&
         "token stream must end with Eof");
}

const Token &Parser::peek(size_t Ahead) const {
  size_t Index = Pos + Ahead;
  if (Index >= Tokens.size())
    Index = Tokens.size() - 1;
  return Tokens[Index];
}

Token Parser::consume() {
  Token T = Tokens[Pos];
  if (Pos + 1 < Tokens.size())
    ++Pos;
  return T;
}

bool Parser::match(TokenKind Kind) {
  if (!check(Kind))
    return false;
  consume();
  return true;
}

bool Parser::expect(TokenKind Kind, const char *Context) {
  if (match(Kind))
    return true;
  Diags.error(current().Loc, std::string("expected ") + tokenKindName(Kind) +
                                 " " + Context + ", found " +
                                 tokenKindName(current().Kind));
  return false;
}

/// Skips tokens until a statement boundary, to resume parsing after an
/// error. Stops before '}' so block parsing can terminate.
void Parser::synchronize() {
  while (!check(TokenKind::Eof)) {
    if (match(TokenKind::Semicolon))
      return;
    if (check(TokenKind::RBrace) || check(TokenKind::KwFunction) ||
        check(TokenKind::KwSection))
      return;
    consume();
  }
}

std::unique_ptr<ModuleDecl> Parser::parseModule() {
  SourceLoc Loc = current().Loc;
  expect(TokenKind::KwModule, "at start of module");
  std::string Name = "anonymous";
  if (check(TokenKind::Identifier))
    Name = consume().Text;
  else
    Diags.error(current().Loc, "expected module name");
  match(TokenKind::Semicolon);

  auto Module = std::make_unique<ModuleDecl>(Loc, std::move(Name));
  while (!check(TokenKind::Eof)) {
    if (check(TokenKind::KwSection)) {
      if (auto Section = parseSection())
        Module->addSection(std::move(Section));
      continue;
    }
    Diags.error(current().Loc, "expected 'section' at module level");
    synchronize();
    if (check(TokenKind::RBrace))
      consume();
  }
  if (Module->numSections() == 0)
    Diags.error(Loc, "module contains no sections");
  return Module;
}

std::unique_ptr<SectionDecl> Parser::parseSection() {
  SourceLoc Loc = current().Loc;
  expect(TokenKind::KwSection, "at start of section");
  std::string Name = "section";
  if (check(TokenKind::Identifier))
    Name = consume().Text;
  else
    Diags.error(current().Loc, "expected section name");

  uint32_t NumCells = 1;
  if (match(TokenKind::KwCells)) {
    if (check(TokenKind::IntLiteral)) {
      NumCells = static_cast<uint32_t>(std::strtoul(
          consume().Text.c_str(), nullptr, 10));
      if (NumCells == 0) {
        Diags.error(Loc, "section must run on at least one cell");
        NumCells = 1;
      }
    } else {
      Diags.error(current().Loc, "expected cell count after 'cells'");
    }
  }

  auto Section = std::make_unique<SectionDecl>(Loc, std::move(Name), NumCells);
  if (!expect(TokenKind::LBrace, "to open section body"))
    return Section;
  while (!check(TokenKind::RBrace) && !check(TokenKind::Eof)) {
    if (check(TokenKind::KwFunction)) {
      if (auto F = parseFunction())
        Section->addFunction(std::move(F));
      continue;
    }
    Diags.error(current().Loc, "expected 'function' in section body");
    synchronize();
  }
  expect(TokenKind::RBrace, "to close section body");
  if (Section->numFunctions() == 0)
    Diags.error(Loc, "section '" + Section->getName() +
                         "' contains no functions");
  return Section;
}

bool Parser::parseType(Type &Out) {
  ScalarKind Scalar;
  if (match(TokenKind::KwInt)) {
    Scalar = ScalarKind::Int;
  } else if (match(TokenKind::KwFloat)) {
    Scalar = ScalarKind::Float;
  } else {
    Diags.error(current().Loc, "expected type ('int' or 'float')");
    return false;
  }
  if (match(TokenKind::LBracket)) {
    uint32_t Size = 0;
    if (check(TokenKind::IntLiteral))
      Size = static_cast<uint32_t>(
          std::strtoul(consume().Text.c_str(), nullptr, 10));
    else
      Diags.error(current().Loc, "expected array size");
    if (!expect(TokenKind::RBracket, "after array size"))
      return false;
    if (Size == 0) {
      Diags.error(current().Loc, "array size must be positive");
      Size = 1;
    }
    Out = Type::arrayTy(Scalar, Size);
    return true;
  }
  Out = Scalar == ScalarKind::Int ? Type::intTy() : Type::floatTy();
  return true;
}

bool Parser::parseParamList(std::vector<ParamDecl> &Params) {
  if (!expect(TokenKind::LParen, "to open parameter list"))
    return false;
  if (match(TokenKind::RParen))
    return true;
  while (true) {
    SourceLoc Loc = current().Loc;
    std::string Name;
    if (check(TokenKind::Identifier))
      Name = consume().Text;
    else {
      Diags.error(Loc, "expected parameter name");
      return false;
    }
    if (!expect(TokenKind::Colon, "after parameter name"))
      return false;
    Type Ty;
    if (!parseType(Ty))
      return false;
    Params.push_back(ParamDecl{Loc, std::move(Name), Ty});
    if (match(TokenKind::RParen))
      return true;
    if (!expect(TokenKind::Comma, "between parameters"))
      return false;
  }
}

std::unique_ptr<FunctionDecl> Parser::parseFunction() {
  SourceLoc Loc = current().Loc;
  expect(TokenKind::KwFunction, "at start of function");
  std::string Name = "anonymous";
  if (check(TokenKind::Identifier))
    Name = consume().Text;
  else
    Diags.error(current().Loc, "expected function name");

  std::vector<ParamDecl> Params;
  if (!parseParamList(Params)) {
    synchronize();
    return nullptr;
  }

  Type RetTy = Type::voidTy();
  if (match(TokenKind::Colon)) {
    if (!parseType(RetTy))
      return nullptr;
    if (RetTy.isArray()) {
      Diags.error(Loc, "functions cannot return arrays");
      RetTy = Type::floatTy();
    }
  }

  auto Body = parseBlock();
  if (!Body)
    return nullptr;
  SourceLoc EndLoc = Tokens[Pos > 0 ? Pos - 1 : 0].Loc;
  return std::make_unique<FunctionDecl>(Loc, std::move(Name),
                                        std::move(Params), RetTy,
                                        std::move(Body), EndLoc);
}

std::unique_ptr<BlockStmt> Parser::parseBlock() {
  SourceLoc Loc = current().Loc;
  if (!expect(TokenKind::LBrace, "to open block"))
    return nullptr;
  std::vector<StmtPtr> Stmts;
  while (!check(TokenKind::RBrace) && !check(TokenKind::Eof)) {
    if (StmtPtr S = parseStmt())
      Stmts.push_back(std::move(S));
    else
      synchronize();
  }
  expect(TokenKind::RBrace, "to close block");
  return std::make_unique<BlockStmt>(Loc, std::move(Stmts));
}

StmtPtr Parser::parseStmt() {
  switch (current().Kind) {
  case TokenKind::KwVar:
    return parseVarDeclStmt();
  case TokenKind::KwIf:
    return parseIf();
  case TokenKind::KwFor:
    return parseFor();
  case TokenKind::KwWhile:
    return parseWhile();
  case TokenKind::KwReturn:
    return parseReturn();
  case TokenKind::KwSend:
    return parseSend();
  case TokenKind::KwReceive:
    return parseReceive();
  case TokenKind::LBrace:
    return parseBlock();
  case TokenKind::Identifier:
    return parseAssignOrCall();
  default:
    Diags.error(current().Loc, std::string("unexpected ") +
                                   tokenKindName(current().Kind) +
                                   " at start of statement");
    return nullptr;
  }
}

StmtPtr Parser::parseVarDeclStmt() {
  SourceLoc Loc = current().Loc;
  consume(); // 'var'
  std::string Name;
  if (check(TokenKind::Identifier))
    Name = consume().Text;
  else {
    Diags.error(current().Loc, "expected variable name after 'var'");
    return nullptr;
  }
  if (!expect(TokenKind::Colon, "after variable name"))
    return nullptr;
  Type Ty;
  if (!parseType(Ty))
    return nullptr;
  ExprPtr Init;
  if (match(TokenKind::Assign)) {
    Init = parseExpr();
    if (!Init)
      return nullptr;
  }
  if (!expect(TokenKind::Semicolon, "after variable declaration"))
    return nullptr;
  auto Decl = std::make_unique<VarDecl>(Loc, std::move(Name), Ty,
                                        std::move(Init));
  return std::make_unique<DeclStmt>(Loc, std::move(Decl));
}

StmtPtr Parser::parseIf() {
  SourceLoc Loc = current().Loc;
  consume(); // 'if'
  if (!expect(TokenKind::LParen, "after 'if'"))
    return nullptr;
  ExprPtr Cond = parseExpr();
  if (!Cond)
    return nullptr;
  if (!expect(TokenKind::RParen, "after if condition"))
    return nullptr;
  StmtPtr Then = parseBlock();
  if (!Then)
    return nullptr;
  StmtPtr Else;
  if (match(TokenKind::KwElse)) {
    Else = check(TokenKind::KwIf) ? parseIf() : StmtPtr(parseBlock());
    if (!Else)
      return nullptr;
  }
  return std::make_unique<IfStmt>(Loc, std::move(Cond), std::move(Then),
                                  std::move(Else));
}

StmtPtr Parser::parseFor() {
  SourceLoc Loc = current().Loc;
  consume(); // 'for'
  std::string IndVar;
  if (check(TokenKind::Identifier))
    IndVar = consume().Text;
  else {
    Diags.error(current().Loc, "expected induction variable after 'for'");
    return nullptr;
  }
  if (!expect(TokenKind::Assign, "after induction variable"))
    return nullptr;
  ExprPtr Lo = parseExpr();
  if (!Lo)
    return nullptr;
  if (!expect(TokenKind::KwTo, "in for statement"))
    return nullptr;
  ExprPtr Hi = parseExpr();
  if (!Hi)
    return nullptr;
  int64_t Step = 1;
  if (match(TokenKind::KwBy)) {
    bool Negative = match(TokenKind::Minus);
    if (check(TokenKind::IntLiteral)) {
      Step = std::strtoll(consume().Text.c_str(), nullptr, 10);
      if (Negative)
        Step = -Step;
      if (Step == 0) {
        Diags.error(Loc, "for step must be nonzero");
        Step = 1;
      }
    } else {
      Diags.error(current().Loc, "expected integer literal after 'by'");
    }
  }
  StmtPtr Body = parseBlock();
  if (!Body)
    return nullptr;
  return std::make_unique<ForStmt>(Loc, std::move(IndVar), std::move(Lo),
                                   std::move(Hi), Step, std::move(Body));
}

StmtPtr Parser::parseWhile() {
  SourceLoc Loc = current().Loc;
  consume(); // 'while'
  if (!expect(TokenKind::LParen, "after 'while'"))
    return nullptr;
  ExprPtr Cond = parseExpr();
  if (!Cond)
    return nullptr;
  if (!expect(TokenKind::RParen, "after while condition"))
    return nullptr;
  StmtPtr Body = parseBlock();
  if (!Body)
    return nullptr;
  return std::make_unique<WhileStmt>(Loc, std::move(Cond), std::move(Body));
}

StmtPtr Parser::parseReturn() {
  SourceLoc Loc = current().Loc;
  consume(); // 'return'
  ExprPtr Value;
  if (!check(TokenKind::Semicolon)) {
    Value = parseExpr();
    if (!Value)
      return nullptr;
  }
  if (!expect(TokenKind::Semicolon, "after return statement"))
    return nullptr;
  return std::make_unique<ReturnStmt>(Loc, std::move(Value));
}

bool Parser::parseChannel(Channel &Out) {
  if (check(TokenKind::Identifier)) {
    const std::string &Name = current().Text;
    if (Name == "X" || Name == "x") {
      Out = Channel::X;
      consume();
      return true;
    }
    if (Name == "Y" || Name == "y") {
      Out = Channel::Y;
      consume();
      return true;
    }
  }
  Diags.error(current().Loc, "expected channel name 'X' or 'Y'");
  return false;
}

StmtPtr Parser::parseSend() {
  SourceLoc Loc = current().Loc;
  consume(); // 'send'
  if (!expect(TokenKind::LParen, "after 'send'"))
    return nullptr;
  Channel Chan;
  if (!parseChannel(Chan))
    return nullptr;
  if (!expect(TokenKind::Comma, "after channel name"))
    return nullptr;
  ExprPtr Value = parseExpr();
  if (!Value)
    return nullptr;
  if (!expect(TokenKind::RParen, "to close send"))
    return nullptr;
  if (!expect(TokenKind::Semicolon, "after send statement"))
    return nullptr;
  return std::make_unique<SendStmt>(Loc, Chan, std::move(Value));
}

StmtPtr Parser::parseReceive() {
  SourceLoc Loc = current().Loc;
  consume(); // 'receive'
  if (!expect(TokenKind::LParen, "after 'receive'"))
    return nullptr;
  Channel Chan;
  if (!parseChannel(Chan))
    return nullptr;
  if (!expect(TokenKind::Comma, "after channel name"))
    return nullptr;
  ExprPtr Target = parseLValue();
  if (!Target)
    return nullptr;
  if (!expect(TokenKind::RParen, "to close receive"))
    return nullptr;
  if (!expect(TokenKind::Semicolon, "after receive statement"))
    return nullptr;
  return std::make_unique<ReceiveStmt>(Loc, Chan, std::move(Target));
}

ExprPtr Parser::parseLValue() {
  SourceLoc Loc = current().Loc;
  if (!check(TokenKind::Identifier)) {
    Diags.error(Loc, "expected variable or array element");
    return nullptr;
  }
  std::string Name = consume().Text;
  if (match(TokenKind::LBracket)) {
    ExprPtr Index = parseExpr();
    if (!Index)
      return nullptr;
    if (!expect(TokenKind::RBracket, "after array index"))
      return nullptr;
    return std::make_unique<IndexExpr>(Loc, std::move(Name),
                                       std::move(Index));
  }
  return std::make_unique<VarRefExpr>(Loc, std::move(Name));
}

StmtPtr Parser::parseAssignOrCall() {
  SourceLoc Loc = current().Loc;
  // A statement starting with an identifier is either a call statement
  // "f(...);" or an assignment "lvalue = expr;".
  if (peek(1).is(TokenKind::LParen)) {
    ExprPtr Call = parsePrimary();
    if (!Call)
      return nullptr;
    if (!expect(TokenKind::Semicolon, "after call statement"))
      return nullptr;
    return std::make_unique<ExprStmt>(Loc, std::move(Call));
  }
  ExprPtr Target = parseLValue();
  if (!Target)
    return nullptr;
  if (!expect(TokenKind::Assign, "in assignment"))
    return nullptr;
  ExprPtr Value = parseExpr();
  if (!Value)
    return nullptr;
  if (!expect(TokenKind::Semicolon, "after assignment"))
    return nullptr;
  return std::make_unique<AssignStmt>(Loc, std::move(Target),
                                      std::move(Value));
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

/// Binding power of a binary operator token; -1 when not binary.
static int binaryPrecedence(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::PipePipe:
    return 1;
  case TokenKind::AmpAmp:
    return 2;
  case TokenKind::EqualEqual:
  case TokenKind::BangEqual:
    return 3;
  case TokenKind::Less:
  case TokenKind::LessEqual:
  case TokenKind::Greater:
  case TokenKind::GreaterEqual:
    return 4;
  case TokenKind::Plus:
  case TokenKind::Minus:
    return 5;
  case TokenKind::Star:
  case TokenKind::Slash:
  case TokenKind::Percent:
    return 6;
  default:
    return -1;
  }
}

static BinaryOp binaryOpFor(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::PipePipe:
    return BinaryOp::LOr;
  case TokenKind::AmpAmp:
    return BinaryOp::LAnd;
  case TokenKind::EqualEqual:
    return BinaryOp::EQ;
  case TokenKind::BangEqual:
    return BinaryOp::NE;
  case TokenKind::Less:
    return BinaryOp::LT;
  case TokenKind::LessEqual:
    return BinaryOp::LE;
  case TokenKind::Greater:
    return BinaryOp::GT;
  case TokenKind::GreaterEqual:
    return BinaryOp::GE;
  case TokenKind::Plus:
    return BinaryOp::Add;
  case TokenKind::Minus:
    return BinaryOp::Sub;
  case TokenKind::Star:
    return BinaryOp::Mul;
  case TokenKind::Slash:
    return BinaryOp::Div;
  case TokenKind::Percent:
    return BinaryOp::Rem;
  default:
    assert(false && "not a binary operator token");
    return BinaryOp::Add;
  }
}

ExprPtr Parser::parseExpr() {
  ExprPtr LHS = parseUnary();
  if (!LHS)
    return nullptr;
  return parseBinaryRHS(1, std::move(LHS));
}

ExprPtr Parser::parseBinaryRHS(int MinPrec, ExprPtr LHS) {
  while (true) {
    int Prec = binaryPrecedence(current().Kind);
    if (Prec < MinPrec)
      return LHS;
    Token OpTok = consume();
    ExprPtr RHS = parseUnary();
    if (!RHS)
      return nullptr;
    // Left associativity: bind tighter operators on the right first.
    int NextPrec = binaryPrecedence(current().Kind);
    if (NextPrec > Prec) {
      RHS = parseBinaryRHS(Prec + 1, std::move(RHS));
      if (!RHS)
        return nullptr;
    }
    LHS = std::make_unique<BinaryExpr>(OpTok.Loc, binaryOpFor(OpTok.Kind),
                                       std::move(LHS), std::move(RHS));
  }
}

ExprPtr Parser::parseUnary() {
  SourceLoc Loc = current().Loc;
  if (match(TokenKind::Minus)) {
    ExprPtr Operand = parseUnary();
    if (!Operand)
      return nullptr;
    return std::make_unique<UnaryExpr>(Loc, UnaryOp::Neg, std::move(Operand));
  }
  if (match(TokenKind::Bang)) {
    ExprPtr Operand = parseUnary();
    if (!Operand)
      return nullptr;
    return std::make_unique<UnaryExpr>(Loc, UnaryOp::Not, std::move(Operand));
  }
  return parsePrimary();
}

ExprPtr Parser::parsePrimary() {
  SourceLoc Loc = current().Loc;
  switch (current().Kind) {
  case TokenKind::IntLiteral: {
    Token T = consume();
    return std::make_unique<IntLitExpr>(
        Loc, std::strtoll(T.Text.c_str(), nullptr, 10));
  }
  case TokenKind::FloatLiteral: {
    Token T = consume();
    return std::make_unique<FloatLitExpr>(Loc,
                                          std::strtod(T.Text.c_str(), nullptr));
  }
  case TokenKind::LParen: {
    consume();
    ExprPtr Inner = parseExpr();
    if (!Inner)
      return nullptr;
    if (!expect(TokenKind::RParen, "to close parenthesized expression"))
      return nullptr;
    return Inner;
  }
  case TokenKind::Identifier: {
    std::string Name = consume().Text;
    if (match(TokenKind::LParen)) {
      std::vector<ExprPtr> Args;
      if (!match(TokenKind::RParen)) {
        while (true) {
          ExprPtr Arg = parseExpr();
          if (!Arg)
            return nullptr;
          Args.push_back(std::move(Arg));
          if (match(TokenKind::RParen))
            break;
          if (!expect(TokenKind::Comma, "between call arguments"))
            return nullptr;
        }
      }
      return std::make_unique<CallExpr>(Loc, std::move(Name),
                                        std::move(Args));
    }
    if (match(TokenKind::LBracket)) {
      ExprPtr Index = parseExpr();
      if (!Index)
        return nullptr;
      if (!expect(TokenKind::RBracket, "after array index"))
        return nullptr;
      return std::make_unique<IndexExpr>(Loc, std::move(Name),
                                         std::move(Index));
    }
    return std::make_unique<VarRefExpr>(Loc, std::move(Name));
  }
  default:
    Diags.error(Loc, std::string("expected expression, found ") +
                         tokenKindName(current().Kind));
    return nullptr;
  }
}
