//===- Token.h - W2 tokens --------------------------------------*- C++ -*-===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Token kinds for the W2-like source language. W2 is the language of the
/// CMU Warp systolic array: a module contains section programs, each
/// section contains functions, and cells communicate over the X and Y
/// channels via send/receive.
///
//===----------------------------------------------------------------------===//

#ifndef WARPC_W2_TOKEN_H
#define WARPC_W2_TOKEN_H

#include "support/SourceLoc.h"

#include <string>

namespace warpc {
namespace w2 {

enum class TokenKind {
  // Sentinels.
  Eof,
  Invalid,

  // Literals and identifiers.
  Identifier,
  IntLiteral,
  FloatLiteral,

  // Keywords.
  KwModule,
  KwSection,
  KwCells,
  KwFunction,
  KwVar,
  KwIf,
  KwElse,
  KwFor,
  KwTo,
  KwBy,
  KwWhile,
  KwReturn,
  KwSend,
  KwReceive,
  KwInt,
  KwFloat,

  // Punctuation.
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Comma,
  Colon,
  Semicolon,

  // Operators.
  Assign,
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  EqualEqual,
  BangEqual,
  Less,
  LessEqual,
  Greater,
  GreaterEqual,
  AmpAmp,
  PipePipe,
  Bang,
};

/// Returns a human-readable spelling for diagnostics ("'{'", "identifier").
const char *tokenKindName(TokenKind Kind);

/// One lexed token. Text is only meaningful for identifiers and literals.
struct Token {
  TokenKind Kind = TokenKind::Invalid;
  SourceLoc Loc;
  std::string Text;

  bool is(TokenKind K) const { return Kind == K; }
};

} // namespace w2
} // namespace warpc

#endif // WARPC_W2_TOKEN_H
