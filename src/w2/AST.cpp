//===- AST.cpp - W2 abstract syntax tree ----------------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "w2/AST.h"

using namespace warpc;
using namespace warpc::w2;

std::string Type::str() const {
  const char *Base = "void";
  if (Scalar == ScalarKind::Int)
    Base = "int";
  else if (Scalar == ScalarKind::Float)
    Base = "float";
  if (!isArray())
    return Base;
  return std::string(Base) + "[" + std::to_string(ArraySize) + "]";
}

const char *w2::binaryOpSpelling(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::LOr:
    return "||";
  case BinaryOp::LAnd:
    return "&&";
  case BinaryOp::EQ:
    return "==";
  case BinaryOp::NE:
    return "!=";
  case BinaryOp::LT:
    return "<";
  case BinaryOp::LE:
    return "<=";
  case BinaryOp::GT:
    return ">";
  case BinaryOp::GE:
    return ">=";
  case BinaryOp::Add:
    return "+";
  case BinaryOp::Sub:
    return "-";
  case BinaryOp::Mul:
    return "*";
  case BinaryOp::Div:
    return "/";
  case BinaryOp::Rem:
    return "%";
  }
  return "?";
}

const char *w2::channelName(Channel C) { return C == Channel::X ? "X" : "Y"; }

FunctionDecl *SectionDecl::lookup(const std::string &Name) const {
  for (const auto &F : Functions)
    if (F->getName() == Name)
      return F.get();
  return nullptr;
}

size_t ModuleDecl::numFunctions() const {
  size_t N = 0;
  for (const auto &S : Sections)
    N += S->numFunctions();
  return N;
}

namespace {

/// Walks a function body accumulating node counts and loop statistics.
class AstWalker {
public:
  uint64_t Nodes = 0;
  uint32_t MaxDepth = 0;
  uint32_t Loops = 0;

  void walkStmt(const Stmt *S, uint32_t Depth) {
    if (!S)
      return;
    ++Nodes;
    switch (S->getKind()) {
    case Stmt::Kind::Block: {
      const auto *B = cast<BlockStmt>(S);
      for (const auto &Child : B->stmts())
        walkStmt(Child.get(), Depth);
      return;
    }
    case Stmt::Kind::Decl:
      walkExpr(cast<DeclStmt>(S)->getDecl()->getInit());
      return;
    case Stmt::Kind::Assign: {
      const auto *A = cast<AssignStmt>(S);
      walkExpr(A->getTarget());
      walkExpr(A->getValue());
      return;
    }
    case Stmt::Kind::If: {
      const auto *I = cast<IfStmt>(S);
      walkExpr(I->getCond());
      walkStmt(I->getThen(), Depth);
      walkStmt(I->getElse(), Depth);
      return;
    }
    case Stmt::Kind::For: {
      const auto *F = cast<ForStmt>(S);
      ++Loops;
      MaxDepth = std::max(MaxDepth, Depth + 1);
      walkExpr(F->getLo());
      walkExpr(F->getHi());
      walkStmt(F->getBody(), Depth + 1);
      return;
    }
    case Stmt::Kind::While: {
      const auto *W = cast<WhileStmt>(S);
      ++Loops;
      MaxDepth = std::max(MaxDepth, Depth + 1);
      walkExpr(W->getCond());
      walkStmt(W->getBody(), Depth + 1);
      return;
    }
    case Stmt::Kind::Return:
      walkExpr(cast<ReturnStmt>(S)->getValue());
      return;
    case Stmt::Kind::Send:
      walkExpr(cast<SendStmt>(S)->getValue());
      return;
    case Stmt::Kind::Receive:
      walkExpr(cast<ReceiveStmt>(S)->getTarget());
      return;
    case Stmt::Kind::ExprStmt:
      walkExpr(cast<ExprStmt>(S)->getExpr());
      return;
    }
  }

  void walkExpr(const Expr *E) {
    if (!E)
      return;
    ++Nodes;
    switch (E->getKind()) {
    case Expr::Kind::IntLit:
    case Expr::Kind::FloatLit:
    case Expr::Kind::VarRef:
      return;
    case Expr::Kind::Index:
      walkExpr(cast<IndexExpr>(E)->getIndex());
      return;
    case Expr::Kind::Unary:
      walkExpr(cast<UnaryExpr>(E)->getOperand());
      return;
    case Expr::Kind::Binary: {
      const auto *B = cast<BinaryExpr>(E);
      walkExpr(B->getLHS());
      walkExpr(B->getRHS());
      return;
    }
    case Expr::Kind::Call: {
      const auto *C = cast<CallExpr>(E);
      for (size_t I = 0, N = C->getNumArgs(); I != N; ++I)
        walkExpr(C->getArg(I));
      return;
    }
    case Expr::Kind::Cast:
      walkExpr(cast<CastExpr>(E)->getOperand());
      return;
    }
  }
};

} // namespace

uint64_t w2::countAstNodes(const FunctionDecl &F) {
  AstWalker W;
  W.walkStmt(F.getBody(), 0);
  return W.Nodes;
}

uint32_t w2::maxLoopDepth(const FunctionDecl &F) {
  AstWalker W;
  W.walkStmt(F.getBody(), 0);
  return W.MaxDepth;
}

uint32_t w2::countLoops(const FunctionDecl &F) {
  AstWalker W;
  W.walkStmt(F.getBody(), 0);
  return W.Loops;
}
