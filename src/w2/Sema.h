//===- Sema.h - W2 semantic checking ----------------------------*- C++ -*-===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Semantic checking for W2 (the second half of compiler phase 1). This is
/// the phase the paper keeps sequential because it requires global
/// information that depends on all functions in a section: "to discover a
/// type mismatch between a function return value and its use at a call
/// site, the semantic checker has to process the complete section program"
/// (Section 3.2). Sema also rewrites the AST, annotating every expression
/// with its type and making the implicit int-to-float widenings explicit
/// via CastExpr so the IR builder never coerces.
///
//===----------------------------------------------------------------------===//

#ifndef WARPC_W2_SEMA_H
#define WARPC_W2_SEMA_H

#include "support/Diagnostics.h"
#include "w2/AST.h"

#include <cstdint>

namespace warpc {
namespace w2 {

/// Performs name resolution and type checking over a module.
class Sema {
public:
  explicit Sema(DiagnosticEngine &Diags) : Diags(Diags) {}

  /// Checks an entire module. Returns true when no errors were found.
  bool checkModule(ModuleDecl &Module);

  /// Checks one section (all functions, including cross-function call
  /// signature checks within the section).
  bool checkSection(SectionDecl &Section);

  /// Number of AST nodes visited; a phase-1 work metric.
  uint64_t checkedNodeCount() const { return NodesChecked; }

private:
  DiagnosticEngine &Diags;
  uint64_t NodesChecked = 0;
};

} // namespace w2
} // namespace warpc

#endif // WARPC_W2_SEMA_H
