//===- Sema.cpp - W2 semantic checking ------------------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "w2/Sema.h"

#include <functional>
#include <map>
#include <vector>

using namespace warpc;
using namespace warpc::w2;

namespace {

/// A name binding in the current scope.
struct Symbol {
  Type Ty;
  bool IsInduction = false;
};

/// Checks one function against its section's signatures.
class FunctionChecker {
public:
  FunctionChecker(SectionDecl &Section, FunctionDecl &F,
                  DiagnosticEngine &Diags, uint64_t &NodesChecked)
      : Section(Section), F(F), Diags(Diags), NodesChecked(NodesChecked) {}

  void run() {
    pushScope();
    for (const ParamDecl &P : F.params()) {
      if (!declare(P.Name, Symbol{P.Ty, false}))
        Diags.error(P.Loc, "duplicate parameter '" + P.Name + "'");
    }
    checkStmt(F.getBody());
    popScope();
    if (!F.getReturnType().isVoid() && !SawValueReturn)
      Diags.error(F.getLoc(), "function '" + F.getName() + "' declared " +
                                  F.getReturnType().str() +
                                  " but contains no value return");
  }

private:
  //===--------------------------------------------------------------------===//
  // Scopes
  //===--------------------------------------------------------------------===//

  void pushScope() { Scopes.emplace_back(); }
  void popScope() { Scopes.pop_back(); }

  bool declare(const std::string &Name, Symbol Sym) {
    auto &Scope = Scopes.back();
    return Scope.emplace(Name, Sym).second;
  }

  const Symbol *lookup(const std::string &Name) const {
    for (auto It = Scopes.rbegin(), E = Scopes.rend(); It != E; ++It) {
      auto Found = It->find(Name);
      if (Found != It->end())
        return &Found->second;
    }
    return nullptr;
  }

  //===--------------------------------------------------------------------===//
  // Coercion helpers
  //===--------------------------------------------------------------------===//

  /// Wraps \p E in an int-to-float cast. \p E must have int type.
  static ExprPtr widen(ExprPtr E) {
    SourceLoc Loc = E->getLoc();
    return std::make_unique<CastExpr>(Loc, std::move(E));
  }

  /// Coerces a subexpression to \p Want, given a take/set pair from the
  /// owning node. Reports an error when no implicit conversion exists.
  void coerce(Type Want, Expr *E, std::function<ExprPtr()> Take,
              std::function<void(ExprPtr)> Set, const char *Context) {
    Type Have = E->getType();
    if (Have == Want || Have.isVoid())
      return; // Void means a checking error was already reported below it.
    if (Want.isFloat() && Have.isInt()) {
      Set(widen(Take()));
      return;
    }
    Diags.error(E->getLoc(), std::string(Context) + " has type " +
                                 Have.str() + " but " + Want.str() +
                                 " is required");
  }

  //===--------------------------------------------------------------------===//
  // Statements
  //===--------------------------------------------------------------------===//

  void checkStmt(Stmt *S) {
    if (!S)
      return;
    ++NodesChecked;
    switch (S->getKind()) {
    case Stmt::Kind::Block: {
      auto *B = cast<BlockStmt>(S);
      pushScope();
      for (const StmtPtr &Child : B->stmts())
        checkStmt(Child.get());
      popScope();
      return;
    }
    case Stmt::Kind::Decl: {
      VarDecl *D = cast<DeclStmt>(S)->getDecl();
      if (D->getInit()) {
        Type InitTy = checkExpr(D->getInit());
        if (D->getType().isArray()) {
          Diags.error(D->getLoc(), "array variable '" + D->getName() +
                                       "' cannot have a scalar initializer");
        } else if (!InitTy.isVoid()) {
          coerce(D->getType(), D->getInit(), [&] { return D->takeInit(); },
                 [&](ExprPtr E) { D->setInit(std::move(E)); },
                 "initializer");
        }
      }
      if (!declare(D->getName(), Symbol{D->getType(), false}))
        Diags.error(D->getLoc(),
                    "redeclaration of '" + D->getName() + "' in this scope");
      return;
    }
    case Stmt::Kind::Assign: {
      auto *A = cast<AssignStmt>(S);
      Type TargetTy = checkLValue(A->getTarget(), /*ForWrite=*/true);
      Type ValueTy = checkExpr(A->getValue());
      if (!TargetTy.isVoid() && !ValueTy.isVoid())
        coerce(TargetTy, A->getValue(), [&] { return A->takeValue(); },
               [&](ExprPtr E) { A->setValue(std::move(E)); },
               "assigned value");
      return;
    }
    case Stmt::Kind::If: {
      auto *I = cast<IfStmt>(S);
      checkCondition(I->getCond());
      checkStmt(I->getThen());
      checkStmt(I->getElse());
      return;
    }
    case Stmt::Kind::For: {
      auto *L = cast<ForStmt>(S);
      Type LoTy = checkExpr(L->getLo());
      Type HiTy = checkExpr(L->getHi());
      if (!LoTy.isVoid() && !LoTy.isInt())
        Diags.error(L->getLo()->getLoc(), "for bound must be int, found " +
                                              LoTy.str());
      if (!HiTy.isVoid() && !HiTy.isInt())
        Diags.error(L->getHi()->getLoc(), "for bound must be int, found " +
                                              HiTy.str());
      pushScope();
      declare(L->getIndVar(), Symbol{Type::intTy(), /*IsInduction=*/true});
      checkStmt(L->getBody());
      popScope();
      return;
    }
    case Stmt::Kind::While: {
      auto *W = cast<WhileStmt>(S);
      checkCondition(W->getCond());
      checkStmt(W->getBody());
      return;
    }
    case Stmt::Kind::Return: {
      auto *R = cast<ReturnStmt>(S);
      Type Want = F.getReturnType();
      if (!R->getValue()) {
        if (!Want.isVoid())
          Diags.error(R->getLoc(), "non-void function '" + F.getName() +
                                       "' must return a value");
        return;
      }
      SawValueReturn = true;
      Type Have = checkExpr(R->getValue());
      if (Want.isVoid()) {
        Diags.error(R->getLoc(),
                    "void function '" + F.getName() + "' returns a value");
        return;
      }
      if (!Have.isVoid())
        coerce(Want, R->getValue(), [&] { return R->takeValue(); },
               [&](ExprPtr E) { R->setValue(std::move(E)); },
               "returned value");
      return;
    }
    case Stmt::Kind::Send: {
      auto *Send = cast<SendStmt>(S);
      Type Ty = checkExpr(Send->getValue());
      // Warp channels carry 32-bit floating point words.
      if (!Ty.isVoid() && !Ty.isFloat()) {
        if (Ty.isInt())
          Send->setValue(widen(Send->takeValue()));
        else
          Diags.error(Send->getValue()->getLoc(),
                      "send value must be numeric, found " + Ty.str());
      }
      return;
    }
    case Stmt::Kind::Receive: {
      auto *Recv = cast<ReceiveStmt>(S);
      Type Ty = checkLValue(Recv->getTarget(), /*ForWrite=*/true);
      if (!Ty.isVoid() && !Ty.isFloat())
        Diags.error(Recv->getTarget()->getLoc(),
                    "receive target must be float, found " + Ty.str());
      return;
    }
    case Stmt::Kind::ExprStmt: {
      Expr *E = cast<ExprStmt>(S)->getExpr();
      if (!isa<CallExpr>(E)) {
        Diags.error(E->getLoc(), "expression statement must be a call");
        return;
      }
      checkExpr(E);
      return;
    }
    }
  }

  void checkCondition(Expr *Cond) {
    Type Ty = checkExpr(Cond);
    if (!Ty.isVoid() && !Ty.isInt())
      Diags.error(Cond->getLoc(),
                  "condition must be int (boolean), found " + Ty.str());
  }

  //===--------------------------------------------------------------------===//
  // Expressions
  //===--------------------------------------------------------------------===//

  /// Checks an lvalue (assignment or receive target). Returns the element
  /// type being written, or Void on error.
  Type checkLValue(Expr *E, bool ForWrite) {
    ++NodesChecked;
    if (auto *Ref = dyn_cast<VarRefExpr>(E)) {
      const Symbol *Sym = lookup(Ref->getName());
      if (!Sym) {
        Diags.error(E->getLoc(),
                    "use of undeclared variable '" + Ref->getName() + "'");
        return Type::voidTy();
      }
      if (ForWrite && Sym->IsInduction) {
        Diags.error(E->getLoc(), "cannot assign to loop induction variable '" +
                                     Ref->getName() + "'");
        return Type::voidTy();
      }
      if (Sym->Ty.isArray()) {
        Diags.error(E->getLoc(), "cannot assign to whole array '" +
                                     Ref->getName() + "'");
        return Type::voidTy();
      }
      Ref->setType(Sym->Ty);
      return Sym->Ty;
    }
    if (auto *Idx = dyn_cast<IndexExpr>(E))
      return checkIndex(Idx);
    Diags.error(E->getLoc(), "expression is not assignable");
    return Type::voidTy();
  }

  Type checkIndex(IndexExpr *Idx) {
    const Symbol *Sym = lookup(Idx->getBaseName());
    if (!Sym) {
      Diags.error(Idx->getLoc(),
                  "use of undeclared array '" + Idx->getBaseName() + "'");
      return Type::voidTy();
    }
    if (!Sym->Ty.isArray()) {
      Diags.error(Idx->getLoc(), "'" + Idx->getBaseName() +
                                     "' has non-array type " + Sym->Ty.str() +
                                     " and cannot be indexed");
      return Type::voidTy();
    }
    Type IndexTy = checkExpr(Idx->getIndex());
    if (!IndexTy.isVoid() && !IndexTy.isInt())
      Diags.error(Idx->getIndex()->getLoc(),
                  "array index must be int, found " + IndexTy.str());
    Type ElemTy = Sym->Ty.elementType();
    Idx->setType(ElemTy);
    return ElemTy;
  }

  /// Type-checks \p E, annotates it, and returns its type (Void on error).
  Type checkExpr(Expr *E) {
    if (!E)
      return Type::voidTy();
    ++NodesChecked;
    switch (E->getKind()) {
    case Expr::Kind::IntLit:
      E->setType(Type::intTy());
      return E->getType();
    case Expr::Kind::FloatLit:
      E->setType(Type::floatTy());
      return E->getType();
    case Expr::Kind::VarRef: {
      auto *Ref = cast<VarRefExpr>(E);
      const Symbol *Sym = lookup(Ref->getName());
      if (!Sym) {
        Diags.error(E->getLoc(),
                    "use of undeclared variable '" + Ref->getName() + "'");
        return Type::voidTy();
      }
      if (Sym->Ty.isArray()) {
        Diags.error(E->getLoc(), "array '" + Ref->getName() +
                                     "' must be indexed or passed as an "
                                     "array argument");
        return Type::voidTy();
      }
      Ref->setType(Sym->Ty);
      return Sym->Ty;
    }
    case Expr::Kind::Index:
      return checkIndex(cast<IndexExpr>(E));
    case Expr::Kind::Unary: {
      auto *U = cast<UnaryExpr>(E);
      Type Ty = checkExpr(U->getOperand());
      if (Ty.isVoid())
        return Ty;
      if (U->getOp() == UnaryOp::Not) {
        if (!Ty.isInt()) {
          Diags.error(E->getLoc(), "'!' requires an int operand, found " +
                                       Ty.str());
          return Type::voidTy();
        }
        U->setType(Type::intTy());
        return U->getType();
      }
      if (!Ty.isScalarNumeric()) {
        Diags.error(E->getLoc(),
                    "'-' requires a numeric operand, found " + Ty.str());
        return Type::voidTy();
      }
      U->setType(Ty);
      return Ty;
    }
    case Expr::Kind::Binary:
      return checkBinary(cast<BinaryExpr>(E));
    case Expr::Kind::Call:
      return checkCall(cast<CallExpr>(E));
    case Expr::Kind::Cast:
      // Casts are only created by Sema itself, already typed.
      return E->getType();
    }
    return Type::voidTy();
  }

  Type checkBinary(BinaryExpr *B) {
    Type L = checkExpr(B->getLHS());
    Type R = checkExpr(B->getRHS());
    if (L.isVoid() || R.isVoid())
      return Type::voidTy();

    BinaryOp Op = B->getOp();
    auto RequireNumeric = [&](Type Ty, Expr *Operand) {
      if (Ty.isScalarNumeric())
        return true;
      Diags.error(Operand->getLoc(), std::string("operator '") +
                                         binaryOpSpelling(Op) +
                                         "' requires numeric operands, "
                                         "found " +
                                         Ty.str());
      return false;
    };

    switch (Op) {
    case BinaryOp::LAnd:
    case BinaryOp::LOr:
      if (!L.isInt() || !R.isInt()) {
        Diags.error(B->getLoc(), std::string("operator '") +
                                     binaryOpSpelling(Op) +
                                     "' requires int operands");
        return Type::voidTy();
      }
      B->setType(Type::intTy());
      return B->getType();
    case BinaryOp::Rem:
      if (!L.isInt() || !R.isInt()) {
        Diags.error(B->getLoc(), "operator '%' requires int operands");
        return Type::voidTy();
      }
      B->setType(Type::intTy());
      return B->getType();
    case BinaryOp::EQ:
    case BinaryOp::NE:
    case BinaryOp::LT:
    case BinaryOp::LE:
    case BinaryOp::GT:
    case BinaryOp::GE: {
      if (!RequireNumeric(L, B->getLHS()) || !RequireNumeric(R, B->getRHS()))
        return Type::voidTy();
      unifyOperands(B, L, R);
      B->setType(Type::intTy());
      return B->getType();
    }
    case BinaryOp::Add:
    case BinaryOp::Sub:
    case BinaryOp::Mul:
    case BinaryOp::Div: {
      if (!RequireNumeric(L, B->getLHS()) || !RequireNumeric(R, B->getRHS()))
        return Type::voidTy();
      Type Result = unifyOperands(B, L, R);
      B->setType(Result);
      return Result;
    }
    }
    return Type::voidTy();
  }

  /// Widens the int side of a mixed int/float pair; returns the common type.
  Type unifyOperands(BinaryExpr *B, Type L, Type R) {
    if (L == R)
      return L;
    if (L.isInt())
      B->setLHS(widen(B->takeLHS()));
    else
      B->setRHS(widen(B->takeRHS()));
    return Type::floatTy();
  }

  Type checkCall(CallExpr *C) {
    // Intrinsics available on every cell.
    if (C->getCallee() == "sqrt" || C->getCallee() == "abs") {
      if (C->getNumArgs() != 1) {
        Diags.error(C->getLoc(), "intrinsic '" + C->getCallee() +
                                     "' takes exactly one argument");
        return Type::voidTy();
      }
      Type ArgTy = checkExpr(C->getArg(0));
      if (ArgTy.isVoid())
        return ArgTy;
      if (!ArgTy.isScalarNumeric()) {
        Diags.error(C->getArg(0)->getLoc(),
                    "intrinsic argument must be numeric, found " +
                        ArgTy.str());
        return Type::voidTy();
      }
      if (ArgTy.isInt())
        C->setArg(0, widen(C->takeArg(0)));
      C->setType(Type::floatTy());
      return C->getType();
    }

    FunctionDecl *Callee = Section.lookup(C->getCallee());
    if (!Callee) {
      Diags.error(C->getLoc(), "call to unknown function '" + C->getCallee() +
                                   "' (not defined in section '" +
                                   Section.getName() + "')");
      return Type::voidTy();
    }
    const auto &Params = Callee->params();
    if (C->getNumArgs() != Params.size()) {
      Diags.error(C->getLoc(),
                  "function '" + C->getCallee() + "' takes " +
                      std::to_string(Params.size()) + " argument(s), " +
                      std::to_string(C->getNumArgs()) + " given");
      return Callee->getReturnType();
    }
    for (size_t I = 0, N = Params.size(); I != N; ++I) {
      Type Want = Params[I].Ty;
      if (Want.isArray()) {
        // Arrays are passed by name: the argument must be a whole-array
        // reference with a matching type.
        auto *Ref = dyn_cast<VarRefExpr>(C->getArg(I));
        const Symbol *Sym = Ref ? lookup(Ref->getName()) : nullptr;
        if (!Sym || Sym->Ty != Want) {
          Diags.error(C->getArg(I)->getLoc(),
                      "argument " + std::to_string(I + 1) + " of '" +
                          C->getCallee() + "' must be an array of type " +
                          Want.str());
        } else {
          Ref->setType(Want);
        }
        ++NodesChecked;
        continue;
      }
      Type Have = checkExpr(C->getArg(I));
      if (Have.isVoid())
        continue;
      if (Have == Want)
        continue;
      if (Want.isFloat() && Have.isInt()) {
        C->setArg(I, widen(C->takeArg(I)));
        continue;
      }
      Diags.error(C->getArg(I)->getLoc(),
                  "argument " + std::to_string(I + 1) + " of '" +
                      C->getCallee() + "' has type " + Have.str() +
                      " but " + Want.str() + " is required");
    }
    // This is the paper's motivating global check: the return value's type
    // must agree with its use at the call site. The type annotation below
    // is what enforces it at the enclosing expression.
    C->setType(Callee->getReturnType());
    return Callee->getReturnType();
  }

  SectionDecl &Section;
  FunctionDecl &F;
  DiagnosticEngine &Diags;
  uint64_t &NodesChecked;
  std::vector<std::map<std::string, Symbol>> Scopes;
  bool SawValueReturn = false;
};

} // namespace

bool Sema::checkSection(SectionDecl &Section) {
  unsigned ErrorsBefore = Diags.errorCount();
  // Duplicate function names within a section.
  for (size_t I = 0, N = Section.numFunctions(); I != N; ++I)
    for (size_t J = I + 1; J != N; ++J)
      if (Section.getFunction(I)->getName() ==
          Section.getFunction(J)->getName())
        Diags.error(Section.getFunction(J)->getLoc(),
                    "duplicate function '" +
                        Section.getFunction(J)->getName() + "' in section '" +
                        Section.getName() + "'");

  for (size_t I = 0, N = Section.numFunctions(); I != N; ++I) {
    FunctionChecker Checker(Section, *Section.getFunction(I), Diags,
                            NodesChecked);
    Checker.run();
  }
  return Diags.errorCount() == ErrorsBefore;
}

bool Sema::checkModule(ModuleDecl &Module) {
  unsigned ErrorsBefore = Diags.errorCount();
  for (size_t I = 0, N = Module.numSections(); I != N; ++I)
    for (size_t J = I + 1; J != N; ++J)
      if (Module.getSection(I)->getName() == Module.getSection(J)->getName())
        Diags.error(Module.getSection(J)->getLoc(),
                    "duplicate section '" + Module.getSection(J)->getName() +
                        "'");

  for (size_t I = 0, N = Module.numSections(); I != N; ++I)
    checkSection(*Module.getSection(I));
  return Diags.errorCount() == ErrorsBefore;
}
