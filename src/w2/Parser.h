//===- Parser.h - W2 parser -------------------------------------*- C++ -*-===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for the W2-like language (compiler phase 1).
/// Parsing runs sequentially in the master process: the master parses the
/// module once to learn its structure and set up the parallel compilation,
/// and syntax errors abort the compilation at this point (Section 3.2).
///
//===----------------------------------------------------------------------===//

#ifndef WARPC_W2_PARSER_H
#define WARPC_W2_PARSER_H

#include "support/Diagnostics.h"
#include "w2/AST.h"
#include "w2/Token.h"

#include <memory>
#include <vector>

namespace warpc {
namespace w2 {

/// Parses a token stream into a ModuleDecl.
///
/// The parser recovers from statement-level errors by skipping to the next
/// ';' or '}' so that a single run reports as many problems as possible.
/// A module is returned even when diagnostics were emitted; callers must
/// consult DiagnosticEngine::hasErrors() before using it.
class Parser {
public:
  Parser(std::vector<Token> Tokens, DiagnosticEngine &Diags);

  /// Parses one complete module.
  std::unique_ptr<ModuleDecl> parseModule();

private:
  // Token stream helpers.
  const Token &peek(size_t Ahead = 0) const;
  const Token &current() const { return peek(); }
  Token consume();
  bool check(TokenKind Kind) const { return current().is(Kind); }
  bool match(TokenKind Kind);
  bool expect(TokenKind Kind, const char *Context);
  void synchronize();

  // Grammar productions.
  std::unique_ptr<SectionDecl> parseSection();
  std::unique_ptr<FunctionDecl> parseFunction();
  bool parseParamList(std::vector<ParamDecl> &Params);
  bool parseType(Type &Out);
  std::unique_ptr<BlockStmt> parseBlock();
  StmtPtr parseStmt();
  StmtPtr parseVarDeclStmt();
  StmtPtr parseIf();
  StmtPtr parseFor();
  StmtPtr parseWhile();
  StmtPtr parseReturn();
  StmtPtr parseSend();
  StmtPtr parseReceive();
  StmtPtr parseAssignOrCall();
  bool parseChannel(Channel &Out);
  ExprPtr parseLValue();

  // Expression precedence climbing.
  ExprPtr parseExpr();
  ExprPtr parseBinaryRHS(int MinPrec, ExprPtr LHS);
  ExprPtr parseUnary();
  ExprPtr parsePrimary();

  std::vector<Token> Tokens;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
};

} // namespace w2
} // namespace warpc

#endif // WARPC_W2_PARSER_H
