//===- Inliner.cpp - Procedure inlining --------------------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "w2/Inliner.h"

#include "support/Casting.h"

#include <cassert>
#include <map>
#include <set>
#include <string>
#include <vector>

using namespace warpc;
using namespace warpc::w2;

namespace {

//===----------------------------------------------------------------------===//
// Cloning with renaming
//===----------------------------------------------------------------------===//

/// Maps callee-scope names (parameters, locals, induction variables) to
/// the fresh names they get inside the caller.
using RenameMap = std::map<std::string, std::string>;

std::string renamed(const RenameMap &Rename, const std::string &Name) {
  auto It = Rename.find(Name);
  return It == Rename.end() ? Name : It->second;
}

ExprPtr cloneExpr(const Expr *E, const RenameMap &Rename);

StmtPtr cloneStmt(const Stmt *S, const RenameMap &Rename);

ExprPtr cloneExpr(const Expr *E, const RenameMap &Rename) {
  switch (E->getKind()) {
  case Expr::Kind::IntLit:
    return std::make_unique<IntLitExpr>(E->getLoc(),
                                        cast<IntLitExpr>(E)->getValue());
  case Expr::Kind::FloatLit:
    return std::make_unique<FloatLitExpr>(E->getLoc(),
                                          cast<FloatLitExpr>(E)->getValue());
  case Expr::Kind::VarRef:
    return std::make_unique<VarRefExpr>(
        E->getLoc(), renamed(Rename, cast<VarRefExpr>(E)->getName()));
  case Expr::Kind::Index: {
    const auto *Idx = cast<IndexExpr>(E);
    return std::make_unique<IndexExpr>(E->getLoc(),
                                       renamed(Rename, Idx->getBaseName()),
                                       cloneExpr(Idx->getIndex(), Rename));
  }
  case Expr::Kind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    return std::make_unique<UnaryExpr>(E->getLoc(), U->getOp(),
                                       cloneExpr(U->getOperand(), Rename));
  }
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    return std::make_unique<BinaryExpr>(E->getLoc(), B->getOp(),
                                        cloneExpr(B->getLHS(), Rename),
                                        cloneExpr(B->getRHS(), Rename));
  }
  case Expr::Kind::Call: {
    const auto *C = cast<CallExpr>(E);
    std::vector<ExprPtr> Args;
    for (size_t A = 0; A != C->getNumArgs(); ++A)
      Args.push_back(cloneExpr(C->getArg(A), Rename));
    return std::make_unique<CallExpr>(E->getLoc(), C->getCallee(),
                                      std::move(Args));
  }
  case Expr::Kind::Cast:
    // The inliner runs before Sema; no casts exist yet.
    assert(false && "cast node in a pre-Sema tree");
    return nullptr;
  }
  assert(false && "unhandled expression kind");
  return nullptr;
}

StmtPtr cloneBlock(const BlockStmt *B, const RenameMap &Rename) {
  std::vector<StmtPtr> Stmts;
  for (const StmtPtr &Child : B->stmts())
    Stmts.push_back(cloneStmt(Child.get(), Rename));
  return std::make_unique<BlockStmt>(B->getLoc(), std::move(Stmts));
}

StmtPtr cloneStmt(const Stmt *S, const RenameMap &Rename) {
  switch (S->getKind()) {
  case Stmt::Kind::Block:
    return cloneBlock(cast<BlockStmt>(S), Rename);
  case Stmt::Kind::Decl: {
    // Every callee-scope name was pre-renamed from CalleeScan's collected
    // set before cloning starts, so the mapping already exists here.
    const VarDecl *D = cast<DeclStmt>(S)->getDecl();
    auto NewDecl = std::make_unique<VarDecl>(
        D->getLoc(), renamed(Rename, D->getName()), D->getType(),
        D->getInit() ? cloneExpr(D->getInit(), Rename) : nullptr);
    return std::make_unique<DeclStmt>(S->getLoc(), std::move(NewDecl));
  }
  case Stmt::Kind::Assign: {
    const auto *A = cast<AssignStmt>(S);
    return std::make_unique<AssignStmt>(S->getLoc(),
                                        cloneExpr(A->getTarget(), Rename),
                                        cloneExpr(A->getValue(), Rename));
  }
  case Stmt::Kind::If: {
    const auto *I = cast<IfStmt>(S);
    return std::make_unique<IfStmt>(
        S->getLoc(), cloneExpr(I->getCond(), Rename),
        cloneStmt(I->getThen(), Rename),
        I->getElse() ? cloneStmt(I->getElse(), Rename) : nullptr);
  }
  case Stmt::Kind::For: {
    const auto *F = cast<ForStmt>(S);
    return std::make_unique<ForStmt>(
        S->getLoc(), renamed(Rename, F->getIndVar()),
        cloneExpr(F->getLo(), Rename), cloneExpr(F->getHi(), Rename),
        F->getStep(), cloneStmt(F->getBody(), Rename));
  }
  case Stmt::Kind::While: {
    const auto *W = cast<WhileStmt>(S);
    return std::make_unique<WhileStmt>(
        S->getLoc(), cloneExpr(W->getCond(), Rename),
        cloneStmt(W->getBody(), Rename));
  }
  case Stmt::Kind::Return: {
    const auto *R = cast<ReturnStmt>(S);
    return std::make_unique<ReturnStmt>(
        S->getLoc(),
        R->getValue() ? cloneExpr(R->getValue(), Rename) : nullptr);
  }
  case Stmt::Kind::Send: {
    const auto *Send = cast<SendStmt>(S);
    return std::make_unique<SendStmt>(S->getLoc(), Send->getChannel(),
                                      cloneExpr(Send->getValue(), Rename));
  }
  case Stmt::Kind::Receive: {
    const auto *Recv = cast<ReceiveStmt>(S);
    return std::make_unique<ReceiveStmt>(S->getLoc(), Recv->getChannel(),
                                         cloneExpr(Recv->getTarget(),
                                                   Rename));
  }
  case Stmt::Kind::ExprStmt:
    return std::make_unique<ExprStmt>(
        S->getLoc(), cloneExpr(cast<ExprStmt>(S)->getExpr(), Rename));
  }
  assert(false && "unhandled statement kind");
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Eligibility
//===----------------------------------------------------------------------===//

/// Walks a callee body checking the simplicity constraints and collecting
/// every name it declares (locals and induction variables).
class CalleeScan {
public:
  bool Ok = true;
  std::set<std::string> DeclaredNames;
  unsigned TopLevelReturns = 0;

  void scan(const Stmt *S, bool TopLevel) {
    if (!S || !Ok)
      return;
    switch (S->getKind()) {
    case Stmt::Kind::Block:
      for (const StmtPtr &Child : cast<BlockStmt>(S)->stmts())
        scan(Child.get(), TopLevel);
      return;
    case Stmt::Kind::Decl:
      DeclaredNames.insert(cast<DeclStmt>(S)->getDecl()->getName());
      scanExpr(cast<DeclStmt>(S)->getDecl()->getInit());
      return;
    case Stmt::Kind::Assign:
      scanExpr(cast<AssignStmt>(S)->getTarget());
      scanExpr(cast<AssignStmt>(S)->getValue());
      return;
    case Stmt::Kind::If: {
      const auto *I = cast<IfStmt>(S);
      scanExpr(I->getCond());
      scan(I->getThen(), /*TopLevel=*/false);
      scan(I->getElse(), /*TopLevel=*/false);
      return;
    }
    case Stmt::Kind::For: {
      const auto *F = cast<ForStmt>(S);
      DeclaredNames.insert(F->getIndVar());
      scanExpr(F->getLo());
      scanExpr(F->getHi());
      scan(F->getBody(), /*TopLevel=*/false);
      return;
    }
    case Stmt::Kind::While:
      // While bodies may loop an unknown number of times; fine for
      // inlining semantically, but the simplicity bar excludes them to
      // keep expansion predictable.
      Ok = false;
      return;
    case Stmt::Kind::Return:
      if (!TopLevel) {
        Ok = false; // early return inside control flow: not expandable
        return;
      }
      ++TopLevelReturns;
      scanExpr(cast<ReturnStmt>(S)->getValue());
      return;
    case Stmt::Kind::Send:
    case Stmt::Kind::Receive:
      // Channel traffic must keep its global order; expansion at an
      // arbitrary call site could reorder it.
      Ok = false;
      return;
    case Stmt::Kind::ExprStmt:
      scanExpr(cast<ExprStmt>(S)->getExpr());
      return;
    }
  }

  void scanExpr(const Expr *E) {
    if (!E || !Ok)
      return;
    switch (E->getKind()) {
    case Expr::Kind::Call:
      // Calls inside the callee would need recursive expansion; a later
      // inliner pass may make this callee eligible once its own calls
      // are gone.
      Ok = false;
      return;
    case Expr::Kind::Index:
      scanExpr(cast<IndexExpr>(E)->getIndex());
      return;
    case Expr::Kind::Unary:
      scanExpr(cast<UnaryExpr>(E)->getOperand());
      return;
    case Expr::Kind::Binary:
      scanExpr(cast<BinaryExpr>(E)->getLHS());
      scanExpr(cast<BinaryExpr>(E)->getRHS());
      return;
    default:
      return;
    }
  }
};

} // namespace

bool w2::isInlinableCallee(const FunctionDecl &F,
                           const InlineOptions &Options) {
  if (F.lineCount() > Options.MaxCalleeLines)
    return false;
  if (F.getReturnType().isVoid())
    return false; // void helpers are usually channel glue; keep them
  for (const ParamDecl &P : F.params())
    if (P.Ty.isArray())
      return false;
  const BlockStmt *Body = F.getBody();
  if (!Body || Body->size() == 0)
    return false;
  CalleeScan Scan;
  Scan.scan(Body, /*TopLevel=*/true);
  if (!Scan.Ok || Scan.TopLevelReturns != 1)
    return false;
  // The single return must be the final top-level statement.
  return isa<ReturnStmt>(Body->get(Body->size() - 1));
}

namespace {

//===----------------------------------------------------------------------===//
// Expansion
//===----------------------------------------------------------------------===//

/// Performs expansions within one caller function.
class FunctionInliner {
public:
  FunctionInliner(const SectionDecl &Section, const InlineOptions &Options,
                  InlineStats &Stats, std::set<std::string> &ExpandedCallees)
      : Section(Section), Options(Options), Stats(Stats),
        ExpandedCallees(ExpandedCallees) {}

  /// Expands eligible calls in \p Caller; returns true on any change.
  bool run(FunctionDecl &Caller) {
    Changed = false;
    rewriteBlock(Caller.getBody());
    return Changed;
  }

private:
  /// Statements to splice in front of the statement under rewrite.
  std::vector<StmtPtr> Prefix;

  void rewriteBlock(BlockStmt *B) {
    auto &Stmts = B->stmtsMutable();
    for (size_t I = 0; I < Stmts.size(); ++I) {
      rewriteStmt(Stmts[I].get());
      if (Prefix.empty())
        continue;
      // Splice the expansion prefix before the current statement.
      Stmts.insert(Stmts.begin() + static_cast<std::ptrdiff_t>(I),
                   std::make_move_iterator(Prefix.begin()),
                   std::make_move_iterator(Prefix.end()));
      I += Prefix.size();
      Prefix.clear();
    }
  }

  void rewriteStmt(Stmt *S) {
    switch (S->getKind()) {
    case Stmt::Kind::Block:
      rewriteBlock(cast<BlockStmt>(S));
      return;
    case Stmt::Kind::Decl: {
      VarDecl *D = cast<DeclStmt>(S)->getDecl();
      if (D->getInit())
        rewriteExpr(D->initSlot());
      return;
    }
    case Stmt::Kind::Assign: {
      auto *A = cast<AssignStmt>(S);
      rewriteExpr(A->targetSlot());
      rewriteExpr(A->valueSlot());
      return;
    }
    case Stmt::Kind::If: {
      auto *I = cast<IfStmt>(S);
      rewriteExpr(I->condSlot());
      rewriteStmt(I->getThen());
      if (I->getElse())
        rewriteStmt(I->getElse());
      return;
    }
    case Stmt::Kind::For: {
      auto *F = cast<ForStmt>(S);
      // Bounds are evaluated once on loop entry, so hoisting their calls
      // in front of the loop preserves semantics. The body is a nested
      // block with its own splice point.
      rewriteExpr(F->loSlot());
      rewriteExpr(F->hiSlot());
      rewriteStmt(F->getBody());
      return;
    }
    case Stmt::Kind::While:
      // The condition re-evaluates every iteration; hoisting a call out
      // of it would change semantics, so only the body is rewritten.
      rewriteStmt(cast<WhileStmt>(S)->getBody());
      return;
    case Stmt::Kind::Return: {
      auto *R = cast<ReturnStmt>(S);
      if (R->getValue())
        rewriteExpr(R->valueSlot());
      return;
    }
    case Stmt::Kind::Send:
      rewriteExpr(cast<SendStmt>(S)->valueSlot());
      return;
    case Stmt::Kind::Receive:
      return; // target is an lvalue; calls cannot appear there
    case Stmt::Kind::ExprStmt:
      rewriteExpr(cast<ExprStmt>(S)->exprSlot());
      return;
    }
  }

  void rewriteExpr(ExprPtr &Slot) {
    if (!Slot)
      return;
    // Expand children first so nested calls (g(h(x))) inline inside-out.
    switch (Slot->getKind()) {
    case Expr::Kind::Index:
      rewriteExpr(cast<IndexExpr>(Slot.get())->indexSlot());
      break;
    case Expr::Kind::Unary:
      rewriteExpr(cast<UnaryExpr>(Slot.get())->operandSlot());
      break;
    case Expr::Kind::Binary:
      rewriteExpr(cast<BinaryExpr>(Slot.get())->lhsSlot());
      rewriteExpr(cast<BinaryExpr>(Slot.get())->rhsSlot());
      break;
    case Expr::Kind::Call: {
      auto *C = cast<CallExpr>(Slot.get());
      for (size_t A = 0; A != C->getNumArgs(); ++A)
        rewriteExpr(C->argSlot(A));
      break;
    }
    default:
      break;
    }

    auto *Call = dyn_cast<CallExpr>(Slot.get());
    if (!Call)
      return;
    const FunctionDecl *Callee = Section.lookup(Call->getCallee());
    if (!Callee || !isInlinableCallee(*Callee, Options))
      return;
    if (Call->getNumArgs() != Callee->params().size())
      return; // malformed call; leave it for Sema to diagnose
    ExpandedCallees.insert(Callee->getName());
    Slot = expand(Call, *Callee);
    ++Stats.CallsInlined;
    Changed = true;
  }

  /// Expands one call: emits parameter bindings and the renamed callee
  /// body into Prefix, and returns the replacement expression (a
  /// reference to the result temporary).
  ExprPtr expand(CallExpr *Call, const FunctionDecl &Callee) {
    SourceLoc Loc = Call->getLoc();
    unsigned Id = FreshCounter++;
    std::string Base = "__inl" + std::to_string(Id) + "_";

    // Fresh names for every callee-scope name.
    RenameMap Rename;
    CalleeScan Scan;
    Scan.scan(Callee.getBody(), /*TopLevel=*/true);
    for (const ParamDecl &P : Callee.params())
      Rename[P.Name] = Base + P.Name;
    for (const std::string &Name : Scan.DeclaredNames)
      Rename[Name] = Base + Name;

    // Parameter bindings: var __inlN_p: T = <argument>;
    for (size_t A = 0; A != Call->getNumArgs(); ++A) {
      const ParamDecl &P = Callee.params()[A];
      auto Decl = std::make_unique<VarDecl>(Loc, Rename[P.Name], P.Ty,
                                            Call->takeArg(A));
      Prefix.push_back(std::make_unique<DeclStmt>(Loc, std::move(Decl)));
    }

    // Result temporary (uninitialized; the return assignment fills it).
    std::string RetName = Base + "ret";
    {
      auto Decl = std::make_unique<VarDecl>(Loc, RetName,
                                            Callee.getReturnType(), nullptr);
      Prefix.push_back(std::make_unique<DeclStmt>(Loc, std::move(Decl)));
    }

    // Body: clone all statements but the trailing return, which becomes
    // an assignment to the result temporary.
    const BlockStmt *Body = Callee.getBody();
    for (size_t I = 0; I + 1 < Body->size(); ++I)
      Prefix.push_back(cloneStmt(Body->get(I), Rename));
    const auto *Ret = cast<ReturnStmt>(Body->get(Body->size() - 1));
    assert(Ret->getValue() && "inlinable callees return a value");
    Prefix.push_back(std::make_unique<AssignStmt>(
        Loc, std::make_unique<VarRefExpr>(Loc, RetName),
        cloneExpr(Ret->getValue(), Rename)));

    return std::make_unique<VarRefExpr>(Loc, RetName);
  }

  const SectionDecl &Section;
  const InlineOptions &Options;
  InlineStats &Stats;
  std::set<std::string> &ExpandedCallees;
  bool Changed = false;
  unsigned FreshCounter = 0;
};

/// Counts remaining calls to \p Name within a section.
unsigned countCallsTo(const SectionDecl &Section, const std::string &Name);

class CallCounter {
public:
  explicit CallCounter(const std::string &Name) : Name(Name) {}
  unsigned Count = 0;

  void walkStmt(const Stmt *S) {
    if (!S)
      return;
    switch (S->getKind()) {
    case Stmt::Kind::Block:
      for (const StmtPtr &C : cast<BlockStmt>(S)->stmts())
        walkStmt(C.get());
      return;
    case Stmt::Kind::Decl:
      walkExpr(cast<DeclStmt>(S)->getDecl()->getInit());
      return;
    case Stmt::Kind::Assign:
      walkExpr(cast<AssignStmt>(S)->getTarget());
      walkExpr(cast<AssignStmt>(S)->getValue());
      return;
    case Stmt::Kind::If:
      walkExpr(cast<IfStmt>(S)->getCond());
      walkStmt(cast<IfStmt>(S)->getThen());
      walkStmt(cast<IfStmt>(S)->getElse());
      return;
    case Stmt::Kind::For:
      walkExpr(cast<ForStmt>(S)->getLo());
      walkExpr(cast<ForStmt>(S)->getHi());
      walkStmt(cast<ForStmt>(S)->getBody());
      return;
    case Stmt::Kind::While:
      walkExpr(cast<WhileStmt>(S)->getCond());
      walkStmt(cast<WhileStmt>(S)->getBody());
      return;
    case Stmt::Kind::Return:
      walkExpr(cast<ReturnStmt>(S)->getValue());
      return;
    case Stmt::Kind::Send:
      walkExpr(cast<SendStmt>(S)->getValue());
      return;
    case Stmt::Kind::Receive:
      return;
    case Stmt::Kind::ExprStmt:
      walkExpr(cast<ExprStmt>(S)->getExpr());
      return;
    }
  }

  void walkExpr(const Expr *E) {
    if (!E)
      return;
    switch (E->getKind()) {
    case Expr::Kind::Call: {
      const auto *C = cast<CallExpr>(E);
      if (C->getCallee() == Name)
        ++Count;
      for (size_t A = 0; A != C->getNumArgs(); ++A)
        walkExpr(C->getArg(A));
      return;
    }
    case Expr::Kind::Index:
      walkExpr(cast<IndexExpr>(E)->getIndex());
      return;
    case Expr::Kind::Unary:
      walkExpr(cast<UnaryExpr>(E)->getOperand());
      return;
    case Expr::Kind::Binary:
      walkExpr(cast<BinaryExpr>(E)->getLHS());
      walkExpr(cast<BinaryExpr>(E)->getRHS());
      return;
    default:
      return;
    }
  }

private:
  std::string Name;
};

unsigned countCallsTo(const SectionDecl &Section, const std::string &Name) {
  CallCounter Counter(Name);
  for (size_t F = 0; F != Section.numFunctions(); ++F)
    Counter.walkStmt(Section.getFunction(F)->getBody());
  return Counter.Count;
}

} // namespace

InlineStats w2::inlineSmallFunctions(ModuleDecl &Module,
                                     const InlineOptions &Options) {
  InlineStats Stats;
  // Helpers that were expanded somewhere; only these may be removed.
  std::set<std::string> ExpandedCallees;
  for (uint32_t Pass = 0; Pass != Options.MaxPasses; ++Pass) {
    bool Changed = false;
    for (size_t S = 0; S != Module.numSections(); ++S) {
      SectionDecl *Section = Module.getSection(S);
      FunctionInliner Inliner(*Section, Options, Stats, ExpandedCallees);
      for (size_t F = 0; F != Section->numFunctions(); ++F) {
        FunctionDecl *Caller = Section->getFunction(F);
        // A function never inlines into itself (recursion guard): the
        // eligibility bar already rejects callees containing calls, so a
        // self-recursive function is simply not a candidate.
        Changed |= Inliner.run(*Caller);
      }
    }
    if (Changed)
      ++Stats.Passes;
    else
      break;
  }

  if (Options.RemoveUncalledHelpers) {
    for (size_t S = 0; S != Module.numSections(); ++S) {
      SectionDecl *Section = Module.getSection(S);
      // Iterate backwards so removals do not shift pending indices. Keep
      // at least one function per section.
      for (size_t F = Section->numFunctions(); F-- > 0;) {
        if (Section->numFunctions() == 1)
          break;
        FunctionDecl *Candidate = Section->getFunction(F);
        // Only helpers that actually got expanded somewhere are dropped;
        // never-called entry functions stay downloadable.
        if (!ExpandedCallees.count(Candidate->getName()))
          continue;
        if (countCallsTo(*Section, Candidate->getName()) != 0)
          continue;
        Section->removeFunction(F);
        ++Stats.HelpersRemoved;
      }
    }
  }
  return Stats;
}
