//===- Inliner.h - Procedure inlining ---------------------------*- C++ -*-===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Procedure inlining, the extension the paper proposes in Section 5.1:
/// "procedure inlining is an important optimization that should be
/// included in the compiler if the source programs consists of many
/// small functions. Not only will procedure inlining allow the code
/// generator to perform a better job, the increase in size of each
/// function operated upon will also improve the speedup obtained by the
/// parallel compiler."
///
/// The inliner runs on the parsed (pre-Sema) AST, because it is the
/// master's partitioning step that benefits: bigger functions mean
/// bigger, better-balanced parallel tasks. Only calls to *simple*
/// callees are expanded — straight-line/loop bodies with one trailing
/// return, scalar parameters, and no channel traffic or further calls —
/// which keeps expansion a pure statement-prefix rewrite.
///
//===----------------------------------------------------------------------===//

#ifndef WARPC_W2_INLINER_H
#define WARPC_W2_INLINER_H

#include "w2/AST.h"

#include <cstdint>

namespace warpc {
namespace w2 {

/// Tuning knobs for the inliner.
struct InlineOptions {
  /// Callees up to this many source lines are candidates.
  uint32_t MaxCalleeLines = 24;
  /// Repeat expansion until no candidate call remains (callees whose
  /// bodies contain calls become eligible after their own callees are
  /// expanded); bounded by this many passes.
  uint32_t MaxPasses = 4;
  /// Drop helper functions that are no longer called from anywhere after
  /// inlining. On Warp every remaining function is still downloadable;
  /// removal only applies to helpers every use of which was expanded.
  bool RemoveUncalledHelpers = true;
};

/// What the inliner did.
struct InlineStats {
  uint32_t CallsInlined = 0;
  uint32_t HelpersRemoved = 0;
  uint32_t Passes = 0;
};

/// Expands eligible calls in every section of \p Module. Must run after
/// parsing and before Sema (Sema re-checks and re-types the expanded
/// tree). Source locations of inlined statements point at the callee.
InlineStats inlineSmallFunctions(ModuleDecl &Module,
                                 const InlineOptions &Options = {});

/// Returns true when \p F is simple enough to expand: scalar parameters
/// only, no send/receive, no calls, no while loops, and exactly one
/// return as the final top-level statement.
bool isInlinableCallee(const FunctionDecl &F, const InlineOptions &Options);

} // namespace w2
} // namespace warpc

#endif // WARPC_W2_INLINER_H
