//===- Lexer.h - W2 lexer ---------------------------------------*- C++ -*-===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-written lexer for the W2-like language. Lexing is part of compiler
/// phase 1, which the paper keeps sequential: it accounts for less than 5%
/// of total compilation time (Section 3.4).
///
//===----------------------------------------------------------------------===//

#ifndef WARPC_W2_LEXER_H
#define WARPC_W2_LEXER_H

#include "support/Diagnostics.h"
#include "w2/Token.h"

#include <cstdint>
#include <string_view>
#include <vector>

namespace warpc {
namespace w2 {

/// Converts a W2 source buffer into a token stream.
///
/// The lexer never throws; malformed characters produce diagnostics and an
/// Invalid token, and lexing continues so that the parser can report as
/// many errors as possible in one pass.
class Lexer {
public:
  Lexer(std::string_view Source, DiagnosticEngine &Diags);

  /// Lexes the entire buffer, appending a final Eof token.
  std::vector<Token> lexAll();

  /// Number of tokens produced so far, used as a phase-1 work metric.
  uint64_t tokenCount() const { return NumTokens; }

private:
  Token lexToken();
  Token makeToken(TokenKind Kind, SourceLoc Loc, std::string Text = "");
  void skipWhitespaceAndComments();
  Token lexIdentifierOrKeyword();
  Token lexNumber();

  char peek(size_t Ahead = 0) const;
  char advance();
  bool atEnd() const { return Pos >= Source.size(); }
  SourceLoc loc() const { return SourceLoc(Line, Column); }

  std::string_view Source;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  uint32_t Line = 1;
  uint32_t Column = 1;
  uint64_t NumTokens = 0;
};

} // namespace w2
} // namespace warpc

#endif // WARPC_W2_LEXER_H
