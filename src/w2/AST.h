//===- AST.h - W2 abstract syntax tree --------------------------*- C++ -*-===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Abstract syntax tree for the W2-like language. The tree mirrors the
/// structure of a Warp program described in Section 3.1 of the paper:
/// a module consists of section programs, each section program contains
/// one or more functions, and section programs execute independently on
/// groups of processing cells.
///
//===----------------------------------------------------------------------===//

#ifndef WARPC_W2_AST_H
#define WARPC_W2_AST_H

#include "support/Casting.h"
#include "support/SourceLoc.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace warpc {
namespace w2 {

//===----------------------------------------------------------------------===//
// Types
//===----------------------------------------------------------------------===//

/// Scalar kinds of the W2 type system.
enum class ScalarKind { Int, Float, Void };

/// A W2 type: a scalar, or a one-dimensional array of a scalar. Warp cell
/// memories are small and the language keeps arrays one-dimensional with
/// static extents.
class Type {
public:
  Type() : Scalar(ScalarKind::Void), ArraySize(0) {}

  static Type intTy() { return Type(ScalarKind::Int, 0); }
  static Type floatTy() { return Type(ScalarKind::Float, 0); }
  static Type voidTy() { return Type(ScalarKind::Void, 0); }
  static Type arrayTy(ScalarKind Elem, uint32_t Size) {
    assert(Elem != ScalarKind::Void && "array of void");
    assert(Size > 0 && "zero-sized array");
    return Type(Elem, Size);
  }

  bool isArray() const { return ArraySize != 0; }
  bool isInt() const { return !isArray() && Scalar == ScalarKind::Int; }
  bool isFloat() const { return !isArray() && Scalar == ScalarKind::Float; }
  bool isVoid() const { return !isArray() && Scalar == ScalarKind::Void; }
  bool isScalarNumeric() const { return isInt() || isFloat(); }

  ScalarKind scalar() const { return Scalar; }
  uint32_t arraySize() const { return ArraySize; }

  /// The scalar type of an array's elements.
  Type elementType() const {
    assert(isArray() && "elementType of non-array");
    return Type(Scalar, 0);
  }

  /// Renders "int", "float", "float[64]", "void".
  std::string str() const;

  friend bool operator==(const Type &A, const Type &B) {
    return A.Scalar == B.Scalar && A.ArraySize == B.ArraySize;
  }
  friend bool operator!=(const Type &A, const Type &B) { return !(A == B); }

private:
  Type(ScalarKind Scalar, uint32_t ArraySize)
      : Scalar(Scalar), ArraySize(ArraySize) {}

  ScalarKind Scalar;
  uint32_t ArraySize;
};

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

/// Base class of all W2 expressions. The semantic checker annotates every
/// expression with its type and inserts explicit CastExpr nodes for the
/// implicit int-to-float widenings, so lowering never needs to coerce.
class Expr {
public:
  enum class Kind {
    IntLit,
    FloatLit,
    VarRef,
    Index,
    Unary,
    Binary,
    Call,
    Cast,
  };

  virtual ~Expr() = default;

  Kind getKind() const { return TheKind; }
  SourceLoc getLoc() const { return Loc; }

  /// Type assigned by Sema; Void until semantic checking runs.
  Type getType() const { return Ty; }
  void setType(Type T) { Ty = T; }

protected:
  Expr(Kind TheKind, SourceLoc Loc) : TheKind(TheKind), Loc(Loc) {}

private:
  Kind TheKind;
  SourceLoc Loc;
  Type Ty;
};

using ExprPtr = std::unique_ptr<Expr>;

/// An integer literal.
class IntLitExpr : public Expr {
public:
  IntLitExpr(SourceLoc Loc, int64_t Value)
      : Expr(Kind::IntLit, Loc), Value(Value) {}

  int64_t getValue() const { return Value; }

  static bool classof(const Expr *E) { return E->getKind() == Kind::IntLit; }

private:
  int64_t Value;
};

/// A floating-point literal.
class FloatLitExpr : public Expr {
public:
  FloatLitExpr(SourceLoc Loc, double Value)
      : Expr(Kind::FloatLit, Loc), Value(Value) {}

  double getValue() const { return Value; }

  static bool classof(const Expr *E) { return E->getKind() == Kind::FloatLit; }

private:
  double Value;
};

/// A reference to a scalar variable, parameter, or whole array.
class VarRefExpr : public Expr {
public:
  VarRefExpr(SourceLoc Loc, std::string Name)
      : Expr(Kind::VarRef, Loc), Name(std::move(Name)) {}

  const std::string &getName() const { return Name; }

  static bool classof(const Expr *E) { return E->getKind() == Kind::VarRef; }

private:
  std::string Name;
};

/// An array element access a[i].
class IndexExpr : public Expr {
public:
  IndexExpr(SourceLoc Loc, std::string BaseName, ExprPtr Index)
      : Expr(Kind::Index, Loc), BaseName(std::move(BaseName)),
        Index(std::move(Index)) {}

  const std::string &getBaseName() const { return BaseName; }
  Expr *getIndex() const { return Index.get(); }
  /// Owning slot of the index, for AST rewriters (Sema, the inliner).
  ExprPtr &indexSlot() { return Index; }

  static bool classof(const Expr *E) { return E->getKind() == Kind::Index; }

private:
  std::string BaseName;
  ExprPtr Index;
};

/// Unary operators.
enum class UnaryOp { Neg, Not };

class UnaryExpr : public Expr {
public:
  UnaryExpr(SourceLoc Loc, UnaryOp Op, ExprPtr Operand)
      : Expr(Kind::Unary, Loc), Op(Op), Operand(std::move(Operand)) {}

  UnaryOp getOp() const { return Op; }
  Expr *getOperand() const { return Operand.get(); }
  ExprPtr takeOperand() { return std::move(Operand); }
  /// Owning slot of the operand, for AST rewriters.
  ExprPtr &operandSlot() { return Operand; }

  static bool classof(const Expr *E) { return E->getKind() == Kind::Unary; }

private:
  UnaryOp Op;
  ExprPtr Operand;
};

/// Binary operators in increasing precedence groups.
enum class BinaryOp {
  LOr,
  LAnd,
  EQ,
  NE,
  LT,
  LE,
  GT,
  GE,
  Add,
  Sub,
  Mul,
  Div,
  Rem,
};

/// Returns the operator's source spelling ("+", "&&", ...).
const char *binaryOpSpelling(BinaryOp Op);

class BinaryExpr : public Expr {
public:
  BinaryExpr(SourceLoc Loc, BinaryOp Op, ExprPtr LHS, ExprPtr RHS)
      : Expr(Kind::Binary, Loc), Op(Op), LHS(std::move(LHS)),
        RHS(std::move(RHS)) {}

  BinaryOp getOp() const { return Op; }
  Expr *getLHS() const { return LHS.get(); }
  Expr *getRHS() const { return RHS.get(); }

  /// Replaces an operand (used by Sema to wrap operands in casts).
  void setLHS(ExprPtr E) { LHS = std::move(E); }
  void setRHS(ExprPtr E) { RHS = std::move(E); }
  ExprPtr takeLHS() { return std::move(LHS); }
  ExprPtr takeRHS() { return std::move(RHS); }
  /// Owning slots, for AST rewriters.
  ExprPtr &lhsSlot() { return LHS; }
  ExprPtr &rhsSlot() { return RHS; }

  static bool classof(const Expr *E) { return E->getKind() == Kind::Binary; }

private:
  BinaryOp Op;
  ExprPtr LHS, RHS;
};

/// A call to another function in the same section, or to the sqrt/abs
/// intrinsics.
class CallExpr : public Expr {
public:
  CallExpr(SourceLoc Loc, std::string Callee, std::vector<ExprPtr> Args)
      : Expr(Kind::Call, Loc), Callee(std::move(Callee)),
        Args(std::move(Args)) {}

  const std::string &getCallee() const { return Callee; }
  size_t getNumArgs() const { return Args.size(); }
  Expr *getArg(size_t I) const { return Args[I].get(); }
  void setArg(size_t I, ExprPtr E) { Args[I] = std::move(E); }
  ExprPtr takeArg(size_t I) { return std::move(Args[I]); }
  /// Owning slot of argument \p I, for AST rewriters.
  ExprPtr &argSlot(size_t I) { return Args[I]; }

  static bool classof(const Expr *E) { return E->getKind() == Kind::Call; }

private:
  std::string Callee;
  std::vector<ExprPtr> Args;
};

/// An implicit conversion made explicit by Sema. Only int-to-float
/// widening exists in W2.
class CastExpr : public Expr {
public:
  CastExpr(SourceLoc Loc, ExprPtr Operand)
      : Expr(Kind::Cast, Loc), Operand(std::move(Operand)) {
    setType(Type::floatTy());
  }

  Expr *getOperand() const { return Operand.get(); }

  static bool classof(const Expr *E) { return E->getKind() == Kind::Cast; }

private:
  ExprPtr Operand;
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

class VarDecl;

/// Base class of all W2 statements.
class Stmt {
public:
  enum class Kind {
    Block,
    Decl,
    Assign,
    If,
    For,
    While,
    Return,
    Send,
    Receive,
    ExprStmt,
  };

  virtual ~Stmt() = default;

  Kind getKind() const { return TheKind; }
  SourceLoc getLoc() const { return Loc; }

protected:
  Stmt(Kind TheKind, SourceLoc Loc) : TheKind(TheKind), Loc(Loc) {}

private:
  Kind TheKind;
  SourceLoc Loc;
};

using StmtPtr = std::unique_ptr<Stmt>;

/// A brace-enclosed statement list introducing a scope.
class BlockStmt : public Stmt {
public:
  BlockStmt(SourceLoc Loc, std::vector<StmtPtr> Stmts)
      : Stmt(Kind::Block, Loc), Stmts(std::move(Stmts)) {}

  size_t size() const { return Stmts.size(); }
  Stmt *get(size_t I) const { return Stmts[I].get(); }
  const std::vector<StmtPtr> &stmts() const { return Stmts; }
  /// Mutable statement list, for AST rewriters (the inliner splices
  /// expansion prefixes here).
  std::vector<StmtPtr> &stmtsMutable() { return Stmts; }

  static bool classof(const Stmt *S) { return S->getKind() == Kind::Block; }

private:
  std::vector<StmtPtr> Stmts;
};

/// A local variable declaration with optional initializer.
class VarDecl {
public:
  VarDecl(SourceLoc Loc, std::string Name, Type Ty, ExprPtr Init)
      : Loc(Loc), Name(std::move(Name)), Ty(Ty), Init(std::move(Init)) {}

  SourceLoc getLoc() const { return Loc; }
  const std::string &getName() const { return Name; }
  Type getType() const { return Ty; }
  Expr *getInit() const { return Init.get(); }
  void setInit(ExprPtr E) { Init = std::move(E); }
  ExprPtr takeInit() { return std::move(Init); }
  /// Owning slot of the initializer, for AST rewriters.
  ExprPtr &initSlot() { return Init; }

private:
  SourceLoc Loc;
  std::string Name;
  Type Ty;
  ExprPtr Init;
};

class DeclStmt : public Stmt {
public:
  DeclStmt(SourceLoc Loc, std::unique_ptr<VarDecl> Decl)
      : Stmt(Kind::Decl, Loc), Decl(std::move(Decl)) {}

  VarDecl *getDecl() const { return Decl.get(); }

  static bool classof(const Stmt *S) { return S->getKind() == Kind::Decl; }

private:
  std::unique_ptr<VarDecl> Decl;
};

/// An assignment to a scalar variable or array element. The target is a
/// VarRefExpr or IndexExpr.
class AssignStmt : public Stmt {
public:
  AssignStmt(SourceLoc Loc, ExprPtr Target, ExprPtr Value)
      : Stmt(Kind::Assign, Loc), Target(std::move(Target)),
        Value(std::move(Value)) {}

  Expr *getTarget() const { return Target.get(); }
  Expr *getValue() const { return Value.get(); }
  void setValue(ExprPtr E) { Value = std::move(E); }
  ExprPtr takeValue() { return std::move(Value); }
  /// Owning slots, for AST rewriters.
  ExprPtr &targetSlot() { return Target; }
  ExprPtr &valueSlot() { return Value; }

  static bool classof(const Stmt *S) { return S->getKind() == Kind::Assign; }

private:
  ExprPtr Target, Value;
};

class IfStmt : public Stmt {
public:
  IfStmt(SourceLoc Loc, ExprPtr Cond, StmtPtr Then, StmtPtr Else)
      : Stmt(Kind::If, Loc), Cond(std::move(Cond)), Then(std::move(Then)),
        Else(std::move(Else)) {}

  Expr *getCond() const { return Cond.get(); }
  Stmt *getThen() const { return Then.get(); }
  Stmt *getElse() const { return Else.get(); }
  /// Owning slot of the condition, for AST rewriters.
  ExprPtr &condSlot() { return Cond; }

  static bool classof(const Stmt *S) { return S->getKind() == Kind::If; }

private:
  ExprPtr Cond;
  StmtPtr Then, Else;
};

/// A counted loop: "for i = lo to hi [by step] { ... }". The induction
/// variable is an implicitly declared int, scoped to the loop body; "by"
/// takes a (possibly negative) integer literal step, defaulting to 1.
class ForStmt : public Stmt {
public:
  ForStmt(SourceLoc Loc, std::string IndVar, ExprPtr Lo, ExprPtr Hi,
          int64_t Step, StmtPtr Body)
      : Stmt(Kind::For, Loc), IndVar(std::move(IndVar)), Lo(std::move(Lo)),
        Hi(std::move(Hi)), Step(Step), Body(std::move(Body)) {}

  const std::string &getIndVar() const { return IndVar; }
  Expr *getLo() const { return Lo.get(); }
  Expr *getHi() const { return Hi.get(); }
  int64_t getStep() const { return Step; }
  Stmt *getBody() const { return Body.get(); }
  /// Owning slots of the bounds, for AST rewriters.
  ExprPtr &loSlot() { return Lo; }
  ExprPtr &hiSlot() { return Hi; }

  static bool classof(const Stmt *S) { return S->getKind() == Kind::For; }

private:
  std::string IndVar;
  ExprPtr Lo, Hi;
  int64_t Step;
  StmtPtr Body;
};

class WhileStmt : public Stmt {
public:
  WhileStmt(SourceLoc Loc, ExprPtr Cond, StmtPtr Body)
      : Stmt(Kind::While, Loc), Cond(std::move(Cond)), Body(std::move(Body)) {}

  Expr *getCond() const { return Cond.get(); }
  Stmt *getBody() const { return Body.get(); }

  static bool classof(const Stmt *S) { return S->getKind() == Kind::While; }

private:
  ExprPtr Cond;
  StmtPtr Body;
};

class ReturnStmt : public Stmt {
public:
  ReturnStmt(SourceLoc Loc, ExprPtr Value)
      : Stmt(Kind::Return, Loc), Value(std::move(Value)) {}

  Expr *getValue() const { return Value.get(); }
  void setValue(ExprPtr E) { Value = std::move(E); }
  ExprPtr takeValue() { return std::move(Value); }
  /// Owning slot of the returned value, for AST rewriters.
  ExprPtr &valueSlot() { return Value; }

  static bool classof(const Stmt *S) { return S->getKind() == Kind::Return; }

private:
  ExprPtr Value;
};

/// The systolic communication channels of a Warp cell.
enum class Channel { X, Y };

/// Returns "X" or "Y".
const char *channelName(Channel C);

/// "send(X, expr);" — enqueue a value on an output channel.
class SendStmt : public Stmt {
public:
  SendStmt(SourceLoc Loc, Channel Chan, ExprPtr Value)
      : Stmt(Kind::Send, Loc), Chan(Chan), Value(std::move(Value)) {}

  Channel getChannel() const { return Chan; }
  Expr *getValue() const { return Value.get(); }
  void setValue(ExprPtr E) { Value = std::move(E); }
  ExprPtr takeValue() { return std::move(Value); }
  /// Owning slot of the sent value, for AST rewriters.
  ExprPtr &valueSlot() { return Value; }

  static bool classof(const Stmt *S) { return S->getKind() == Kind::Send; }

private:
  Channel Chan;
  ExprPtr Value;
};

/// "receive(X, lvalue);" — dequeue a value from an input channel.
class ReceiveStmt : public Stmt {
public:
  ReceiveStmt(SourceLoc Loc, Channel Chan, ExprPtr Target)
      : Stmt(Kind::Receive, Loc), Chan(Chan), Target(std::move(Target)) {}

  Channel getChannel() const { return Chan; }
  Expr *getTarget() const { return Target.get(); }

  static bool classof(const Stmt *S) { return S->getKind() == Kind::Receive; }

private:
  Channel Chan;
  ExprPtr Target;
};

/// A call evaluated for its side effects.
class ExprStmt : public Stmt {
public:
  ExprStmt(SourceLoc Loc, ExprPtr E)
      : Stmt(Kind::ExprStmt, Loc), E(std::move(E)) {}

  Expr *getExpr() const { return E.get(); }
  /// Owning slot of the expression, for AST rewriters.
  ExprPtr &exprSlot() { return E; }

  static bool classof(const Stmt *S) { return S->getKind() == Kind::ExprStmt; }

private:
  ExprPtr E;
};

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

/// A formal parameter. Array parameters are passed by reference into the
/// cell's local memory.
struct ParamDecl {
  SourceLoc Loc;
  std::string Name;
  Type Ty;
};

/// One W2 function. Functions are the unit of parallel compilation: each
/// function master compiles exactly one of these (paper Section 3.2).
class FunctionDecl {
public:
  FunctionDecl(SourceLoc Loc, std::string Name, std::vector<ParamDecl> Params,
               Type RetTy, std::unique_ptr<BlockStmt> Body, SourceLoc EndLoc)
      : Loc(Loc), EndLoc(EndLoc), Name(std::move(Name)),
        Params(std::move(Params)), RetTy(RetTy), Body(std::move(Body)) {}

  SourceLoc getLoc() const { return Loc; }
  SourceLoc getEndLoc() const { return EndLoc; }
  const std::string &getName() const { return Name; }
  const std::vector<ParamDecl> &params() const { return Params; }
  Type getReturnType() const { return RetTy; }
  BlockStmt *getBody() const { return Body.get(); }

  /// Source lines spanned by the function, the paper's rough size metric
  /// ("we use the number of lines as a rough indication of the size").
  uint32_t lineCount() const {
    if (!Loc.isValid() || !EndLoc.isValid() || EndLoc.Line < Loc.Line)
      return 1;
    return EndLoc.Line - Loc.Line + 1;
  }

private:
  SourceLoc Loc, EndLoc;
  std::string Name;
  std::vector<ParamDecl> Params;
  Type RetTy;
  std::unique_ptr<BlockStmt> Body;
};

/// One section program: a group of cells running the contained functions.
class SectionDecl {
public:
  SectionDecl(SourceLoc Loc, std::string Name, uint32_t NumCells)
      : Loc(Loc), Name(std::move(Name)), NumCells(NumCells) {}

  SourceLoc getLoc() const { return Loc; }
  const std::string &getName() const { return Name; }
  uint32_t getNumCells() const { return NumCells; }

  void addFunction(std::unique_ptr<FunctionDecl> F) {
    Functions.push_back(std::move(F));
  }
  size_t numFunctions() const { return Functions.size(); }
  FunctionDecl *getFunction(size_t I) const { return Functions[I].get(); }

  /// Removes the function at \p I (used by the inliner to drop helpers
  /// whose every call was expanded).
  void removeFunction(size_t I) {
    assert(I < Functions.size() && "function index out of range");
    Functions.erase(Functions.begin() +
                    static_cast<std::ptrdiff_t>(I));
  }

  /// Finds a function by name; null if absent.
  FunctionDecl *lookup(const std::string &Name) const;

private:
  SourceLoc Loc;
  std::string Name;
  uint32_t NumCells;
  std::vector<std::unique_ptr<FunctionDecl>> Functions;
};

/// A whole W2 module, the unit the user asks the compiler to translate.
class ModuleDecl {
public:
  explicit ModuleDecl(SourceLoc Loc, std::string Name)
      : Loc(Loc), Name(std::move(Name)) {}

  SourceLoc getLoc() const { return Loc; }
  const std::string &getName() const { return Name; }

  void addSection(std::unique_ptr<SectionDecl> S) {
    Sections.push_back(std::move(S));
  }
  size_t numSections() const { return Sections.size(); }
  SectionDecl *getSection(size_t I) const { return Sections[I].get(); }

  /// Total number of functions across all sections.
  size_t numFunctions() const;

private:
  SourceLoc Loc;
  std::string Name;
  std::vector<std::unique_ptr<SectionDecl>> Sections;
};

//===----------------------------------------------------------------------===//
// AST utilities
//===----------------------------------------------------------------------===//

/// Counts every Expr and Stmt node in a function body; a phase-1 work
/// metric for the cost model.
uint64_t countAstNodes(const FunctionDecl &F);

/// Maximum loop nesting depth of a function body. Together with the line
/// count this drives the paper's Section 4.3 load-balancing heuristic
/// ("a combination of lines of code and loop nesting can serve as
/// approximation of the compilation time").
uint32_t maxLoopDepth(const FunctionDecl &F);

/// Total number of loops in a function body.
uint32_t countLoops(const FunctionDecl &F);

} // namespace w2
} // namespace warpc

#endif // WARPC_W2_AST_H
