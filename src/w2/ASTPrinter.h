//===- ASTPrinter.h - W2 source printer -------------------------*- C++ -*-===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Prints an AST back as W2 source text. The output re-parses to an
/// equivalent tree (round-trip tested), which lets AST-level transforms
/// like the inliner compose with any consumer that takes source text
/// (the thread runner, the job builder, the CLI).
///
//===----------------------------------------------------------------------===//

#ifndef WARPC_W2_ASTPRINTER_H
#define WARPC_W2_ASTPRINTER_H

#include "w2/AST.h"

#include <string>

namespace warpc {
namespace w2 {

/// Renders a whole module as compilable W2 source. Sema-inserted casts
/// print as their operand (they are implicit in the source language).
std::string printModule(const ModuleDecl &Module);

/// Renders one function (used by tests and dumps).
std::string printFunction(const FunctionDecl &F);

/// Renders one expression with minimal parentheses.
std::string printExpr(const Expr &E);

} // namespace w2
} // namespace warpc

#endif // WARPC_W2_ASTPRINTER_H
