//===- ASTPrinter.cpp - W2 source printer -----------------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "w2/ASTPrinter.h"

#include "support/Casting.h"
#include "support/StringUtils.h"

#include <cstdio>

using namespace warpc;
using namespace warpc::w2;

namespace {

/// Binding power used to decide parenthesization; mirrors the parser's
/// precedence table.
int precedenceOf(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::LOr:
    return 1;
  case BinaryOp::LAnd:
    return 2;
  case BinaryOp::EQ:
  case BinaryOp::NE:
    return 3;
  case BinaryOp::LT:
  case BinaryOp::LE:
  case BinaryOp::GT:
  case BinaryOp::GE:
    return 4;
  case BinaryOp::Add:
  case BinaryOp::Sub:
    return 5;
  case BinaryOp::Mul:
  case BinaryOp::Div:
  case BinaryOp::Rem:
    return 6;
  }
  return 0;
}

std::string renderFloat(double Value) {
  // Always keep a decimal point so the literal re-lexes as a float.
  char Buffer[64];
  std::snprintf(Buffer, sizeof(Buffer), "%g", Value);
  std::string Text = Buffer;
  if (Text.find('.') == std::string::npos &&
      Text.find('e') == std::string::npos &&
      Text.find("inf") == std::string::npos &&
      Text.find("nan") == std::string::npos)
    Text += ".0";
  return Text;
}

/// Prints \p E, parenthesizing when its binding is looser than the
/// context's minimum precedence.
std::string render(const Expr &E, int MinPrec) {
  switch (E.getKind()) {
  case Expr::Kind::IntLit:
    return std::to_string(cast<IntLitExpr>(&E)->getValue());
  case Expr::Kind::FloatLit:
    return renderFloat(cast<FloatLitExpr>(&E)->getValue());
  case Expr::Kind::VarRef:
    return cast<VarRefExpr>(&E)->getName();
  case Expr::Kind::Index: {
    const auto *Idx = cast<IndexExpr>(&E);
    return Idx->getBaseName() + "[" + render(*Idx->getIndex(), 1) + "]";
  }
  case Expr::Kind::Unary: {
    const auto *U = cast<UnaryExpr>(&E);
    // W2 has no unary-minus-literal fusion pitfalls, but "- -x" must not
    // fuse into "--x" (no such token exists; still keep a space).
    const char *Op = U->getOp() == UnaryOp::Neg ? "-" : "!";
    return std::string(Op) + render(*U->getOperand(), 7);
  }
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(&E);
    int Prec = precedenceOf(B->getOp());
    // Left associative: the right child needs strictly tighter binding.
    std::string Text = render(*B->getLHS(), Prec) + " " +
                       binaryOpSpelling(B->getOp()) + " " +
                       render(*B->getRHS(), Prec + 1);
    if (Prec < MinPrec)
      return "(" + Text + ")";
    return Text;
  }
  case Expr::Kind::Call: {
    const auto *C = cast<CallExpr>(&E);
    std::string Text = C->getCallee() + "(";
    for (size_t A = 0; A != C->getNumArgs(); ++A) {
      if (A != 0)
        Text += ", ";
      Text += render(*C->getArg(A), 1);
    }
    return Text + ")";
  }
  case Expr::Kind::Cast:
    // Implicit in source.
    return render(*cast<CastExpr>(&E)->getOperand(), MinPrec);
  }
  return "?";
}

class StmtPrinter {
public:
  std::string Out;

  void line(unsigned Indent, const std::string &Text) {
    Out.append(2 * Indent, ' ');
    Out += Text;
    Out += '\n';
  }

  void printStmt(const Stmt *S, unsigned Indent) {
    switch (S->getKind()) {
    case Stmt::Kind::Block:
      for (const StmtPtr &Child : cast<BlockStmt>(S)->stmts())
        printStmt(Child.get(), Indent);
      return;
    case Stmt::Kind::Decl: {
      const VarDecl *D = cast<DeclStmt>(S)->getDecl();
      std::string Text =
          "var " + D->getName() + ": " + D->getType().str();
      if (D->getInit())
        Text += " = " + render(*D->getInit(), 1);
      line(Indent, Text + ";");
      return;
    }
    case Stmt::Kind::Assign: {
      const auto *A = cast<AssignStmt>(S);
      line(Indent, render(*A->getTarget(), 1) + " = " +
                       render(*A->getValue(), 1) + ";");
      return;
    }
    case Stmt::Kind::If: {
      const auto *I = cast<IfStmt>(S);
      line(Indent, "if (" + render(*I->getCond(), 1) + ") {");
      printStmt(I->getThen(), Indent + 1);
      if (I->getElse()) {
        line(Indent, "} else {");
        printStmt(I->getElse(), Indent + 1);
      }
      line(Indent, "}");
      return;
    }
    case Stmt::Kind::For: {
      const auto *F = cast<ForStmt>(S);
      std::string Head = "for " + F->getIndVar() + " = " +
                         render(*F->getLo(), 1) + " to " +
                         render(*F->getHi(), 1);
      if (F->getStep() != 1)
        Head += " by " + std::to_string(F->getStep());
      line(Indent, Head + " {");
      printStmt(F->getBody(), Indent + 1);
      line(Indent, "}");
      return;
    }
    case Stmt::Kind::While: {
      const auto *W = cast<WhileStmt>(S);
      line(Indent, "while (" + render(*W->getCond(), 1) + ") {");
      printStmt(W->getBody(), Indent + 1);
      line(Indent, "}");
      return;
    }
    case Stmt::Kind::Return: {
      const auto *R = cast<ReturnStmt>(S);
      if (R->getValue())
        line(Indent, "return " + render(*R->getValue(), 1) + ";");
      else
        line(Indent, "return;");
      return;
    }
    case Stmt::Kind::Send: {
      const auto *Send = cast<SendStmt>(S);
      line(Indent, std::string("send(") + channelName(Send->getChannel()) +
                       ", " + render(*Send->getValue(), 1) + ");");
      return;
    }
    case Stmt::Kind::Receive: {
      const auto *Recv = cast<ReceiveStmt>(S);
      line(Indent, std::string("receive(") +
                       channelName(Recv->getChannel()) + ", " +
                       render(*Recv->getTarget(), 1) + ");");
      return;
    }
    case Stmt::Kind::ExprStmt:
      line(Indent, render(*cast<ExprStmt>(S)->getExpr(), 1) + ";");
      return;
    }
  }
};

} // namespace

std::string w2::printExpr(const Expr &E) { return render(E, 1); }

std::string w2::printFunction(const FunctionDecl &F) {
  std::string Out = "function " + F.getName() + "(";
  for (size_t P = 0; P != F.params().size(); ++P) {
    if (P != 0)
      Out += ", ";
    Out += F.params()[P].Name + ": " + F.params()[P].Ty.str();
  }
  Out += ")";
  if (!F.getReturnType().isVoid())
    Out += ": " + F.getReturnType().str();
  Out += " {\n";
  StmtPrinter Printer;
  Printer.printStmt(F.getBody(), 1);
  Out += Printer.Out;
  Out += "}\n";
  return Out;
}

std::string w2::printModule(const ModuleDecl &Module) {
  std::string Out = "module " + Module.getName() + ";\n";
  for (size_t S = 0; S != Module.numSections(); ++S) {
    const SectionDecl *Section = Module.getSection(S);
    Out += "section " + Section->getName();
    if (Section->getNumCells() != 1)
      Out += " cells " + std::to_string(Section->getNumCells());
    Out += " {\n";
    for (size_t F = 0; F != Section->numFunctions(); ++F)
      Out += printFunction(*Section->getFunction(F));
    Out += "}\n";
  }
  return Out;
}
