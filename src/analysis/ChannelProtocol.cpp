//===- ChannelProtocol.cpp - Systolic channel-protocol checker ------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//
//
// Computes symbolic per-function Send/Recv counts from the structured AST.
// W2 has no break or goto, so counts compose exactly: a sequence sums, a
// for-loop with literal bounds multiplies by its trip count, an if whose
// arms agree keeps the agreed count. Everything else (while loops,
// diverging arms, recursion) degrades to Unknown, which the link check
// treats as a wildcard — only known-vs-known disagreements are flagged, so
// the pass cannot produce false positives on data-dependent protocols.
//
// The module-level pass then chains every channel-using, uncalled function
// in declaration order: the cell programs of the linear systolic array,
// cell i's Y output feeding cell i+1's X input (the wiring of the
// interpreter and the systolic_pipeline example). A known mismatch on a
// link is the canonical Warp deadlock: the downstream cell either blocks
// forever waiting for values that never arrive, or values accumulate
// unread on the link. X-direction sends with no downstream reader drain to
// the host interface and are deliberately not flagged.
//
//===----------------------------------------------------------------------===//

#include "analysis/Analyzer.h"

#include "support/Casting.h"

#include <map>
#include <set>

using namespace warpc;
using namespace warpc::analysis;
using namespace warpc::w2;

namespace {

/// How a statement can leave the enclosing function.
enum class ExitKind { None, May, Definite };

struct WalkResult {
  ChannelCounts Counts;
  ExitKind Exit = ExitKind::None;
};

SymCount &countFor(ChannelCounts &C, Channel Ch, bool IsSend) {
  if (IsSend)
    return Ch == Channel::X ? C.SendX : C.SendY;
  return Ch == Channel::X ? C.RecvX : C.RecvY;
}

ChannelCounts addCounts(const ChannelCounts &A, const ChannelCounts &B) {
  return {A.SendX + B.SendX, A.SendY + B.SendY, A.RecvX + B.RecvX,
          A.RecvY + B.RecvY};
}

ChannelCounts timesCounts(const ChannelCounts &A, SymCount Trip) {
  return {A.SendX.times(Trip), A.SendY.times(Trip), A.RecvX.times(Trip),
          A.RecvY.times(Trip)};
}

/// Per-channel merge after a may-exit point: counts that might or might
/// not execute stay only if they are exactly zero.
ChannelCounts afterMayExit(const ChannelCounts &Sofar,
                           const ChannelCounts &Later) {
  ChannelCounts Out = Sofar;
  auto Blur = [](SymCount &Acc, SymCount Add) {
    if (!Add.isZero())
      Acc = SymCount::unknown();
  };
  Blur(Out.SendX, Later.SendX);
  Blur(Out.SendY, Later.SendY);
  Blur(Out.RecvX, Later.RecvX);
  Blur(Out.RecvY, Later.RecvY);
  return Out;
}

/// Walks one section's functions, memoizing per-function counts and
/// collecting the channel-path diagnostics once per function body.
class ChannelWalker {
public:
  ChannelWalker(const SectionDecl &Section, const AnalysisOptions &Opts)
      : Section(Section), Opts(Opts) {}

  ChannelCounts countsOf(const FunctionDecl &F) {
    auto It = Memo.find(&F);
    if (It != Memo.end())
      return It->second;
    if (!InProgress.insert(&F).second)
      return allUnknown(); // recursion: no exact count exists
    CurrentFn = &F;
    WalkResult R = walkStmt(F.getBody());
    InProgress.erase(&F);
    Memo[&F] = R.Counts;
    return R.Counts;
  }

  /// Diagnostics accumulated while walking bodies (channel-path).
  std::vector<Diag> takeDiags() { return std::move(Diags); }

  void setOrdinal(const FunctionDecl *F, uint32_t Ordinal) {
    Ordinals[F] = Ordinal;
  }

private:
  static ChannelCounts allUnknown() {
    return {SymCount::unknown(), SymCount::unknown(), SymCount::unknown(),
            SymCount::unknown()};
  }

  /// Channel traffic hidden inside an expression: calls to sibling
  /// functions whose bodies send or receive.
  ChannelCounts exprCounts(const Expr *E) {
    ChannelCounts Zero{};
    if (!E)
      return Zero;
    switch (E->getKind()) {
    case Expr::Kind::IntLit:
    case Expr::Kind::FloatLit:
    case Expr::Kind::VarRef:
      return Zero;
    case Expr::Kind::Index:
      return exprCounts(cast<IndexExpr>(E)->getIndex());
    case Expr::Kind::Unary:
      return exprCounts(cast<UnaryExpr>(E)->getOperand());
    case Expr::Kind::Cast:
      return exprCounts(cast<CastExpr>(E)->getOperand());
    case Expr::Kind::Binary: {
      const auto *B = cast<BinaryExpr>(E);
      return addCounts(exprCounts(B->getLHS()), exprCounts(B->getRHS()));
    }
    case Expr::Kind::Call: {
      const auto *C = cast<CallExpr>(E);
      ChannelCounts Sum{};
      for (size_t I = 0; I != C->getNumArgs(); ++I)
        Sum = addCounts(Sum, exprCounts(C->getArg(I)));
      if (C->getCallee() == "sqrt" || C->getCallee() == "abs")
        return Sum;
      if (const FunctionDecl *Callee = Section.lookup(C->getCallee()))
        return addCounts(Sum, countsOf(*Callee));
      return Sum;
    }
    }
    return Zero;
  }

  WalkResult walkStmt(const Stmt *S) {
    WalkResult R;
    if (!S)
      return R;
    switch (S->getKind()) {
    case Stmt::Kind::Block: {
      for (const StmtPtr &Child : cast<BlockStmt>(S)->stmts()) {
        if (R.Exit == ExitKind::Definite)
          break; // statically unreachable; the CFG check reports it
        WalkResult C = walkStmt(Child.get());
        if (R.Exit == ExitKind::May)
          R.Counts = afterMayExit(R.Counts, C.Counts);
        else
          R.Counts = addCounts(R.Counts, C.Counts);
        if (C.Exit == ExitKind::Definite)
          R.Exit = R.Exit == ExitKind::May ? ExitKind::May : ExitKind::Definite;
        else if (C.Exit == ExitKind::May)
          R.Exit = ExitKind::May;
      }
      return R;
    }
    case Stmt::Kind::Decl:
      R.Counts = exprCounts(cast<DeclStmt>(S)->getDecl()->getInit());
      return R;
    case Stmt::Kind::Assign: {
      const auto *A = cast<AssignStmt>(S);
      R.Counts = addCounts(exprCounts(A->getTarget()),
                           exprCounts(A->getValue()));
      return R;
    }
    case Stmt::Kind::If: {
      const auto *I = cast<IfStmt>(S);
      ChannelCounts Cond = exprCounts(I->getCond());
      WalkResult Then = walkStmt(I->getThen());
      WalkResult Else = walkStmt(I->getElse());
      R.Counts = Cond;
      R.Counts = addCounts(R.Counts,
                           mergeArms(Then.Counts, Else.Counts, I->getLoc()));
      if (Then.Exit == ExitKind::Definite && Else.Exit == ExitKind::Definite)
        R.Exit = ExitKind::Definite;
      else if (Then.Exit != ExitKind::None || Else.Exit != ExitKind::None)
        R.Exit = ExitKind::May;
      return R;
    }
    case Stmt::Kind::For: {
      const auto *L = cast<ForStmt>(S);
      ChannelCounts Bounds =
          addCounts(exprCounts(L->getLo()), exprCounts(L->getHi()));
      WalkResult Body = walkStmt(L->getBody());
      SymCount Trip = tripCount(L);
      if (Body.Exit == ExitKind::None) {
        R.Counts = addCounts(Bounds, timesCounts(Body.Counts, Trip));
      } else if (Body.Exit == ExitKind::Definite) {
        // The body returns on its first iteration (if it runs at all).
        bool Runs = Trip.Known && Trip.N > 0;
        R.Counts = addCounts(Bounds, Runs ? Body.Counts
                                          : afterMayExit({}, Body.Counts));
        R.Exit = Runs ? ExitKind::Definite : ExitKind::May;
      } else {
        R.Counts = addCounts(Bounds, afterMayExit({}, Body.Counts));
        R.Exit = ExitKind::May;
      }
      return R;
    }
    case Stmt::Kind::While: {
      const auto *W = cast<WhileStmt>(S);
      ChannelCounts Cond = exprCounts(W->getCond());
      WalkResult Body = walkStmt(W->getBody());
      // Iteration count is data-dependent: zero traffic stays zero,
      // anything else is unknown.
      ChannelCounts Blurred =
          afterMayExit({}, addCounts(Cond, Body.Counts));
      R.Counts = Blurred;
      if (Body.Exit != ExitKind::None)
        R.Exit = ExitKind::May;
      return R;
    }
    case Stmt::Kind::Return:
      R.Counts = exprCounts(cast<ReturnStmt>(S)->getValue());
      R.Exit = ExitKind::Definite;
      return R;
    case Stmt::Kind::Send: {
      const auto *Snd = cast<SendStmt>(S);
      R.Counts = exprCounts(Snd->getValue());
      countFor(R.Counts, Snd->getChannel(), /*IsSend=*/true) =
          countFor(R.Counts, Snd->getChannel(), true) + SymCount::of(1);
      return R;
    }
    case Stmt::Kind::Receive: {
      const auto *Rcv = cast<ReceiveStmt>(S);
      R.Counts = exprCounts(Rcv->getTarget());
      countFor(R.Counts, Rcv->getChannel(), /*IsSend=*/false) =
          countFor(R.Counts, Rcv->getChannel(), false) + SymCount::of(1);
      return R;
    }
    case Stmt::Kind::ExprStmt:
      R.Counts = exprCounts(cast<ExprStmt>(S)->getExpr());
      return R;
    }
    return R;
  }

  static SymCount tripCount(const ForStmt *L) {
    const auto *Lo = dyn_cast<IntLitExpr>(L->getLo());
    const auto *Hi = dyn_cast<IntLitExpr>(L->getHi());
    int64_t Step = L->getStep();
    if (!Lo || !Hi || Step == 0)
      return SymCount::unknown();
    int64_t LoV = Lo->getValue(), HiV = Hi->getValue();
    if (Step > 0)
      return SymCount::of(HiV >= LoV
                              ? static_cast<uint64_t>((HiV - LoV) / Step + 1)
                              : 0);
    return SymCount::of(LoV >= HiV
                            ? static_cast<uint64_t>((LoV - HiV) / -Step + 1)
                            : 0);
  }

  /// Per-channel merge of if-arms; diverging known counts get the
  /// channel-path warning (once per if and channel).
  ChannelCounts mergeArms(const ChannelCounts &T, const ChannelCounts &E,
                          SourceLoc Loc) {
    ChannelCounts Out;
    auto MergeOne = [&](SymCount A, SymCount B, const char *What) {
      if (A == B)
        return A;
      if (A.Known && B.Known && Opts.enabled(check::ChannelPath) &&
          CurrentFn) {
        Diag D;
        D.CheckId = check::ChannelPath;
        const CheckInfo *Info = findCheck(check::ChannelPath);
        D.Sev = Info ? Info->DefaultSev : Severity::Warning;
        D.Section = Section.getName();
        D.Function = CurrentFn->getName();
        auto It = Ordinals.find(CurrentFn);
        D.FunctionOrdinal = It != Ordinals.end() ? It->second : 0;
        D.Loc = Loc;
        D.Range.Begin = Loc;
        D.Message = "the branches of this if " + std::string(What) + " " +
                    std::to_string(A.N) + " vs " + std::to_string(B.N) +
                    " value(s); the cell's channel protocol becomes "
                    "data-dependent";
        Diags.push_back(std::move(D));
      }
      return SymCount::unknown();
    };
    Out.SendX = MergeOne(T.SendX, E.SendX, "send on X");
    Out.SendY = MergeOne(T.SendY, E.SendY, "send on Y");
    Out.RecvX = MergeOne(T.RecvX, E.RecvX, "receive on X");
    Out.RecvY = MergeOne(T.RecvY, E.RecvY, "receive on Y");
    return Out;
  }

  const SectionDecl &Section;
  const AnalysisOptions &Opts;
  const FunctionDecl *CurrentFn = nullptr;
  std::map<const FunctionDecl *, ChannelCounts> Memo;
  std::set<const FunctionDecl *> InProgress;
  std::map<const FunctionDecl *, uint32_t> Ordinals;
  std::vector<Diag> Diags;
};

/// Collects the names of functions called anywhere in \p S.
void collectCallees(const Expr *E, std::set<std::string> &Out) {
  if (!E)
    return;
  switch (E->getKind()) {
  case Expr::Kind::Index:
    collectCallees(cast<IndexExpr>(E)->getIndex(), Out);
    return;
  case Expr::Kind::Unary:
    collectCallees(cast<UnaryExpr>(E)->getOperand(), Out);
    return;
  case Expr::Kind::Cast:
    collectCallees(cast<CastExpr>(E)->getOperand(), Out);
    return;
  case Expr::Kind::Binary:
    collectCallees(cast<BinaryExpr>(E)->getLHS(), Out);
    collectCallees(cast<BinaryExpr>(E)->getRHS(), Out);
    return;
  case Expr::Kind::Call: {
    const auto *C = cast<CallExpr>(E);
    Out.insert(C->getCallee());
    for (size_t I = 0; I != C->getNumArgs(); ++I)
      collectCallees(C->getArg(I), Out);
    return;
  }
  default:
    return;
  }
}

void collectCallees(const Stmt *S, std::set<std::string> &Out) {
  if (!S)
    return;
  switch (S->getKind()) {
  case Stmt::Kind::Block:
    for (const StmtPtr &C : cast<BlockStmt>(S)->stmts())
      collectCallees(C.get(), Out);
    return;
  case Stmt::Kind::Decl:
    collectCallees(cast<DeclStmt>(S)->getDecl()->getInit(), Out);
    return;
  case Stmt::Kind::Assign:
    collectCallees(cast<AssignStmt>(S)->getTarget(), Out);
    collectCallees(cast<AssignStmt>(S)->getValue(), Out);
    return;
  case Stmt::Kind::If:
    collectCallees(cast<IfStmt>(S)->getCond(), Out);
    collectCallees(cast<IfStmt>(S)->getThen(), Out);
    collectCallees(cast<IfStmt>(S)->getElse(), Out);
    return;
  case Stmt::Kind::For:
    collectCallees(cast<ForStmt>(S)->getLo(), Out);
    collectCallees(cast<ForStmt>(S)->getHi(), Out);
    collectCallees(cast<ForStmt>(S)->getBody(), Out);
    return;
  case Stmt::Kind::While:
    collectCallees(cast<WhileStmt>(S)->getCond(), Out);
    collectCallees(cast<WhileStmt>(S)->getBody(), Out);
    return;
  case Stmt::Kind::Return:
    collectCallees(cast<ReturnStmt>(S)->getValue(), Out);
    return;
  case Stmt::Kind::Send:
    collectCallees(cast<SendStmt>(S)->getValue(), Out);
    return;
  case Stmt::Kind::Receive:
    collectCallees(cast<ReceiveStmt>(S)->getTarget(), Out);
    return;
  case Stmt::Kind::ExprStmt:
    collectCallees(cast<ExprStmt>(S)->getExpr(), Out);
    return;
  }
}

std::string countStr(SymCount C) {
  return C.Known ? std::to_string(C.N) : std::string("a data-dependent "
                                                     "number of");
}

} // namespace

ChannelCounts analysis::channelCountsOf(const SectionDecl &Section,
                                        const FunctionDecl &F) {
  AnalysisOptions Opts;
  Opts.Disabled.insert(check::ChannelPath); // counts only, no diagnostics
  ChannelWalker Walker(Section, Opts);
  return Walker.countsOf(F);
}

std::vector<Diag> analysis::checkChannelProtocol(const ModuleDecl &M,
                                                 const AnalysisOptions &Opts) {
  std::vector<Diag> Out;
  if (!Opts.enabled(check::ChannelMismatch) &&
      !Opts.enabled(check::ChannelPath))
    return Out;

  /// One cell program of the linear array.
  struct Stage {
    const FunctionDecl *F = nullptr;
    const SectionDecl *Section = nullptr;
    uint32_t Ordinal = 0;
    ChannelCounts Counts;
  };
  std::vector<Stage> Stages;

  uint32_t Ordinal = 0;
  for (size_t S = 0; S != M.numSections(); ++S) {
    const SectionDecl *Section = M.getSection(S);
    // Functions called by a sibling run inline inside the caller's cell
    // program, not as an array stage of their own.
    std::set<std::string> Called;
    for (size_t FI = 0; FI != Section->numFunctions(); ++FI)
      collectCallees(Section->getFunction(FI)->getBody(), Called);

    ChannelWalker Walker(*Section, Opts);
    uint32_t Base = Ordinal;
    for (size_t FI = 0; FI != Section->numFunctions(); ++FI)
      Walker.setOrdinal(Section->getFunction(FI), Base + FI);
    for (size_t FI = 0; FI != Section->numFunctions(); ++FI) {
      const FunctionDecl *F = Section->getFunction(FI);
      ChannelCounts Counts = Walker.countsOf(*F);
      if (Counts.anyTraffic() && !Called.count(F->getName()))
        Stages.push_back({F, Section, Ordinal, Counts});
      ++Ordinal;
    }
    for (Diag &D : Walker.takeDiags())
      Out.push_back(std::move(D));
  }

  if (!Opts.enabled(check::ChannelMismatch))
    return Out;

  for (size_t I = 0; I + 1 < Stages.size(); ++I) {
    const Stage &Up = Stages[I];
    const Stage &Down = Stages[I + 1];
    SymCount Sent = Up.Counts.SendY;
    SymCount Received = Down.Counts.RecvX;
    if (!Sent.Known || !Received.Known || Sent == Received)
      continue;
    Diag D;
    D.CheckId = check::ChannelMismatch;
    const CheckInfo *Info = findCheck(check::ChannelMismatch);
    D.Sev = Info ? Info->DefaultSev : Severity::Warning;
    D.Section = Down.Section->getName();
    D.Function = Down.F->getName();
    D.FunctionOrdinal = Down.Ordinal;
    D.Loc = Down.F->getLoc();
    D.Range.Begin = D.Loc;
    D.Message = "cell program '" + Down.F->getName() + "' receives " +
                countStr(Received) + " value(s) on X but the upstream cell '" +
                Up.F->getName() + "' sends " + countStr(Sent) + " on Y";
    D.Notes.push_back({Up.F->getLoc(), "'" + Up.F->getName() +
                                           "' defined here sends " +
                                           countStr(Sent) + " value(s) on Y"});
    if (Received.N > Sent.N)
      D.Notes.push_back({Down.F->getLoc(),
                         "the downstream cell blocks forever waiting for " +
                             std::to_string(Received.N - Sent.N) +
                             " value(s) that never arrive (systolic "
                             "deadlock)"});
    else
      D.Notes.push_back({Up.F->getLoc(),
                         std::to_string(Sent.N - Received.N) +
                             " value(s) are left queued on the link and "
                             "never consumed"});
    Out.push_back(std::move(D));
  }
  return Out;
}
