//===- Summary.cpp - Per-function interprocedural summaries ---------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/interproc/Summary.h"

#include <algorithm>

using namespace warpc;
using namespace warpc::analysis;
using namespace warpc::analysis::interproc;

//===----------------------------------------------------------------------===//
// SymPoly
//===----------------------------------------------------------------------===//

namespace {

/// Degree and term caps. W2 channel counts come from loop nests a few
/// levels deep, so real polynomials are tiny; the caps only stop
/// adversarial inputs from blowing up the analysis, and exceeding them
/// degrades to "unknown", never to a wrong count.
constexpr uint32_t MaxDegree = 4;
constexpr uint32_t MaxTermCount = 16;

bool addOverflows(int64_t A, int64_t B, int64_t &Out) {
  return __builtin_add_overflow(A, B, &Out);
}

bool mulOverflows(int64_t A, int64_t B, int64_t &Out) {
  return __builtin_mul_overflow(A, B, &Out);
}

} // namespace

SymPoly SymPoly::constant(int64_t C) {
  SymPoly P;
  if (C != 0)
    P.Terms[{}] = C;
  return P;
}

SymPoly SymPoly::param(uint32_t Index) {
  SymPoly P;
  P.Terms[{Index}] = 1;
  return P;
}

int64_t SymPoly::constantValue() const {
  auto It = Terms.find({});
  return It == Terms.end() ? 0 : It->second;
}

uint32_t SymPoly::degree() const {
  uint32_t D = 0;
  for (const auto &[Mono, Coeff] : Terms)
    D = std::max(D, static_cast<uint32_t>(Mono.size()));
  return D;
}

bool SymPoly::usesParam(uint32_t P) const {
  for (const auto &[Mono, Coeff] : Terms)
    if (std::find(Mono.begin(), Mono.end(), P) != Mono.end())
      return true;
  return false;
}

bool SymPoly::withinCaps() const {
  return Terms.size() <= MaxTermCount && degree() <= MaxDegree;
}

SymPoly SymPoly::operator+(const SymPoly &O) const {
  if (!Valid || !O.Valid)
    return invalid();
  SymPoly R = *this;
  for (const auto &[Mono, Coeff] : O.Terms) {
    int64_t Sum;
    if (addOverflows(R.Terms[Mono], Coeff, Sum))
      return invalid();
    if (Sum == 0)
      R.Terms.erase(Mono);
    else
      R.Terms[Mono] = Sum;
  }
  if (!R.withinCaps())
    return invalid();
  return R;
}

SymPoly SymPoly::operator-(const SymPoly &O) const {
  if (!Valid || !O.Valid)
    return invalid();
  SymPoly Neg = O;
  for (auto &[Mono, Coeff] : Neg.Terms) {
    if (Coeff == INT64_MIN)
      return invalid();
    Coeff = -Coeff;
  }
  return *this + Neg;
}

SymPoly SymPoly::operator*(const SymPoly &O) const {
  if (!Valid || !O.Valid)
    return invalid();
  SymPoly R;
  for (const auto &[MonoA, CoeffA] : Terms)
    for (const auto &[MonoB, CoeffB] : O.Terms) {
      int64_t Coeff;
      if (mulOverflows(CoeffA, CoeffB, Coeff))
        return invalid();
      std::vector<uint32_t> Mono;
      Mono.reserve(MonoA.size() + MonoB.size());
      std::merge(MonoA.begin(), MonoA.end(), MonoB.begin(), MonoB.end(),
                 std::back_inserter(Mono));
      int64_t Sum;
      if (addOverflows(R.Terms[Mono], Coeff, Sum))
        return invalid();
      if (Sum == 0)
        R.Terms.erase(Mono);
      else
        R.Terms[Mono] = Sum;
    }
  if (!R.withinCaps())
    return invalid();
  return R;
}

SymPoly SymPoly::substitute(const std::vector<SymPoly> &Args) const {
  if (!Valid)
    return invalid();
  SymPoly R;
  for (const auto &[Mono, Coeff] : Terms) {
    SymPoly Term = constant(Coeff);
    for (uint32_t P : Mono) {
      if (P >= Args.size() || !Args[P].valid())
        return invalid();
      Term = Term * Args[P];
      if (!Term.valid())
        return invalid();
    }
    R = R + Term;
    if (!R.valid())
      return invalid();
  }
  return R;
}

bool SymPoly::asAffine(uint32_t &Param, int64_t &Scale, int64_t &Offset) const {
  if (!Valid)
    return false;
  bool HaveLinear = false;
  Scale = 0;
  Offset = 0;
  for (const auto &[Mono, Coeff] : Terms) {
    if (Mono.empty()) {
      Offset = Coeff;
    } else if (Mono.size() == 1 && !HaveLinear) {
      HaveLinear = true;
      Param = Mono[0];
      Scale = Coeff;
    } else {
      return false; // second linear term or degree >= 2
    }
  }
  return HaveLinear && Scale != 0;
}

std::string SymPoly::str(const std::vector<std::string> &ParamNames) const {
  if (!Valid)
    return "<unknown>";
  if (Terms.empty())
    return "0";
  auto NameOf = [&](uint32_t P) {
    return P < ParamNames.size() ? ParamNames[P]
                                 : "p" + std::to_string(P);
  };
  // Non-constant terms in monomial order, constant last: "2*n^2 + n + 3".
  std::string Out;
  auto Append = [&](const std::vector<uint32_t> &Mono, int64_t Coeff) {
    if (!Out.empty())
      Out += Coeff < 0 ? " - " : " + ";
    else if (Coeff < 0)
      Out += "-";
    uint64_t Mag = Coeff < 0 ? 0ull - static_cast<uint64_t>(Coeff)
                             : static_cast<uint64_t>(Coeff);
    bool NeedCoeff = Mag != 1 || Mono.empty();
    if (NeedCoeff)
      Out += std::to_string(Mag);
    size_t I = 0;
    while (I != Mono.size()) {
      size_t J = I;
      while (J != Mono.size() && Mono[J] == Mono[I])
        ++J;
      if (NeedCoeff || I != 0)
        Out += "*";
      NeedCoeff = true;
      Out += NameOf(Mono[I]);
      if (J - I > 1)
        Out += "^" + std::to_string(J - I);
      I = J;
    }
  };
  for (const auto &[Mono, Coeff] : Terms)
    if (!Mono.empty())
      Append(Mono, Coeff);
  auto Const = Terms.find({});
  if (Const != Terms.end())
    Append({}, Const->second);
  return Out;
}

void SymPoly::encode(BinaryWriter &W) const {
  W.u8(Valid ? 1 : 0);
  if (!Valid)
    return;
  W.u64(Terms.size());
  for (const auto &[Mono, Coeff] : Terms) {
    W.u64(Mono.size());
    for (uint32_t P : Mono)
      W.u32(P);
    W.i64(Coeff);
  }
}

std::optional<SymPoly> SymPoly::decode(BinaryReader &R) {
  uint8_t ValidByte = R.u8();
  if (!R.ok() || ValidByte > 1)
    return std::nullopt;
  if (!ValidByte)
    return invalid();
  SymPoly P;
  uint64_t NumTerms = R.u64();
  if (!R.ok() || NumTerms > MaxTermCount)
    return std::nullopt;
  for (uint64_t T = 0; T != NumTerms; ++T) {
    uint64_t MonoSize = R.u64();
    if (!R.ok() || MonoSize > MaxDegree)
      return std::nullopt;
    std::vector<uint32_t> Mono(MonoSize);
    for (uint64_t I = 0; I != MonoSize; ++I)
      Mono[I] = R.u32();
    int64_t Coeff = R.i64();
    if (!R.ok() || Coeff == 0 ||
        !std::is_sorted(Mono.begin(), Mono.end()) || P.Terms.count(Mono))
      return std::nullopt;
    P.Terms.emplace(std::move(Mono), Coeff);
  }
  return P;
}

//===----------------------------------------------------------------------===//
// Interval
//===----------------------------------------------------------------------===//

Interval Interval::join(const Interval &A, const Interval &B) {
  if (!A.Known || !B.Known)
    return top();
  return of(std::min(A.Lo, B.Lo), std::max(A.Hi, B.Hi),
            A.Attained && B.Attained);
}

Interval interproc::affineImage(const Interval &I, int64_t Scale,
                                int64_t Offset) {
  if (!I.Known)
    return Interval::top();
  int64_t A, B;
  if (mulOverflows(I.Lo, Scale, A) || mulOverflows(I.Hi, Scale, B))
    return Interval::top();
  if (A > B)
    std::swap(A, B);
  int64_t Lo, Hi;
  if (addOverflows(A, Offset, Lo) || addOverflows(B, Offset, Hi))
    return Interval::top();
  // Affine maps carry endpoints to endpoints, so attainment survives.
  return Interval::of(Lo, Hi, I.Attained);
}

//===----------------------------------------------------------------------===//
// ChannelPoly
//===----------------------------------------------------------------------===//

std::optional<uint64_t> ChannelPoly::constantCount() const {
  if (!Known || !P.valid() || !P.isConstant())
    return std::nullopt;
  int64_t V = P.constantValue();
  if (V < 0)
    return std::nullopt;
  return static_cast<uint64_t>(V);
}

//===----------------------------------------------------------------------===//
// SCCOutput serialization
//===----------------------------------------------------------------------===//

namespace {

void encodeLoc(BinaryWriter &W, SourceLoc L) {
  W.u32(L.Line);
  W.u32(L.Column);
}

SourceLoc decodeLoc(BinaryReader &R) {
  uint32_t Line = R.u32();
  uint32_t Col = R.u32();
  return SourceLoc(Line, Col);
}

void encodeChain(BinaryWriter &W, const CallChain &C) {
  W.u64(C.size());
  for (const ChainLink &L : C) {
    W.str(L.Function);
    encodeLoc(W, L.Loc);
  }
}

bool decodeChain(BinaryReader &R, CallChain &Out) {
  uint64_t N = R.u64();
  if (!R.ok() || N > (1u << 16))
    return false;
  Out.resize(N);
  for (uint64_t I = 0; I != N; ++I) {
    Out[I].Function = R.str();
    Out[I].Loc = decodeLoc(R);
  }
  return R.ok();
}

void encodeInterval(BinaryWriter &W, const Interval &I) {
  W.u8(I.Known ? 1 : 0);
  W.i64(I.Lo);
  W.i64(I.Hi);
  W.u8(I.Attained ? 1 : 0);
}

bool decodeInterval(BinaryReader &R, Interval &Out) {
  uint8_t Known = R.u8();
  Out.Lo = R.i64();
  Out.Hi = R.i64();
  uint8_t Attained = R.u8();
  if (!R.ok() || Known > 1 || Attained > 1)
    return false;
  Out.Known = Known;
  Out.Attained = Attained;
  if (!Out.Known)
    Out = Interval::top();
  return true;
}

void encodeChannelPoly(BinaryWriter &W, const ChannelPoly &P) {
  W.u8(P.Known ? 1 : 0);
  if (P.Known)
    P.P.encode(W);
}

bool decodeChannelPoly(BinaryReader &R, ChannelPoly &Out) {
  uint8_t Known = R.u8();
  if (!R.ok() || Known > 1)
    return false;
  if (!Known) {
    Out = ChannelPoly::unknown();
    return true;
  }
  std::optional<SymPoly> P = SymPoly::decode(R);
  if (!P || !P->valid())
    return false;
  Out = ChannelPoly::of(std::move(*P));
  return true;
}

void encodeSummary(BinaryWriter &W, const FunctionSummary &S) {
  W.u32(S.Ordinal);
  W.str(S.SectionName);
  W.str(S.FunctionName);
  W.u32(S.NumParams);
  encodeInterval(W, S.Ret);

  W.u64(S.Demands.size());
  for (const ParamDemand &D : S.Demands) {
    W.u8(static_cast<uint8_t>(D.K));
    W.u32(D.ParamIndex);
    W.i64(D.Scale);
    W.i64(D.Offset);
    W.i64(D.Extent);
    W.str(D.ArrayName);
    encodeChain(W, D.Chain);
  }

  W.u64(S.ArrayUses.size());
  for (const ArrayParamUse &U : S.ArrayUses) {
    W.u32(U.ParamIndex);
    W.u8((U.ReadsBeforeWrite ? 1 : 0) | (U.MayWrite ? 2 : 0) |
         (U.DefinitelyWrites ? 4 : 0));
    encodeChain(W, U.ReadChain);
  }

  encodeChannelPoly(W, S.Channels.SendX);
  encodeChannelPoly(W, S.Channels.SendY);
  encodeChannelPoly(W, S.Channels.RecvX);
  encodeChannelPoly(W, S.Channels.RecvY);
  encodeChain(W, S.Channels.SendXChain);
  encodeChain(W, S.Channels.SendYChain);
  encodeChain(W, S.Channels.RecvXChain);
  encodeChain(W, S.Channels.RecvYChain);

  W.u8((S.WritesArrayParams ? 1 : 0) | (S.HasChannelTraffic ? 2 : 0) |
       (S.Pure ? 4 : 0));
}

bool decodeSummary(BinaryReader &R, FunctionSummary &S) {
  S.Ordinal = R.u32();
  S.SectionName = R.str();
  S.FunctionName = R.str();
  S.NumParams = R.u32();
  if (!decodeInterval(R, S.Ret))
    return false;

  uint64_t NumDemands = R.u64();
  if (!R.ok() || NumDemands > (1u << 16))
    return false;
  S.Demands.resize(NumDemands);
  for (ParamDemand &D : S.Demands) {
    uint8_t K = R.u8();
    if (!R.ok() || K > ParamDemand::ArrayIndex)
      return false;
    D.K = static_cast<ParamDemand::Kind>(K);
    D.ParamIndex = R.u32();
    D.Scale = R.i64();
    D.Offset = R.i64();
    D.Extent = R.i64();
    D.ArrayName = R.str();
    if (!decodeChain(R, D.Chain))
      return false;
  }

  uint64_t NumUses = R.u64();
  if (!R.ok() || NumUses > (1u << 16))
    return false;
  S.ArrayUses.resize(NumUses);
  for (ArrayParamUse &U : S.ArrayUses) {
    U.ParamIndex = R.u32();
    uint8_t Bits = R.u8();
    if (!R.ok() || Bits > 7)
      return false;
    U.ReadsBeforeWrite = Bits & 1;
    U.MayWrite = Bits & 2;
    U.DefinitelyWrites = Bits & 4;
    if (!decodeChain(R, U.ReadChain))
      return false;
  }

  if (!decodeChannelPoly(R, S.Channels.SendX) ||
      !decodeChannelPoly(R, S.Channels.SendY) ||
      !decodeChannelPoly(R, S.Channels.RecvX) ||
      !decodeChannelPoly(R, S.Channels.RecvY) ||
      !decodeChain(R, S.Channels.SendXChain) ||
      !decodeChain(R, S.Channels.SendYChain) ||
      !decodeChain(R, S.Channels.RecvXChain) ||
      !decodeChain(R, S.Channels.RecvYChain))
    return false;

  uint8_t Bits = R.u8();
  if (!R.ok() || Bits > 7)
    return false;
  S.WritesArrayParams = Bits & 1;
  S.HasChannelTraffic = Bits & 2;
  S.Pure = Bits & 4;
  return true;
}

void encodeDiag(BinaryWriter &W, const Diag &D) {
  W.str(D.CheckId);
  W.u8(static_cast<uint8_t>(D.Sev));
  W.str(D.Section);
  W.str(D.Function);
  W.u32(D.FunctionOrdinal);
  encodeLoc(W, D.Loc);
  encodeLoc(W, D.Range.Begin);
  encodeLoc(W, D.Range.End);
  W.str(D.Message);
  W.u64(D.Notes.size());
  for (const DiagNote &N : D.Notes) {
    encodeLoc(W, N.Loc);
    W.str(N.Message);
  }
  W.u64(D.FixIts.size());
  for (const FixItHint &F : D.FixIts) {
    encodeLoc(W, F.Range.Begin);
    encodeLoc(W, F.Range.End);
    W.str(F.Replacement);
  }
}

bool decodeDiag(BinaryReader &R, Diag &D) {
  D.CheckId = R.str();
  uint8_t Sev = R.u8();
  if (!R.ok() || Sev > static_cast<uint8_t>(Severity::Error))
    return false;
  D.Sev = static_cast<Severity>(Sev);
  D.Section = R.str();
  D.Function = R.str();
  D.FunctionOrdinal = R.u32();
  D.Loc = decodeLoc(R);
  D.Range.Begin = decodeLoc(R);
  D.Range.End = decodeLoc(R);
  D.Message = R.str();
  uint64_t NumNotes = R.u64();
  if (!R.ok() || NumNotes > (1u << 16))
    return false;
  D.Notes.resize(NumNotes);
  for (DiagNote &N : D.Notes) {
    N.Loc = decodeLoc(R);
    N.Message = R.str();
  }
  uint64_t NumFixIts = R.u64();
  if (!R.ok() || NumFixIts > (1u << 16))
    return false;
  D.FixIts.resize(NumFixIts);
  for (FixItHint &F : D.FixIts) {
    F.Range.Begin = decodeLoc(R);
    F.Range.End = decodeLoc(R);
    F.Replacement = R.str();
  }
  return R.ok();
}

} // namespace

std::vector<uint8_t> interproc::encodeSCCOutput(const SCCOutput &O) {
  BinaryWriter W;
  W.u32(SummaryFormatVersion);
  W.u64(O.Summaries.size());
  for (const FunctionSummary &S : O.Summaries)
    encodeSummary(W, S);
  W.u64(O.Diags.size());
  for (const Diag &D : O.Diags)
    encodeDiag(W, D);
  return W.take();
}

std::optional<SCCOutput>
interproc::decodeSCCOutput(const std::vector<uint8_t> &Bytes) {
  BinaryReader R(Bytes);
  if (R.u32() != SummaryFormatVersion || !R.ok())
    return std::nullopt;
  SCCOutput O;
  uint64_t NumSummaries = R.u64();
  if (!R.ok() || NumSummaries > (1u << 20))
    return std::nullopt;
  O.Summaries.resize(NumSummaries);
  for (FunctionSummary &S : O.Summaries)
    if (!decodeSummary(R, S))
      return std::nullopt;
  uint64_t NumDiags = R.u64();
  if (!R.ok() || NumDiags > (1u << 20))
    return std::nullopt;
  O.Diags.resize(NumDiags);
  for (Diag &D : O.Diags)
    if (!decodeDiag(R, D))
      return std::nullopt;
  if (!R.atEnd())
    return std::nullopt;
  return O;
}
