//===- InterprocAnalysis.h - Whole-program analysis driver ------*- C++ -*-===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The sequential whole-program analysis driver: builds the call graph,
/// condenses it into SCC wavefronts, summarizes every SCC bottom-up, and
/// runs the module-level systolic deadlock check over the composed channel
/// summaries. The parallel driver in parallel/AnalysisRunner schedules the
/// same waves across workers and must merge identically — summarizeSCC is
/// a pure function, so the only coordination is the per-wave barrier.
///
//===----------------------------------------------------------------------===//

#ifndef WARPC_ANALYSIS_INTERPROC_INTERPROCANALYSIS_H
#define WARPC_ANALYSIS_INTERPROC_INTERPROCANALYSIS_H

#include "analysis/Checks.h"
#include "analysis/interproc/CallGraph.h"
#include "analysis/interproc/Summarize.h"
#include "analysis/interproc/Summary.h"

#include <vector>

namespace warpc {
namespace analysis {
namespace interproc {

/// True when at least one of the four interprocedural checks is enabled —
/// the drivers skip the whole phase otherwise.
bool anyInterprocCheckEnabled(const AnalysisOptions &Opts);

/// Everything the interprocedural phase produced. Diags are pre-finalize:
/// the caller is responsible for promotion, suppression and sorting.
struct InterprocResult {
  CallGraph Graph;
  SCCDecomposition SCCs;
  /// Indexed by function ordinal.
  std::vector<FunctionSummary> Summaries;
  std::vector<Diag> Diags;
};

/// Runs the bottom-up phase sequentially: waves in ascending level order,
/// SCC ids ascending within each wave, diagnostics merged by SCC id
/// ascending, then the module-level deadlock check. The caller merges
/// Diags with the intraprocedural stream and applies
/// supersedeChannelMismatch to the combined list.
InterprocResult runInterproc(const w2::ModuleDecl &M,
                             const AnalysisOptions &Opts);

/// The whole-program systolic deadlock check: composes per-function
/// channel summaries into the cell-to-cell pipeline (uncalled functions
/// with channel traffic, in declaration order) and reports every link
/// whose downstream cell provably waits for more values than the upstream
/// cell ever sends. Fires only on starved links with both counts known;
/// the intraprocedural channel-mismatch warning keeps covering overfed
/// links. \p Summaries is indexed by function ordinal.
std::vector<Diag>
checkSystolicDeadlock(const CallGraph &G,
                      const std::vector<FunctionSummary> &Summaries,
                      const AnalysisOptions &Opts);

/// Removes channel-mismatch diagnostics anchored at functions for which a
/// channel-deadlock error exists in \p Diags: the deadlock verdict
/// subsumes the weaker intraprocedural warning on the same link.
void supersedeChannelMismatch(std::vector<Diag> &Diags);

} // namespace interproc
} // namespace analysis
} // namespace warpc

#endif // WARPC_ANALYSIS_INTERPROC_INTERPROCANALYSIS_H
