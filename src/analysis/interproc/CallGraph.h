//===- CallGraph.h - Module call graph and SCC condensation -----*- C++ -*-===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The whole-module call graph over which the interprocedural summary
/// analysis runs bottom-up. Nodes are functions in flat declaration-ordinal
/// order (the same ordinal the diagnostic sort key uses); edges resolve W2
/// call expressions against the enclosing section (calls never cross
/// sections, and the sqrt/abs intrinsics are not nodes).
///
/// The condensation groups nodes into strongly connected components and
/// assigns each SCC a wavefront level: level 0 SCCs call nothing, and a
/// level-L SCC only calls SCCs of level < L. Processing the waves in
/// ascending level order with a barrier between levels guarantees every
/// callee summary is complete before any caller reads it — which is what
/// lets SCCs inside one wave run on any number of workers in any order
/// with deterministic results.
///
//===----------------------------------------------------------------------===//

#ifndef WARPC_ANALYSIS_INTERPROC_CALLGRAPH_H
#define WARPC_ANALYSIS_INTERPROC_CALLGRAPH_H

#include "w2/AST.h"

#include <cstdint>
#include <vector>

namespace warpc {
namespace analysis {
namespace interproc {

/// The module call graph in flat function-ordinal space.
struct CallGraph {
  struct Node {
    const w2::SectionDecl *Section = nullptr;
    const w2::FunctionDecl *Function = nullptr;
    uint32_t Ordinal = 0;
    uint32_t SectionIndex = 0;
    /// Distinct callee ordinals, ascending. Unresolvable names (intrinsics,
    /// typos Sema would have rejected) are simply absent.
    std::vector<uint32_t> Callees;
    /// Distinct caller ordinals, ascending (the inverse edges).
    std::vector<uint32_t> Callers;
  };

  std::vector<Node> Nodes;

  static CallGraph build(const w2::ModuleDecl &M);
};

/// The SCC condensation plus the wavefront schedule.
struct SCCDecomposition {
  struct SCC {
    /// Member function ordinals, ascending.
    std::vector<uint32_t> Members;
    /// Distinct callee SCC ids, ascending; never contains the SCC itself.
    std::vector<uint32_t> CalleeSCCs;
    /// Wavefront level: 0 for leaves, otherwise 1 + max callee level.
    uint32_t Level = 0;
    /// True for multi-member SCCs and direct self-recursion; recursive
    /// SCCs get degraded (conservative) summaries.
    bool Recursive = false;
  };

  /// SCC id per function ordinal.
  std::vector<uint32_t> SCCOf;
  /// SCCs ordered deterministically by smallest member ordinal. The order
  /// is NOT topological; use Waves for scheduling.
  std::vector<SCC> SCCs;
  /// Waves[L] lists the SCC ids of level L, ascending. Every SCC appears
  /// in exactly one wave.
  std::vector<std::vector<uint32_t>> Waves;

  static SCCDecomposition compute(const CallGraph &G);
};

} // namespace interproc
} // namespace analysis
} // namespace warpc

#endif // WARPC_ANALYSIS_INTERPROC_CALLGRAPH_H
