//===- Summarize.h - Bottom-up SCC summarization ----------------*- C++ -*-===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Summarizes the member functions of one call-graph SCC, composing the
/// already-computed summaries of every callee SCC. This is the unit the
/// wavefront drivers schedule: all SCCs of one level are independent, so
/// workers can claim them in any order; the barrier between levels
/// guarantees the AllSummaries entries an SCC reads are complete.
///
/// Summarization also performs the caller-side halves of the three
/// interprocedural checks (interval demands against arguments, reads of
/// uninitialized arrays through out-parameters), so the returned SCCOutput
/// carries both the summaries and the ready-to-merge diagnostics — which
/// is exactly what the summary cache persists.
///
//===----------------------------------------------------------------------===//

#ifndef WARPC_ANALYSIS_INTERPROC_SUMMARIZE_H
#define WARPC_ANALYSIS_INTERPROC_SUMMARIZE_H

#include "analysis/Checks.h"
#include "analysis/interproc/CallGraph.h"
#include "analysis/interproc/Summary.h"

#include <vector>

namespace warpc {
namespace analysis {
namespace interproc {

/// Summarizes SCC \p SCCId of \p D. \p AllSummaries is indexed by function
/// ordinal; the entries of every callee SCC must already be filled in (the
/// wavefront schedule guarantees this). The result is a pure function of
/// the member bodies, the callee summaries, and the enabled-check set —
/// workers may compute it in any order, and the cache may replay it.
/// Recursive SCCs get conservative summaries and never emit diagnostics.
SCCOutput summarizeSCC(const CallGraph &G, const SCCDecomposition &D,
                       uint32_t SCCId,
                       const std::vector<FunctionSummary> &AllSummaries,
                       const AnalysisOptions &Opts);

} // namespace interproc
} // namespace analysis
} // namespace warpc

#endif // WARPC_ANALYSIS_INTERPROC_SUMMARIZE_H
