//===- CallGraph.cpp - Module call graph and SCC condensation -------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/interproc/CallGraph.h"

#include "support/Casting.h"

#include <algorithm>
#include <map>
#include <set>

using namespace warpc;
using namespace warpc::analysis::interproc;
using namespace warpc::w2;

namespace {

void collectCallNames(const Expr *E, std::set<std::string> &Out) {
  if (!E)
    return;
  switch (E->getKind()) {
  case Expr::Kind::IntLit:
  case Expr::Kind::FloatLit:
  case Expr::Kind::VarRef:
    return;
  case Expr::Kind::Index:
    collectCallNames(cast<IndexExpr>(E)->getIndex(), Out);
    return;
  case Expr::Kind::Unary:
    collectCallNames(cast<UnaryExpr>(E)->getOperand(), Out);
    return;
  case Expr::Kind::Cast:
    collectCallNames(cast<CastExpr>(E)->getOperand(), Out);
    return;
  case Expr::Kind::Binary:
    collectCallNames(cast<BinaryExpr>(E)->getLHS(), Out);
    collectCallNames(cast<BinaryExpr>(E)->getRHS(), Out);
    return;
  case Expr::Kind::Call: {
    const auto *C = cast<CallExpr>(E);
    Out.insert(C->getCallee());
    for (size_t I = 0; I != C->getNumArgs(); ++I)
      collectCallNames(C->getArg(I), Out);
    return;
  }
  }
}

void collectCallNames(const Stmt *S, std::set<std::string> &Out) {
  if (!S)
    return;
  switch (S->getKind()) {
  case Stmt::Kind::Block:
    for (const StmtPtr &C : cast<BlockStmt>(S)->stmts())
      collectCallNames(C.get(), Out);
    return;
  case Stmt::Kind::Decl:
    collectCallNames(cast<DeclStmt>(S)->getDecl()->getInit(), Out);
    return;
  case Stmt::Kind::Assign:
    collectCallNames(cast<AssignStmt>(S)->getTarget(), Out);
    collectCallNames(cast<AssignStmt>(S)->getValue(), Out);
    return;
  case Stmt::Kind::If:
    collectCallNames(cast<IfStmt>(S)->getCond(), Out);
    collectCallNames(cast<IfStmt>(S)->getThen(), Out);
    collectCallNames(cast<IfStmt>(S)->getElse(), Out);
    return;
  case Stmt::Kind::For:
    collectCallNames(cast<ForStmt>(S)->getLo(), Out);
    collectCallNames(cast<ForStmt>(S)->getHi(), Out);
    collectCallNames(cast<ForStmt>(S)->getBody(), Out);
    return;
  case Stmt::Kind::While:
    collectCallNames(cast<WhileStmt>(S)->getCond(), Out);
    collectCallNames(cast<WhileStmt>(S)->getBody(), Out);
    return;
  case Stmt::Kind::Return:
    collectCallNames(cast<ReturnStmt>(S)->getValue(), Out);
    return;
  case Stmt::Kind::Send:
    collectCallNames(cast<SendStmt>(S)->getValue(), Out);
    return;
  case Stmt::Kind::Receive:
    collectCallNames(cast<ReceiveStmt>(S)->getTarget(), Out);
    return;
  case Stmt::Kind::ExprStmt:
    collectCallNames(cast<ExprStmt>(S)->getExpr(), Out);
    return;
  }
}

} // namespace

CallGraph CallGraph::build(const ModuleDecl &M) {
  CallGraph G;

  // Pass 1: one node per function, flat declaration order, plus a
  // per-section name -> ordinal index (W2 calls resolve within a section).
  std::vector<std::map<std::string, uint32_t>> BySection(M.numSections());
  for (size_t S = 0; S != M.numSections(); ++S) {
    const SectionDecl *Section = M.getSection(S);
    for (size_t FI = 0; FI != Section->numFunctions(); ++FI) {
      Node N;
      N.Section = Section;
      N.Function = Section->getFunction(FI);
      N.Ordinal = static_cast<uint32_t>(G.Nodes.size());
      N.SectionIndex = static_cast<uint32_t>(S);
      BySection[S][N.Function->getName()] = N.Ordinal;
      G.Nodes.push_back(std::move(N));
    }
  }

  // Pass 2: resolve call edges. std::set keeps callee lists deduplicated;
  // ordinals are inserted in ascending order by construction of the map.
  for (Node &N : G.Nodes) {
    std::set<std::string> Names;
    collectCallNames(N.Function->getBody(), Names);
    std::set<uint32_t> Callees;
    const auto &Lookup = BySection[N.SectionIndex];
    for (const std::string &Name : Names) {
      auto It = Lookup.find(Name);
      if (It != Lookup.end())
        Callees.insert(It->second);
    }
    N.Callees.assign(Callees.begin(), Callees.end());
  }
  for (const Node &N : G.Nodes)
    for (uint32_t Callee : N.Callees)
      G.Nodes[Callee].Callers.push_back(N.Ordinal);

  return G;
}

namespace {

/// Iterative Tarjan SCC. Recursion depth would be bounded by the longest
/// call chain, but the sanitizer builds analyze adversarial inputs, so an
/// explicit stack keeps the pass depth-proof.
struct TarjanState {
  const CallGraph &G;
  std::vector<uint32_t> Index, LowLink;
  std::vector<bool> OnStack, Visited;
  std::vector<uint32_t> Stack;
  uint32_t NextIndex = 0;
  /// Raw components in Tarjan completion order (reverse topological).
  std::vector<std::vector<uint32_t>> Components;

  explicit TarjanState(const CallGraph &G)
      : G(G), Index(G.Nodes.size(), 0), LowLink(G.Nodes.size(), 0),
        OnStack(G.Nodes.size(), false), Visited(G.Nodes.size(), false) {}

  void run(uint32_t Root) {
    struct Frame {
      uint32_t V;
      size_t NextChild = 0;
    };
    std::vector<Frame> Frames;
    Frames.push_back({Root});
    Visited[Root] = true;
    Index[Root] = LowLink[Root] = NextIndex++;
    Stack.push_back(Root);
    OnStack[Root] = true;

    while (!Frames.empty()) {
      Frame &F = Frames.back();
      const auto &Callees = G.Nodes[F.V].Callees;
      if (F.NextChild < Callees.size()) {
        uint32_t W = Callees[F.NextChild++];
        if (!Visited[W]) {
          Visited[W] = true;
          Index[W] = LowLink[W] = NextIndex++;
          Stack.push_back(W);
          OnStack[W] = true;
          Frames.push_back({W});
        } else if (OnStack[W]) {
          LowLink[F.V] = std::min(LowLink[F.V], Index[W]);
        }
        continue;
      }
      // All children done: pop the frame, fold lowlink into the parent,
      // and emit a component when V is its root.
      uint32_t V = F.V;
      Frames.pop_back();
      if (!Frames.empty())
        LowLink[Frames.back().V] = std::min(LowLink[Frames.back().V],
                                            LowLink[V]);
      if (LowLink[V] == Index[V]) {
        std::vector<uint32_t> Comp;
        for (;;) {
          uint32_t W = Stack.back();
          Stack.pop_back();
          OnStack[W] = false;
          Comp.push_back(W);
          if (W == V)
            break;
        }
        std::sort(Comp.begin(), Comp.end());
        Components.push_back(std::move(Comp));
      }
    }
  }
};

} // namespace

SCCDecomposition SCCDecomposition::compute(const CallGraph &G) {
  SCCDecomposition D;
  const size_t N = G.Nodes.size();
  D.SCCOf.assign(N, 0);

  TarjanState T(G);
  for (uint32_t V = 0; V != N; ++V)
    if (!T.Visited[V])
      T.run(V);

  // Renumber components by smallest member ordinal so the id assignment
  // is a pure function of the module, independent of traversal order.
  std::sort(T.Components.begin(), T.Components.end(),
            [](const std::vector<uint32_t> &A, const std::vector<uint32_t> &B) {
              return A.front() < B.front();
            });

  D.SCCs.resize(T.Components.size());
  for (uint32_t Id = 0; Id != T.Components.size(); ++Id) {
    D.SCCs[Id].Members = std::move(T.Components[Id]);
    for (uint32_t M : D.SCCs[Id].Members)
      D.SCCOf[M] = Id;
  }

  for (uint32_t Id = 0; Id != D.SCCs.size(); ++Id) {
    SCC &C = D.SCCs[Id];
    std::set<uint32_t> Callees;
    bool SelfEdge = false;
    for (uint32_t M : C.Members)
      for (uint32_t Callee : G.Nodes[M].Callees) {
        uint32_t CS = D.SCCOf[Callee];
        if (CS == Id)
          SelfEdge = true;
        else
          Callees.insert(CS);
      }
    C.CalleeSCCs.assign(Callees.begin(), Callees.end());
    C.Recursive = C.Members.size() > 1 || SelfEdge;
  }

  // Wavefront levels: a callee-first longest-path layering. Callee SCC
  // levels are always computable before the caller's because the
  // condensation is acyclic; iterate until stable (bounded by SCC count,
  // in practice one or two sweeps for declaration-ordered programs).
  std::vector<bool> Done(D.SCCs.size(), false);
  size_t Remaining = D.SCCs.size();
  while (Remaining != 0) {
    bool Progress = false;
    for (uint32_t Id = 0; Id != D.SCCs.size(); ++Id) {
      if (Done[Id])
        continue;
      uint32_t Level = 0;
      bool Ready = true;
      for (uint32_t Callee : D.SCCs[Id].CalleeSCCs) {
        if (!Done[Callee]) {
          Ready = false;
          break;
        }
        Level = std::max(Level, D.SCCs[Callee].Level + 1);
      }
      if (Ready) {
        D.SCCs[Id].Level = Level;
        Done[Id] = true;
        --Remaining;
        Progress = true;
      }
    }
    if (!Progress)
      break; // unreachable: the condensation is a DAG
  }

  uint32_t MaxLevel = 0;
  for (const SCC &C : D.SCCs)
    MaxLevel = std::max(MaxLevel, C.Level);
  D.Waves.assign(D.SCCs.empty() ? 0 : MaxLevel + 1, {});
  for (uint32_t Id = 0; Id != D.SCCs.size(); ++Id)
    D.Waves[D.SCCs[Id].Level].push_back(Id);

  return D;
}
