//===- InterprocAnalysis.cpp - Whole-program analysis driver --------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/interproc/InterprocAnalysis.h"

#include <algorithm>
#include <set>

using namespace warpc;
using namespace warpc::analysis;
using namespace warpc::analysis::interproc;

bool interproc::anyInterprocCheckEnabled(const AnalysisOptions &Opts) {
  return Opts.enabled(check::InterprocArrayBounds) ||
         Opts.enabled(check::InterprocDivZero) ||
         Opts.enabled(check::InterprocUninit) ||
         Opts.enabled(check::ChannelDeadlock);
}

InterprocResult interproc::runInterproc(const w2::ModuleDecl &M,
                                        const AnalysisOptions &Opts) {
  InterprocResult R;
  if (!anyInterprocCheckEnabled(Opts))
    return R;

  R.Graph = CallGraph::build(M);
  if (R.Graph.Nodes.empty())
    return R;
  R.SCCs = SCCDecomposition::compute(R.Graph);
  R.Summaries.resize(R.Graph.Nodes.size());

  // One diag slot per SCC so the merge order is a pure function of the
  // module — the parallel driver fills the same slots from worker threads
  // and merges identically.
  std::vector<std::vector<Diag>> Slots(R.SCCs.SCCs.size());
  for (const std::vector<uint32_t> &Wave : R.SCCs.Waves)
    for (uint32_t Id : Wave) {
      SCCOutput Out = summarizeSCC(R.Graph, R.SCCs, Id, R.Summaries, Opts);
      for (FunctionSummary &S : Out.Summaries)
        R.Summaries[S.Ordinal] = std::move(S);
      Slots[Id] = std::move(Out.Diags);
    }
  for (std::vector<Diag> &S : Slots)
    R.Diags.insert(R.Diags.end(), std::make_move_iterator(S.begin()),
                   std::make_move_iterator(S.end()));

  std::vector<Diag> DeadlockDiags =
      checkSystolicDeadlock(R.Graph, R.Summaries, Opts);
  R.Diags.insert(R.Diags.end(),
                 std::make_move_iterator(DeadlockDiags.begin()),
                 std::make_move_iterator(DeadlockDiags.end()));
  return R;
}

namespace {

/// Renders a witness chain as notes: intermediate frames are the call
/// sites the traffic flows through; the final frame is the operation
/// itself.
void appendChainNotes(Diag &D, const CallChain &Chain, const char *LeafWhat) {
  for (size_t I = 0; I != Chain.size(); ++I) {
    const ChainLink &L = Chain[I];
    if (I + 1 != Chain.size())
      D.Notes.push_back({L.Loc, "the traffic flows through this call in '" +
                                    L.Function + "'"});
    else
      D.Notes.push_back(
          {L.Loc, std::string(LeafWhat) + " in '" + L.Function + "' is here"});
  }
}

} // namespace

std::vector<Diag> interproc::checkSystolicDeadlock(
    const CallGraph &G, const std::vector<FunctionSummary> &Summaries,
    const AnalysisOptions &Opts) {
  std::vector<Diag> Diags;
  if (!Opts.enabled(check::ChannelDeadlock))
    return Diags;

  // Cell programs are the uncalled functions with channel traffic, in
  // declaration order — the same pipeline model the intraprocedural
  // protocol check uses, but over composed summaries, so traffic hidden
  // behind helper calls with symbolic trip counts still resolves.
  std::vector<const FunctionSummary *> Stages;
  for (const CallGraph::Node &N : G.Nodes) {
    const FunctionSummary &S = Summaries[N.Ordinal];
    if (S.HasChannelTraffic && N.Callers.empty())
      Stages.push_back(&S);
  }

  for (size_t I = 0; I + 1 < Stages.size(); ++I) {
    const FunctionSummary &Up = *Stages[I];
    const FunctionSummary &Down = *Stages[I + 1];
    std::optional<uint64_t> Sent = Up.Channels.SendY.constantCount();
    std::optional<uint64_t> Received = Down.Channels.RecvX.constantCount();
    if (!Sent || !Received || *Received <= *Sent)
      continue; // matched or overfed links are the old warning's business

    Diag D;
    D.CheckId = check::ChannelDeadlock;
    const CheckInfo *Info = findCheck(check::ChannelDeadlock);
    D.Sev = Info ? Info->DefaultSev : Severity::Error;
    D.Section = Down.SectionName;
    D.Function = Down.FunctionName;
    D.FunctionOrdinal = Down.Ordinal;
    D.Loc = G.Nodes[Down.Ordinal].Function->getLoc();
    D.Range.Begin = D.Loc;
    D.Message = "cell program '" + Down.FunctionName +
                "' deadlocks: it receives " + std::to_string(*Received) +
                " value(s) on X but the upstream cell '" + Up.FunctionName +
                "' sends only " + std::to_string(*Sent) + " on Y";
    appendChainNotes(D, Down.Channels.RecvXChain, "the starving receive");
    appendChainNotes(D, Up.Channels.SendYChain, "the last send");
    D.Notes.push_back({G.Nodes[Down.Ordinal].Function->getLoc(),
                       "cells downstream of '" + Down.FunctionName +
                           "' never receive their inputs once this link "
                           "stalls"});
    Diags.push_back(std::move(D));
  }
  return Diags;
}

void interproc::supersedeChannelMismatch(std::vector<Diag> &Diags) {
  std::set<uint32_t> Deadlocked;
  for (const Diag &D : Diags)
    if (D.CheckId == check::ChannelDeadlock)
      Deadlocked.insert(D.FunctionOrdinal);
  if (Deadlocked.empty())
    return;
  Diags.erase(std::remove_if(Diags.begin(), Diags.end(),
                             [&](const Diag &D) {
                               return D.CheckId == check::ChannelMismatch &&
                                      Deadlocked.count(D.FunctionOrdinal);
                             }),
              Diags.end());
}
