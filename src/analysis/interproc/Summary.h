//===- Summary.h - Per-function interprocedural summaries -------*- C++ -*-===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The summary lattice of the interprocedural analysis. A FunctionSummary
/// abstracts one function's externally visible behavior:
///
///   - an interval for the returned value (int returns only),
///   - *demands* on scalar parameters: sites where an affine image of a
///     parameter is used as a divisor or as an array subscript, so callers
///     can check concrete arguments against them,
///   - per array-parameter effect bits (reads-before-write, writes), the
///     vehicle for use-of-uninitialized through out-parameters,
///   - channel Send/Recv counts as symbolic polynomials in the parameters
///     (loop trips with affine bounds multiply through), with a source
///     witness chain per direction,
///   - side-effect/purity bits.
///
/// Summaries compose bottom-up over the call graph: a call site
/// substitutes argument polynomials into the callee's counts, checks the
/// callee's demands against argument intervals, and re-exports demands
/// that remain affine in the caller's own parameters. Diagnostics found
/// while summarizing ride along in SCCOutput so a summary-cache hit can
/// replay them without re-walking the bodies.
///
//===----------------------------------------------------------------------===//

#ifndef WARPC_ANALYSIS_INTERPROC_SUMMARY_H
#define WARPC_ANALYSIS_INTERPROC_SUMMARY_H

#include "analysis/Diagnostic.h"
#include "support/BinaryStream.h"
#include "support/SourceLoc.h"

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace warpc {
namespace analysis {
namespace interproc {

//===----------------------------------------------------------------------===//
// SymPoly
//===----------------------------------------------------------------------===//

/// A multivariate polynomial over function parameters with int64
/// coefficients. Terms map a monomial — the sorted multiset of parameter
/// indices, e.g. {0,0,1} for p0^2*p1 — to its coefficient; the empty
/// monomial is the constant term. Construction fails closed: operations
/// that would exceed the degree/term caps or overflow coefficients mark
/// the poly invalid, and invalid polys poison everything downstream into
/// "unknown".
class SymPoly {
public:
  SymPoly() = default;

  static SymPoly constant(int64_t C);
  static SymPoly param(uint32_t P);
  static SymPoly invalid() {
    SymPoly P;
    P.Valid = false;
    return P;
  }

  bool valid() const { return Valid; }
  bool isZero() const { return Valid && Terms.empty(); }
  bool isConstant() const { return Valid && degree() == 0; }
  /// Constant value; only meaningful when isConstant().
  int64_t constantValue() const;
  uint32_t degree() const;
  /// True when the poly mentions parameter \p P.
  bool usesParam(uint32_t P) const;

  SymPoly operator+(const SymPoly &O) const;
  SymPoly operator-(const SymPoly &O) const;
  SymPoly operator*(const SymPoly &O) const;

  /// Substitutes Args[i] for parameter i. Parameters without a
  /// corresponding argument, or invalid arguments in used positions,
  /// invalidate the result.
  SymPoly substitute(const std::vector<SymPoly> &Args) const;

  /// Decomposes an affine-in-one-parameter poly: value == Scale*param +
  /// Offset with Scale != 0. Pure constants return false.
  bool asAffine(uint32_t &Param, int64_t &Scale, int64_t &Offset) const;

  /// Human-readable form for diagnostics, e.g. "3*n + 2" given parameter
  /// names; falls back to "p<i>" past the name list.
  std::string str(const std::vector<std::string> &ParamNames) const;

  friend bool operator==(const SymPoly &A, const SymPoly &B) {
    return A.Valid == B.Valid && (!A.Valid || A.Terms == B.Terms);
  }
  friend bool operator!=(const SymPoly &A, const SymPoly &B) {
    return !(A == B);
  }

  void encode(BinaryWriter &W) const;
  static std::optional<SymPoly> decode(BinaryReader &R);

private:
  bool withinCaps() const;

  bool Valid = true;
  std::map<std::vector<uint32_t>, int64_t> Terms;
};

//===----------------------------------------------------------------------===//
// Interval
//===----------------------------------------------------------------------===//

/// A possibly-unknown integer interval. Attained mirrors the intraproc
/// bounds checker's EndpointsAttained bit: when set, both endpoints occur
/// on some execution, which is what licenses "reaches" diagnostics
/// (interior points may be skipped by loop strides).
struct Interval {
  bool Known = false;
  int64_t Lo = 0;
  int64_t Hi = 0;
  bool Attained = false;

  static Interval top() { return {}; }
  static Interval of(int64_t Lo, int64_t Hi, bool Attained) {
    return {true, Lo, Hi, Attained};
  }
  static Interval single(int64_t V) { return of(V, V, true); }

  bool isSingle(int64_t V) const { return Known && Lo == V && Hi == V; }

  /// Lattice join (interval hull); attainment survives only when both
  /// sides attain their endpoints.
  static Interval join(const Interval &A, const Interval &B);

  friend bool operator==(const Interval &A, const Interval &B) {
    return A.Known == B.Known &&
           (!A.Known ||
            (A.Lo == B.Lo && A.Hi == B.Hi && A.Attained == B.Attained));
  }
};

/// Scale*I + Offset with saturation to Top on overflow.
Interval affineImage(const Interval &I, int64_t Scale, int64_t Offset);

//===----------------------------------------------------------------------===//
// Summary components
//===----------------------------------------------------------------------===//

/// One frame of a call-chain witness: the function a site lives in and
/// the site's location. Chains start at the summarized function and end
/// at the leaf site.
struct ChainLink {
  std::string Function;
  SourceLoc Loc;

  friend bool operator==(const ChainLink &A, const ChainLink &B) {
    return A.Function == B.Function && A.Loc.Line == B.Loc.Line &&
           A.Loc.Column == B.Loc.Column;
  }
};

using CallChain = std::vector<ChainLink>;

/// A demand on a scalar parameter: somewhere in this function (or a
/// transitive callee) the value Scale*param + Offset is used as a divisor
/// or as a subscript into an array of the given extent.
struct ParamDemand {
  enum Kind : uint8_t { Divisor, ArrayIndex };

  Kind K = Divisor;
  uint32_t ParamIndex = 0;
  int64_t Scale = 1;
  int64_t Offset = 0;
  int64_t Extent = 0;      ///< ArrayIndex only.
  std::string ArrayName;   ///< ArrayIndex only, for messages.
  CallChain Chain;         ///< First frame is in the summarized function.

  friend bool operator==(const ParamDemand &A, const ParamDemand &B) {
    return A.K == B.K && A.ParamIndex == B.ParamIndex && A.Scale == B.Scale &&
           A.Offset == B.Offset && A.Extent == B.Extent &&
           A.ArrayName == B.ArrayName && A.Chain == B.Chain;
  }
};

/// Effect bits for one array parameter.
struct ArrayParamUse {
  uint32_t ParamIndex = 0;
  /// Some element is read at a point no write to the array can precede —
  /// the callee-side half of use-of-uninitialized-through-out-parameter.
  bool ReadsBeforeWrite = false;
  /// The function may write the array (any path).
  bool MayWrite = false;
  /// The function writes the array on every complete execution.
  bool DefinitelyWrites = false;
  CallChain ReadChain; ///< Witness for the first uninitialized-capable read.

  friend bool operator==(const ArrayParamUse &A, const ArrayParamUse &B) {
    return A.ParamIndex == B.ParamIndex &&
           A.ReadsBeforeWrite == B.ReadsBeforeWrite &&
           A.MayWrite == B.MayWrite &&
           A.DefinitelyWrites == B.DefinitelyWrites &&
           A.ReadChain == B.ReadChain;
  }
};

/// A possibly-unknown symbolic channel count.
struct ChannelPoly {
  bool Known = true;
  SymPoly P; ///< Zero poly by default.

  static ChannelPoly unknown() { return {false, SymPoly()}; }
  static ChannelPoly of(SymPoly Poly) {
    if (!Poly.valid())
      return unknown();
    return {true, std::move(Poly)};
  }
  bool isZero() const { return Known && P.isZero(); }
  /// Constant evaluation; negative results (artifacts of unclamped
  /// symbolic trip counts) degrade to nullopt.
  std::optional<uint64_t> constantCount() const;

  friend bool operator==(const ChannelPoly &A, const ChannelPoly &B) {
    return A.Known == B.Known && (!A.Known || A.P == B.P);
  }
};

/// The four channel directions of one function execution, with a witness
/// chain per direction pointing at the first contributing site.
struct ChannelSummary {
  ChannelPoly SendX, SendY, RecvX, RecvY;
  CallChain SendXChain, SendYChain, RecvXChain, RecvYChain;

  bool anyTraffic() const {
    return !SendX.isZero() || !SendY.isZero() || !RecvX.isZero() ||
           !RecvY.isZero();
  }
};

/// Everything the analysis knows about one function from the outside.
struct FunctionSummary {
  uint32_t Ordinal = 0;
  std::string SectionName;
  std::string FunctionName;
  uint32_t NumParams = 0;
  Interval Ret; ///< Top for void/float returns and recursive SCCs.
  std::vector<ParamDemand> Demands;
  std::vector<ArrayParamUse> ArrayUses; ///< One entry per array parameter.
  ChannelSummary Channels;
  bool WritesArrayParams = false;
  bool HasChannelTraffic = false;
  /// No channel traffic and no writes through array parameters — calls
  /// are observable only through the returned value.
  bool Pure = false;
};

/// Result of summarizing one SCC: member summaries plus the caller-side
/// diagnostics discovered while walking the member bodies. This is the
/// summary-cache unit.
struct SCCOutput {
  std::vector<FunctionSummary> Summaries;
  std::vector<Diag> Diags;
};

/// Version tag of the SCCOutput wire format. Also folded into summary
/// cache keys, so bumping it orphans (rather than misdecodes) old
/// entries.
inline constexpr uint32_t SummaryFormatVersion = 1;

/// Serializes an SCCOutput (version-tagged; decode returns nullopt on any
/// malformation, which the cache treats as a miss).
std::vector<uint8_t> encodeSCCOutput(const SCCOutput &O);
std::optional<SCCOutput> decodeSCCOutput(const std::vector<uint8_t> &Bytes);

} // namespace interproc
} // namespace analysis
} // namespace warpc

#endif // WARPC_ANALYSIS_INTERPROC_SUMMARY_H
