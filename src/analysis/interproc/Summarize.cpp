//===- Summarize.cpp - Bottom-up SCC summarization ------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//
//
// One structured walk per member function computes everything the summary
// needs in program order: symbolic channel counts (the ChannelWalker
// algebra lifted from literal counts to polynomials in the parameters),
// divisor/subscript demands on parameters, array-parameter effect bits,
// and the caller-side checks at every call site — demanded intervals
// against argument ranges, reads-before-write against uninitialized local
// arrays, and transitive demand re-export when an argument is affine in
// the caller's own parameter.
//
// The checks deliberately fire only where the intraprocedural passes are
// blind: demands are exported only for parameter-dependent expressions
// (anything a single function body can resolve is the PR-3 bounds
// checker's job), and uninitialized-array reads are flagged only through
// call boundaries (intraprocedural use-before-init skips arrays).
//
//===----------------------------------------------------------------------===//

#include "analysis/interproc/Summarize.h"

#include "support/Casting.h"

#include <algorithm>
#include <map>
#include <set>

using namespace warpc;
using namespace warpc::analysis;
using namespace warpc::analysis::interproc;
using namespace warpc::w2;

namespace {

constexpr size_t MaxChainLinks = 8;
constexpr size_t MaxDemands = 32;

CallChain prepend(ChainLink L, const CallChain &Rest) {
  CallChain C;
  C.reserve(std::min(Rest.size() + 1, MaxChainLinks));
  C.push_back(std::move(L));
  for (const ChainLink &R : Rest) {
    if (C.size() >= MaxChainLinks)
      break;
    C.push_back(R);
  }
  return C;
}

//===----------------------------------------------------------------------===//
// Channel algebra over ChannelPoly
//===----------------------------------------------------------------------===//

/// One direction's accumulated count plus the witness chain of the first
/// contributing site.
struct DirState {
  ChannelPoly P; ///< Zero by default.
  CallChain Chain;

  bool hasTraffic() const { return !P.isZero(); }
};

struct ChanState {
  DirState SendX, SendY, RecvX, RecvY;
};

DirState addDir(const DirState &A, const DirState &B) {
  DirState R;
  if (!A.P.Known || !B.P.Known)
    R.P = ChannelPoly::unknown();
  else
    R.P = ChannelPoly::of(A.P.P + B.P.P); // invalid poly degrades to unknown
  R.Chain = A.hasTraffic() ? A.Chain : B.Chain;
  return R;
}

ChanState addChan(const ChanState &A, const ChanState &B) {
  return {addDir(A.SendX, B.SendX), addDir(A.SendY, B.SendY),
          addDir(A.RecvX, B.RecvX), addDir(A.RecvY, B.RecvY)};
}

DirState timesDir(const DirState &D, const ChannelPoly &Trip) {
  if (D.P.isZero())
    return {};
  if (Trip.isZero())
    return {};
  DirState R;
  if (!D.P.Known || !Trip.Known)
    R.P = ChannelPoly::unknown();
  else
    R.P = ChannelPoly::of(D.P.P * Trip.P);
  R.Chain = D.Chain;
  return R;
}

ChanState timesChan(const ChanState &C, const ChannelPoly &Trip) {
  return {timesDir(C.SendX, Trip), timesDir(C.SendY, Trip),
          timesDir(C.RecvX, Trip), timesDir(C.RecvY, Trip)};
}

/// Counts that might or might not execute: anything nonzero blurs to
/// unknown (same rule as the intraprocedural walker).
DirState blurDir(const DirState &Sofar, const DirState &Later) {
  if (!Later.hasTraffic())
    return Sofar;
  DirState R;
  R.P = ChannelPoly::unknown();
  R.Chain = Sofar.hasTraffic() ? Sofar.Chain : Later.Chain;
  return R;
}

ChanState afterMayExit(const ChanState &Sofar, const ChanState &Later) {
  return {blurDir(Sofar.SendX, Later.SendX), blurDir(Sofar.SendY, Later.SendY),
          blurDir(Sofar.RecvX, Later.RecvX),
          blurDir(Sofar.RecvY, Later.RecvY)};
}

/// If-arm merge: agreeing counts survive, diverging counts go unknown.
/// No diagnostic here — the intraprocedural channel-path check already
/// reports diverging arms.
DirState mergeArmDir(const DirState &A, const DirState &B) {
  if (A.P == B.P) {
    DirState R = A;
    if (!R.hasTraffic())
      R.Chain = B.Chain;
    return R;
  }
  DirState R;
  R.P = ChannelPoly::unknown();
  R.Chain = A.hasTraffic() ? A.Chain : B.Chain;
  return R;
}

ChanState mergeArms(const ChanState &A, const ChanState &B) {
  return {mergeArmDir(A.SendX, B.SendX), mergeArmDir(A.SendY, B.SendY),
          mergeArmDir(A.RecvX, B.RecvX), mergeArmDir(A.RecvY, B.RecvY)};
}

/// How a statement can leave the enclosing function.
enum class ExitKind { None, May, Definite };

struct WalkResult {
  ChanState Chan;
  ExitKind Exit = ExitKind::None;
};

//===----------------------------------------------------------------------===//
// Per-function summarizer
//===----------------------------------------------------------------------===//

/// State of one local array while walking in program order.
struct LocalArray {
  SourceLoc DeclLoc;
  int64_t Extent = 0;
  bool MaybeWritten = false;
};

class Summarizer {
public:
  Summarizer(const CallGraph &G,
             const std::vector<FunctionSummary> &AllSummaries,
             const AnalysisOptions &Opts, std::vector<Diag> &Diags)
      : G(G), All(AllSummaries), Opts(Opts), Diags(Diags) {
    for (const CallGraph::Node &N : G.Nodes)
      Lookup[{N.SectionIndex, N.Function->getName()}] = N.Ordinal;
  }

  FunctionSummary run(uint32_t Ordinal);

private:
  // -- prepass ------------------------------------------------------------
  void collectMutated(const Stmt *S);
  void collectMutatedExprTargets(const Expr *E);

  // -- value models -------------------------------------------------------
  Interval exprInterval(const Expr *E) const;
  SymPoly exprPoly(const Expr *E) const;
  const FunctionSummary *calleeSummary(const std::string &Name) const;

  // -- the walk -----------------------------------------------------------
  WalkResult walkStmt(const Stmt *S, bool Definite);
  ChanState visitExpr(const Expr *E, bool Definite);
  ChannelPoly tripPoly(const ForStmt *L) const;

  void handleIndexSite(const IndexExpr *IE, bool IsWrite, bool Definite);
  void handleDivSite(const Expr *Divisor, SourceLoc Loc);
  void handleCall(const CallExpr *C, bool Definite, ChanState &Chan);

  // -- demand checking and export ----------------------------------------
  void checkDemandAt(const ParamDemand &D, const Interval &ArgI,
                     SourceLoc CallLoc, const std::string &CalleeName);
  void exportDemand(ParamDemand D);
  void reportDivisor(SourceLoc Loc, const CallChain &Chain,
                     const Interval &I);
  void reportSubscript(SourceLoc Loc, const CallChain &Chain,
                       const std::string &ArrayName, int64_t Extent,
                       const Interval &I);

  Diag makeDiag(const char *CheckId, SourceLoc Loc, std::string Message);
  void appendChainNotes(Diag &D, const CallChain &Chain, const char *LeafWhat);

  // -- per-function state -------------------------------------------------
  const CallGraph &G;
  const std::vector<FunctionSummary> &All;
  const AnalysisOptions &Opts;
  std::vector<Diag> &Diags;
  std::map<std::pair<uint32_t, std::string>, uint32_t> Lookup;

  const CallGraph::Node *Node = nullptr;
  FunctionSummary Sum;
  std::map<std::string, uint32_t> IntParams;  ///< scalar int param -> index
  std::map<std::string, uint32_t> ArrayParams; ///< array param -> index
  std::map<uint32_t, size_t> UseSlot;          ///< param index -> ArrayUses
  std::vector<bool> ParamMaybeWritten;         ///< per ArrayUses slot
  std::map<std::string, LocalArray> Locals;
  std::map<std::string, int64_t> ConstLocals; ///< literal-init, never mutated
  std::set<std::string> Mutated;              ///< assigned/received/induction
  std::map<std::string, Interval> Env;        ///< live induction variables
  Interval RetAcc;
  bool SawReturnValue = false;
};

FunctionSummary Summarizer::run(uint32_t Ordinal) {
  Node = &G.Nodes[Ordinal];
  const FunctionDecl &F = *Node->Function;

  Sum = FunctionSummary();
  Sum.Ordinal = Ordinal;
  Sum.SectionName = Node->Section->getName();
  Sum.FunctionName = F.getName();
  Sum.NumParams = static_cast<uint32_t>(F.params().size());

  IntParams.clear();
  ArrayParams.clear();
  UseSlot.clear();
  ParamMaybeWritten.clear();
  Locals.clear();
  ConstLocals.clear();
  Mutated.clear();
  Env.clear();
  RetAcc = Interval();
  SawReturnValue = false;

  for (uint32_t I = 0; I != Sum.NumParams; ++I) {
    const ParamDecl &P = F.params()[I];
    if (P.Ty.isArray()) {
      ArrayParams[P.Name] = I;
      UseSlot[I] = Sum.ArrayUses.size();
      ArrayParamUse U;
      U.ParamIndex = I;
      Sum.ArrayUses.push_back(U);
      ParamMaybeWritten.push_back(false);
    } else if (P.Ty.isInt()) {
      IntParams[P.Name] = I;
    }
  }

  collectMutated(F.getBody());

  WalkResult R = walkStmt(F.getBody(), /*Definite=*/true);

  Sum.Channels.SendX = R.Chan.SendX.P;
  Sum.Channels.SendY = R.Chan.SendY.P;
  Sum.Channels.RecvX = R.Chan.RecvX.P;
  Sum.Channels.RecvY = R.Chan.RecvY.P;
  Sum.Channels.SendXChain = R.Chan.SendX.Chain;
  Sum.Channels.SendYChain = R.Chan.SendY.Chain;
  Sum.Channels.RecvXChain = R.Chan.RecvX.Chain;
  Sum.Channels.RecvYChain = R.Chan.RecvY.Chain;
  Sum.HasChannelTraffic = Sum.Channels.anyTraffic();

  if (F.getReturnType().isInt() && SawReturnValue &&
      R.Exit == ExitKind::Definite)
    Sum.Ret = RetAcc;
  else
    Sum.Ret = Interval::top();

  Sum.Pure = !Sum.HasChannelTraffic && !Sum.WritesArrayParams;
  return Sum;
}

//===----------------------------------------------------------------------===//
// Prepass: which scalar names are ever mutated
//===----------------------------------------------------------------------===//

void Summarizer::collectMutatedExprTargets(const Expr *E) {
  if (!E)
    return;
  if (const auto *V = dyn_cast<VarRefExpr>(E))
    Mutated.insert(V->getName());
}

void Summarizer::collectMutated(const Stmt *S) {
  if (!S)
    return;
  switch (S->getKind()) {
  case Stmt::Kind::Block:
    for (const StmtPtr &C : cast<BlockStmt>(S)->stmts())
      collectMutated(C.get());
    return;
  case Stmt::Kind::Assign:
    collectMutatedExprTargets(cast<AssignStmt>(S)->getTarget());
    return;
  case Stmt::Kind::Receive:
    collectMutatedExprTargets(cast<ReceiveStmt>(S)->getTarget());
    return;
  case Stmt::Kind::If:
    collectMutated(cast<IfStmt>(S)->getThen());
    collectMutated(cast<IfStmt>(S)->getElse());
    return;
  case Stmt::Kind::For:
    Mutated.insert(cast<ForStmt>(S)->getIndVar());
    collectMutated(cast<ForStmt>(S)->getBody());
    return;
  case Stmt::Kind::While:
    collectMutated(cast<WhileStmt>(S)->getBody());
    return;
  default:
    return;
  }
}

//===----------------------------------------------------------------------===//
// Value models
//===----------------------------------------------------------------------===//

const FunctionSummary *
Summarizer::calleeSummary(const std::string &Name) const {
  auto It = Lookup.find({Node->SectionIndex, Name});
  if (It == Lookup.end())
    return nullptr;
  const FunctionSummary &S = All[It->second];
  // An empty name marks a summary slot the wavefront has not filled; the
  // only way to see one here is an in-SCC edge, which summarizeSCC routes
  // to the conservative path instead.
  return S.FunctionName.empty() ? nullptr : &S;
}

Interval Summarizer::exprInterval(const Expr *E) const {
  if (!E)
    return Interval::top();
  switch (E->getKind()) {
  case Expr::Kind::IntLit:
    return Interval::single(cast<IntLitExpr>(E)->getValue());
  case Expr::Kind::VarRef: {
    const std::string &Name = cast<VarRefExpr>(E)->getName();
    auto Ind = Env.find(Name);
    if (Ind != Env.end())
      return Ind->second;
    auto Const = ConstLocals.find(Name);
    if (Const != ConstLocals.end())
      return Interval::single(Const->second);
    return Interval::top();
  }
  case Expr::Kind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    if (U->getOp() != UnaryOp::Neg)
      return Interval::top();
    return affineImage(exprInterval(U->getOperand()), -1, 0);
  }
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    Interval L = exprInterval(B->getLHS());
    Interval R = exprInterval(B->getRHS());
    if (!L.Known || !R.Known)
      return Interval::top();
    // Attainment survives only when one side is a single point — the same
    // licensing rule the intraprocedural bounds checker uses.
    bool Attained = (L.Attained && R.isSingle(R.Lo)) ||
                    (L.isSingle(L.Lo) && R.Attained);
    switch (B->getOp()) {
    case BinaryOp::Add: {
      int64_t Lo, Hi;
      if (__builtin_add_overflow(L.Lo, R.Lo, &Lo) ||
          __builtin_add_overflow(L.Hi, R.Hi, &Hi))
        return Interval::top();
      return Interval::of(Lo, Hi, Attained);
    }
    case BinaryOp::Sub: {
      int64_t Lo, Hi;
      if (__builtin_sub_overflow(L.Lo, R.Hi, &Lo) ||
          __builtin_sub_overflow(L.Hi, R.Lo, &Hi))
        return Interval::top();
      return Interval::of(Lo, Hi, Attained);
    }
    case BinaryOp::Mul: {
      const Interval *Range = &L, *Point = &R;
      if (L.isSingle(L.Lo))
        std::swap(Range, Point);
      else if (!R.isSingle(R.Lo))
        return Interval::top();
      return affineImage(*Range, Point->Lo, 0);
    }
    default:
      return Interval::top();
    }
  }
  case Expr::Kind::Call: {
    const auto *C = cast<CallExpr>(E);
    if (const FunctionSummary *S = calleeSummary(C->getCallee()))
      return S->Ret;
    return Interval::top();
  }
  default:
    return Interval::top();
  }
}

SymPoly Summarizer::exprPoly(const Expr *E) const {
  if (!E)
    return SymPoly::invalid();
  switch (E->getKind()) {
  case Expr::Kind::IntLit:
    return SymPoly::constant(cast<IntLitExpr>(E)->getValue());
  case Expr::Kind::VarRef: {
    const std::string &Name = cast<VarRefExpr>(E)->getName();
    auto P = IntParams.find(Name);
    if (P != IntParams.end())
      return SymPoly::param(P->second);
    auto Const = ConstLocals.find(Name);
    if (Const != ConstLocals.end())
      return SymPoly::constant(Const->second);
    return SymPoly::invalid();
  }
  case Expr::Kind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    if (U->getOp() != UnaryOp::Neg)
      return SymPoly::invalid();
    return SymPoly::constant(0) - exprPoly(U->getOperand());
  }
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    switch (B->getOp()) {
    case BinaryOp::Add:
      return exprPoly(B->getLHS()) + exprPoly(B->getRHS());
    case BinaryOp::Sub:
      return exprPoly(B->getLHS()) - exprPoly(B->getRHS());
    case BinaryOp::Mul:
      return exprPoly(B->getLHS()) * exprPoly(B->getRHS());
    default:
      return SymPoly::invalid();
    }
  }
  case Expr::Kind::Call: {
    const auto *C = cast<CallExpr>(E);
    const FunctionSummary *S = calleeSummary(C->getCallee());
    if (S && S->Ret.Known && S->Ret.Lo == S->Ret.Hi)
      return SymPoly::constant(S->Ret.Lo);
    return SymPoly::invalid();
  }
  default:
    return SymPoly::invalid();
  }
}

//===----------------------------------------------------------------------===//
// Diagnostics
//===----------------------------------------------------------------------===//

Diag Summarizer::makeDiag(const char *CheckId, SourceLoc Loc,
                          std::string Message) {
  Diag D;
  D.CheckId = CheckId;
  const CheckInfo *Info = findCheck(CheckId);
  D.Sev = Info ? Info->DefaultSev : Severity::Error;
  D.Section = Sum.SectionName;
  D.Function = Sum.FunctionName;
  D.FunctionOrdinal = Sum.Ordinal;
  D.Loc = Loc;
  D.Range.Begin = Loc;
  D.Message = std::move(Message);
  return D;
}

void Summarizer::appendChainNotes(Diag &D, const CallChain &Chain,
                                  const char *LeafWhat) {
  for (size_t I = 0; I != Chain.size(); ++I) {
    const ChainLink &L = Chain[I];
    if (I + 1 != Chain.size())
      D.Notes.push_back({L.Loc, "the value flows through this call in '" +
                                    L.Function + "'"});
    else
      D.Notes.push_back(
          {L.Loc, std::string(LeafWhat) + " in '" + L.Function + "' is here"});
  }
}

void Summarizer::reportDivisor(SourceLoc Loc, const CallChain &Chain,
                               const Interval &I) {
  if (!Opts.enabled(check::InterprocDivZero))
    return;
  std::string Msg;
  bool ThroughCall = Chain.size() > 1 || (Chain.size() == 1 &&
                                          Chain[0].Function != Sum.FunctionName);
  std::string Prefix =
      ThroughCall
          ? "division by zero through this call to '" + Chain[0].Function + "'"
          : std::string("division by zero");
  if (I.isSingle(0))
    Msg = Prefix + ": the divisor is always 0";
  else
    Msg = Prefix + ": the divisor ranges over [" + std::to_string(I.Lo) +
          ", " + std::to_string(I.Hi) + "] and attains 0";
  Diag D = makeDiag(check::InterprocDivZero, Loc, std::move(Msg));
  if (ThroughCall)
    appendChainNotes(D, Chain, "the division");
  Diags.push_back(std::move(D));
}

void Summarizer::reportSubscript(SourceLoc Loc, const CallChain &Chain,
                                 const std::string &ArrayName, int64_t Extent,
                                 const Interval &I) {
  if (!Opts.enabled(check::InterprocArrayBounds))
    return;
  bool Always = I.Hi < 0 || I.Lo >= Extent;
  std::string Idx = I.isSingle(I.Lo)
                        ? "index " + std::to_string(I.Lo)
                        : "indices in [" + std::to_string(I.Lo) + ", " +
                              std::to_string(I.Hi) + "]";
  std::string Msg = "out-of-bounds access through this call to '" +
                    Chain[0].Function + "': '" + ArrayName + "[" +
                    std::to_string(Extent) + "]' is subscripted with " + Idx;
  Msg += Always ? ", entirely outside 0.." + std::to_string(Extent - 1)
                : ", which reaches outside 0.." + std::to_string(Extent - 1);
  Diag D = makeDiag(check::InterprocArrayBounds, Loc, std::move(Msg));
  appendChainNotes(D, Chain, "the subscript");
  Diags.push_back(std::move(D));
}

//===----------------------------------------------------------------------===//
// Demand checking and export
//===----------------------------------------------------------------------===//

/// Does the image interval prove a division by zero? Either the divisor
/// is the constant 0, or both endpoints occur and one of them is 0
/// (interior points may be skipped by loop strides, so only endpoint
/// zeros are provable).
static bool provesDivZero(const Interval &I) {
  if (!I.Known)
    return false;
  return I.isSingle(0) || (I.Attained && (I.Lo == 0 || I.Hi == 0));
}

/// Does the image interval prove an out-of-bounds subscript of
/// [0, Extent)? Entirely-outside needs no attainment; otherwise an
/// attained endpoint must fall outside.
static bool provesOutOfBounds(const Interval &I, int64_t Extent) {
  if (!I.Known)
    return false;
  if (I.Hi < 0 || I.Lo >= Extent)
    return true;
  return I.Attained && (I.Lo < 0 || I.Hi >= Extent);
}

void Summarizer::checkDemandAt(const ParamDemand &D, const Interval &ArgI,
                               SourceLoc CallLoc,
                               const std::string &CalleeName) {
  Interval Image = affineImage(ArgI, D.Scale, D.Offset);
  if (!Image.Known)
    return;
  CallChain Chain = prepend({CalleeName, CallLoc}, D.Chain);
  // The first chain frame names the callee; the leaf frames live in
  // D.Chain already. Anchor the diagnostic at the call site.
  if (D.K == ParamDemand::Divisor) {
    if (provesDivZero(Image))
      reportDivisor(CallLoc, Chain, Image);
  } else {
    if (provesOutOfBounds(Image, D.Extent))
      reportSubscript(CallLoc, Chain, D.ArrayName, D.Extent, Image);
  }
}

void Summarizer::exportDemand(ParamDemand D) {
  if (Sum.Demands.size() >= MaxDemands)
    return;
  for (const ParamDemand &Existing : Sum.Demands)
    if (Existing.K == D.K && Existing.ParamIndex == D.ParamIndex &&
        Existing.Scale == D.Scale && Existing.Offset == D.Offset &&
        Existing.Extent == D.Extent && Existing.ArrayName == D.ArrayName)
      return; // identical demand already exported; keep the first witness
  Sum.Demands.push_back(std::move(D));
}

void Summarizer::handleDivSite(const Expr *Divisor, SourceLoc Loc) {
  Interval I = exprInterval(Divisor);
  if (I.Known) {
    if (provesDivZero(I))
      reportDivisor(Loc, {{Sum.FunctionName, Loc}}, I);
    return; // locally resolved, nothing to export
  }
  uint32_t Param;
  int64_t Scale, Offset;
  SymPoly P = exprPoly(Divisor);
  if (!P.asAffine(Param, Scale, Offset))
    return;
  ParamDemand D;
  D.K = ParamDemand::Divisor;
  D.ParamIndex = Param;
  D.Scale = Scale;
  D.Offset = Offset;
  D.Chain = {{Sum.FunctionName, Loc}};
  exportDemand(std::move(D));
}

void Summarizer::handleIndexSite(const IndexExpr *IE, bool IsWrite,
                                 bool Definite) {
  const std::string &Name = IE->getBaseName();
  int64_t Extent = 0;

  auto PA = ArrayParams.find(Name);
  if (PA != ArrayParams.end()) {
    size_t Slot = UseSlot[PA->second];
    ArrayParamUse &U = Sum.ArrayUses[Slot];
    Extent = Node->Function->params()[PA->second].Ty.arraySize();
    if (IsWrite) {
      U.MayWrite = true;
      if (Definite)
        U.DefinitelyWrites = true;
      ParamMaybeWritten[Slot] = true;
      Sum.WritesArrayParams = true;
    } else if (!ParamMaybeWritten[Slot] && !U.ReadsBeforeWrite) {
      U.ReadsBeforeWrite = true;
      U.ReadChain = {{Sum.FunctionName, IE->getLoc()}};
    }
  } else {
    auto LA = Locals.find(Name);
    if (LA != Locals.end()) {
      Extent = LA->second.Extent;
      if (IsWrite)
        LA->second.MaybeWritten = true;
    }
  }

  // Demand export: only parameter-dependent subscripts — anything the
  // body resolves locally is the intraprocedural bounds checker's job.
  if (Extent <= 0)
    return;
  uint32_t Param;
  int64_t Scale, Offset;
  SymPoly P = exprPoly(IE->getIndex());
  if (!P.asAffine(Param, Scale, Offset))
    return;
  ParamDemand D;
  D.K = ParamDemand::ArrayIndex;
  D.ParamIndex = Param;
  D.Scale = Scale;
  D.Offset = Offset;
  D.Extent = Extent;
  D.ArrayName = Name;
  D.Chain = {{Sum.FunctionName, IE->getLoc()}};
  exportDemand(std::move(D));
}

//===----------------------------------------------------------------------===//
// Call sites
//===----------------------------------------------------------------------===//

void Summarizer::handleCall(const CallExpr *C, bool Definite,
                            ChanState &Chan) {
  const FunctionSummary *S = calleeSummary(C->getCallee());
  if (!S)
    return; // intrinsic or in-SCC edge: nothing composable

  SourceLoc CallLoc = C->getLoc();

  // Demands: check resolvable argument intervals, re-export what stays
  // affine in our own parameters.
  for (const ParamDemand &D : S->Demands) {
    if (D.ParamIndex >= C->getNumArgs())
      continue;
    const Expr *Arg = C->getArg(D.ParamIndex);
    Interval ArgI = exprInterval(Arg);
    if (ArgI.Known) {
      checkDemandAt(D, ArgI, CallLoc, S->FunctionName);
      continue; // resolved here, no export
    }
    uint32_t Param;
    int64_t Scale, Offset;
    SymPoly ArgP = exprPoly(Arg);
    if (!ArgP.asAffine(Param, Scale, Offset))
      continue;
    // Demand is on Scale_d*arg + Off_d; arg == Scale*p + Offset, so the
    // composed demand is (Scale_d*Scale)*p + (Scale_d*Offset + Off_d).
    int64_t NewScale, ScaledOff, NewOffset;
    if (__builtin_mul_overflow(D.Scale, Scale, &NewScale) ||
        __builtin_mul_overflow(D.Scale, Offset, &ScaledOff) ||
        __builtin_add_overflow(ScaledOff, D.Offset, &NewOffset) ||
        NewScale == 0)
      continue;
    ParamDemand Out;
    Out.K = D.K;
    Out.ParamIndex = Param;
    Out.Scale = NewScale;
    Out.Offset = NewOffset;
    Out.Extent = D.Extent;
    Out.ArrayName = D.ArrayName;
    Out.Chain = prepend({S->FunctionName, CallLoc}, D.Chain);
    exportDemand(std::move(Out));
  }

  // Array arguments: compose effect bits and flag reads of provably
  // uninitialized local arrays through the callee's out-parameters.
  for (size_t I = 0; I != C->getNumArgs(); ++I) {
    const auto *V = dyn_cast<VarRefExpr>(C->getArg(I));
    if (!V)
      continue;
    const ArrayParamUse *U = nullptr;
    for (const ArrayParamUse &Use : S->ArrayUses)
      if (Use.ParamIndex == I) {
        U = &Use;
        break;
      }
    if (!U)
      continue;

    auto LA = Locals.find(V->getName());
    if (LA != Locals.end()) {
      if (U->ReadsBeforeWrite && !LA->second.MaybeWritten &&
          Opts.enabled(check::InterprocUninit)) {
        Diag D = makeDiag(
            check::InterprocUninit, CallLoc,
            "'" + V->getName() + "' is passed to '" + S->FunctionName +
                "', which reads it before writing it, but no element has "
                "been initialized");
        D.Notes.push_back(
            {LA->second.DeclLoc, "'" + V->getName() + "' declared here"});
        appendChainNotes(D, prepend({S->FunctionName, CallLoc}, U->ReadChain),
                         "the read");
        Diags.push_back(std::move(D));
      }
      if (U->MayWrite)
        LA->second.MaybeWritten = true;
      continue;
    }

    auto PA = ArrayParams.find(V->getName());
    if (PA != ArrayParams.end()) {
      size_t Slot = UseSlot[PA->second];
      ArrayParamUse &Own = Sum.ArrayUses[Slot];
      if (U->ReadsBeforeWrite && !ParamMaybeWritten[Slot] &&
          !Own.ReadsBeforeWrite) {
        Own.ReadsBeforeWrite = true;
        Own.ReadChain = prepend({S->FunctionName, CallLoc}, U->ReadChain);
      }
      if (U->MayWrite) {
        Own.MayWrite = true;
        ParamMaybeWritten[Slot] = true;
        Sum.WritesArrayParams = true;
        if (U->DefinitelyWrites && Definite)
          Own.DefinitelyWrites = true;
      }
    }
  }

  // Channel counts: substitute argument polynomials into the callee's
  // symbolic counts. A direction the callee never touches stays zero; a
  // substitution that does not resolve degrades to unknown.
  if (S->HasChannelTraffic) {
    std::vector<SymPoly> ArgPolys;
    ArgPolys.reserve(C->getNumArgs());
    for (size_t I = 0; I != C->getNumArgs(); ++I)
      ArgPolys.push_back(exprPoly(C->getArg(I)));

    auto SubstDir = [&](const ChannelPoly &P,
                        const CallChain &CalleeChain) -> DirState {
      DirState D;
      if (P.isZero())
        return D;
      if (!P.Known)
        D.P = ChannelPoly::unknown();
      else
        D.P = ChannelPoly::of(P.P.substitute(ArgPolys));
      D.Chain = prepend({S->FunctionName, CallLoc}, CalleeChain);
      return D;
    };
    ChanState CallChan;
    CallChan.SendX = SubstDir(S->Channels.SendX, S->Channels.SendXChain);
    CallChan.SendY = SubstDir(S->Channels.SendY, S->Channels.SendYChain);
    CallChan.RecvX = SubstDir(S->Channels.RecvX, S->Channels.RecvXChain);
    CallChan.RecvY = SubstDir(S->Channels.RecvY, S->Channels.RecvYChain);
    Chan = addChan(Chan, CallChan);
  }
}

//===----------------------------------------------------------------------===//
// Expression and statement walks
//===----------------------------------------------------------------------===//

ChanState Summarizer::visitExpr(const Expr *E, bool Definite) {
  ChanState Chan;
  if (!E)
    return Chan;
  switch (E->getKind()) {
  case Expr::Kind::IntLit:
  case Expr::Kind::FloatLit:
  case Expr::Kind::VarRef:
    return Chan;
  case Expr::Kind::Index: {
    const auto *IE = cast<IndexExpr>(E);
    Chan = visitExpr(IE->getIndex(), Definite);
    handleIndexSite(IE, /*IsWrite=*/false, Definite);
    return Chan;
  }
  case Expr::Kind::Unary:
    return visitExpr(cast<UnaryExpr>(E)->getOperand(), Definite);
  case Expr::Kind::Cast:
    return visitExpr(cast<CastExpr>(E)->getOperand(), Definite);
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    Chan = addChan(visitExpr(B->getLHS(), Definite),
                   visitExpr(B->getRHS(), Definite));
    if (B->getOp() == BinaryOp::Div || B->getOp() == BinaryOp::Rem)
      handleDivSite(B->getRHS(), B->getLoc());
    return Chan;
  }
  case Expr::Kind::Call: {
    const auto *C = cast<CallExpr>(E);
    for (size_t I = 0; I != C->getNumArgs(); ++I)
      Chan = addChan(Chan, visitExpr(C->getArg(I), Definite));
    handleCall(C, Definite, Chan);
    return Chan;
  }
  }
  return Chan;
}

ChannelPoly Summarizer::tripPoly(const ForStmt *L) const {
  const auto *Lo = dyn_cast<IntLitExpr>(L->getLo());
  const auto *Hi = dyn_cast<IntLitExpr>(L->getHi());
  int64_t Step = L->getStep();
  if (Step == 0)
    return ChannelPoly::unknown();
  if (Lo && Hi) {
    int64_t LoV = Lo->getValue(), HiV = Hi->getValue();
    int64_t Trips;
    if (Step > 0)
      Trips = HiV >= LoV ? (HiV - LoV) / Step + 1 : 0;
    else
      Trips = LoV >= HiV ? (LoV - HiV) / -Step + 1 : 0;
    return ChannelPoly::of(SymPoly::constant(Trips));
  }
  if (Step != 1)
    return ChannelPoly::unknown();
  // Symbolic bounds with unit step: hi - lo + 1. A negative value at a
  // call site means zero trips; ChannelPoly::constantCount degrades such
  // results to unknown rather than reporting a wrong count.
  SymPoly LoP = exprPoly(L->getLo());
  SymPoly HiP = exprPoly(L->getHi());
  return ChannelPoly::of(HiP - LoP + SymPoly::constant(1));
}

WalkResult Summarizer::walkStmt(const Stmt *S, bool Definite) {
  WalkResult R;
  if (!S)
    return R;
  switch (S->getKind()) {
  case Stmt::Kind::Block: {
    for (const StmtPtr &Child : cast<BlockStmt>(S)->stmts()) {
      if (R.Exit == ExitKind::Definite)
        break; // statically unreachable; the CFG check reports it
      WalkResult C = walkStmt(Child.get(), Definite && R.Exit == ExitKind::None);
      if (R.Exit == ExitKind::May)
        R.Chan = afterMayExit(R.Chan, C.Chan);
      else
        R.Chan = addChan(R.Chan, C.Chan);
      if (C.Exit == ExitKind::Definite)
        // A definite exit subsumes earlier may-exits: paths that left
        // early already accumulated their return value, and every
        // remaining path exits here.
        R.Exit = ExitKind::Definite;
      else if (C.Exit == ExitKind::May)
        R.Exit = ExitKind::May;
    }
    return R;
  }
  case Stmt::Kind::Decl: {
    const VarDecl *D = cast<DeclStmt>(S)->getDecl();
    R.Chan = visitExpr(D->getInit(), Definite);
    if (D->getType().isArray()) {
      Locals[D->getName()] = {D->getLoc(),
                              static_cast<int64_t>(D->getType().arraySize()),
                              /*MaybeWritten=*/false};
    } else if (D->getType().isInt() && !Mutated.count(D->getName())) {
      if (const Expr *Init = D->getInit())
        if (const auto *Lit = dyn_cast<IntLitExpr>(Init))
          ConstLocals[D->getName()] = Lit->getValue();
    }
    return R;
  }
  case Stmt::Kind::Assign: {
    const auto *A = cast<AssignStmt>(S);
    // The value is read before the target is written.
    R.Chan = visitExpr(A->getValue(), Definite);
    if (const auto *IE = dyn_cast<IndexExpr>(A->getTarget())) {
      R.Chan = addChan(R.Chan, visitExpr(IE->getIndex(), Definite));
      handleIndexSite(IE, /*IsWrite=*/true, Definite);
    } else {
      R.Chan = addChan(R.Chan, visitExpr(A->getTarget(), Definite));
    }
    return R;
  }
  case Stmt::Kind::If: {
    const auto *I = cast<IfStmt>(S);
    ChanState Cond = visitExpr(I->getCond(), Definite);
    WalkResult Then = walkStmt(I->getThen(), /*Definite=*/false);
    WalkResult Else = walkStmt(I->getElse(), /*Definite=*/false);
    R.Chan = addChan(Cond, mergeArms(Then.Chan, Else.Chan));
    if (Then.Exit == ExitKind::Definite && Else.Exit == ExitKind::Definite)
      R.Exit = ExitKind::Definite;
    else if (Then.Exit != ExitKind::None || Else.Exit != ExitKind::None)
      R.Exit = ExitKind::May;
    return R;
  }
  case Stmt::Kind::For: {
    const auto *L = cast<ForStmt>(S);
    ChanState Bounds = addChan(visitExpr(L->getLo(), Definite),
                               visitExpr(L->getHi(), Definite));
    ChannelPoly Trip = tripPoly(L);

    // Literal bounds give the induction variable an attained range for
    // the body walk; Env entries are scoped to the loop.
    const auto *Lo = dyn_cast<IntLitExpr>(L->getLo());
    const auto *Hi = dyn_cast<IntLitExpr>(L->getHi());
    bool HaveEnv = false;
    Interval Saved;
    bool HadSaved = false;
    std::optional<uint64_t> Trips = Trip.constantCount();
    if (Lo && Hi && L->getStep() != 0 && Trips && *Trips > 0) {
      int64_t LoV = Lo->getValue(), Step = L->getStep();
      int64_t Last = LoV + (static_cast<int64_t>(*Trips) - 1) * Step;
      auto It = Env.find(L->getIndVar());
      if (It != Env.end()) {
        Saved = It->second;
        HadSaved = true;
      }
      Env[L->getIndVar()] = Interval::of(std::min(LoV, Last),
                                         std::max(LoV, Last), true);
      HaveEnv = true;
    }

    WalkResult Body = walkStmt(L->getBody(), /*Definite=*/false);

    if (HaveEnv) {
      if (HadSaved)
        Env[L->getIndVar()] = Saved;
      else
        Env.erase(L->getIndVar());
    }

    if (Body.Exit == ExitKind::None) {
      R.Chan = addChan(Bounds, timesChan(Body.Chan, Trip));
    } else if (Body.Exit == ExitKind::Definite) {
      bool Runs = Trips && *Trips > 0;
      R.Chan = addChan(Bounds, Runs ? Body.Chan
                                    : afterMayExit(ChanState{}, Body.Chan));
      R.Exit = Runs ? ExitKind::Definite : ExitKind::May;
    } else {
      R.Chan = addChan(Bounds, afterMayExit(ChanState{}, Body.Chan));
      R.Exit = ExitKind::May;
    }
    return R;
  }
  case Stmt::Kind::While: {
    const auto *W = cast<WhileStmt>(S);
    ChanState Cond = visitExpr(W->getCond(), /*Definite=*/false);
    WalkResult Body = walkStmt(W->getBody(), /*Definite=*/false);
    R.Chan = afterMayExit(ChanState{}, addChan(Cond, Body.Chan));
    if (Body.Exit != ExitKind::None)
      R.Exit = ExitKind::May;
    return R;
  }
  case Stmt::Kind::Return: {
    const auto *Ret = cast<ReturnStmt>(S);
    R.Chan = visitExpr(Ret->getValue(), Definite);
    if (Ret->getValue()) {
      Interval V = exprInterval(Ret->getValue());
      RetAcc = SawReturnValue ? Interval::join(RetAcc, V) : V;
      SawReturnValue = true;
    }
    R.Exit = ExitKind::Definite;
    return R;
  }
  case Stmt::Kind::Send: {
    const auto *Snd = cast<SendStmt>(S);
    R.Chan = visitExpr(Snd->getValue(), Definite);
    DirState One;
    One.P = ChannelPoly::of(SymPoly::constant(1));
    One.Chain = {{Sum.FunctionName, Snd->getLoc()}};
    DirState &Dir = Snd->getChannel() == Channel::X ? R.Chan.SendX
                                                    : R.Chan.SendY;
    Dir = addDir(Dir, One);
    return R;
  }
  case Stmt::Kind::Receive: {
    const auto *Rcv = cast<ReceiveStmt>(S);
    if (const auto *IE = dyn_cast<IndexExpr>(Rcv->getTarget())) {
      R.Chan = visitExpr(IE->getIndex(), Definite);
      handleIndexSite(IE, /*IsWrite=*/true, Definite);
    } else {
      R.Chan = visitExpr(Rcv->getTarget(), Definite);
    }
    DirState One;
    One.P = ChannelPoly::of(SymPoly::constant(1));
    One.Chain = {{Sum.FunctionName, Rcv->getLoc()}};
    DirState &Dir = Rcv->getChannel() == Channel::X ? R.Chan.RecvX
                                                    : R.Chan.RecvY;
    Dir = addDir(Dir, One);
    return R;
  }
  case Stmt::Kind::ExprStmt:
    R.Chan = visitExpr(cast<ExprStmt>(S)->getExpr(), Definite);
    return R;
  }
  return R;
}

//===----------------------------------------------------------------------===//
// Recursive SCCs: conservative summaries
//===----------------------------------------------------------------------===//

/// Per-direction syntactic traffic bits for the conservative path.
struct TouchBits {
  bool SendX = false, SendY = false, RecvX = false, RecvY = false;

  bool any() const { return SendX || SendY || RecvX || RecvY; }
  void merge(const TouchBits &O) {
    SendX |= O.SendX;
    SendY |= O.SendY;
    RecvX |= O.RecvX;
    RecvY |= O.RecvY;
  }
};

void collectOwnTouches(const Stmt *S, TouchBits &Out,
                       std::set<std::string> &Callees);

void collectOwnTouches(const Expr *E, TouchBits &Out,
                       std::set<std::string> &Callees) {
  if (!E)
    return;
  switch (E->getKind()) {
  case Expr::Kind::Index:
    collectOwnTouches(cast<IndexExpr>(E)->getIndex(), Out, Callees);
    return;
  case Expr::Kind::Unary:
    collectOwnTouches(cast<UnaryExpr>(E)->getOperand(), Out, Callees);
    return;
  case Expr::Kind::Cast:
    collectOwnTouches(cast<CastExpr>(E)->getOperand(), Out, Callees);
    return;
  case Expr::Kind::Binary:
    collectOwnTouches(cast<BinaryExpr>(E)->getLHS(), Out, Callees);
    collectOwnTouches(cast<BinaryExpr>(E)->getRHS(), Out, Callees);
    return;
  case Expr::Kind::Call: {
    const auto *C = cast<CallExpr>(E);
    Callees.insert(C->getCallee());
    for (size_t I = 0; I != C->getNumArgs(); ++I)
      collectOwnTouches(C->getArg(I), Out, Callees);
    return;
  }
  default:
    return;
  }
}

void collectOwnTouches(const Stmt *S, TouchBits &Out,
                       std::set<std::string> &Callees) {
  if (!S)
    return;
  switch (S->getKind()) {
  case Stmt::Kind::Block:
    for (const StmtPtr &C : cast<BlockStmt>(S)->stmts())
      collectOwnTouches(C.get(), Out, Callees);
    return;
  case Stmt::Kind::Decl:
    collectOwnTouches(cast<DeclStmt>(S)->getDecl()->getInit(), Out, Callees);
    return;
  case Stmt::Kind::Assign:
    collectOwnTouches(cast<AssignStmt>(S)->getTarget(), Out, Callees);
    collectOwnTouches(cast<AssignStmt>(S)->getValue(), Out, Callees);
    return;
  case Stmt::Kind::If:
    collectOwnTouches(cast<IfStmt>(S)->getCond(), Out, Callees);
    collectOwnTouches(cast<IfStmt>(S)->getThen(), Out, Callees);
    collectOwnTouches(cast<IfStmt>(S)->getElse(), Out, Callees);
    return;
  case Stmt::Kind::For:
    collectOwnTouches(cast<ForStmt>(S)->getLo(), Out, Callees);
    collectOwnTouches(cast<ForStmt>(S)->getHi(), Out, Callees);
    collectOwnTouches(cast<ForStmt>(S)->getBody(), Out, Callees);
    return;
  case Stmt::Kind::While:
    collectOwnTouches(cast<WhileStmt>(S)->getCond(), Out, Callees);
    collectOwnTouches(cast<WhileStmt>(S)->getBody(), Out, Callees);
    return;
  case Stmt::Kind::Return:
    collectOwnTouches(cast<ReturnStmt>(S)->getValue(), Out, Callees);
    return;
  case Stmt::Kind::Send:
    collectOwnTouches(cast<SendStmt>(S)->getValue(), Out, Callees);
    if (cast<SendStmt>(S)->getChannel() == Channel::X)
      Out.SendX = true;
    else
      Out.SendY = true;
    return;
  case Stmt::Kind::Receive:
    collectOwnTouches(cast<ReceiveStmt>(S)->getTarget(), Out, Callees);
    if (cast<ReceiveStmt>(S)->getChannel() == Channel::X)
      Out.RecvX = true;
    else
      Out.RecvY = true;
    return;
  case Stmt::Kind::ExprStmt:
    collectOwnTouches(cast<ExprStmt>(S)->getExpr(), Out, Callees);
    return;
  }
}

TouchBits touchesOfSummary(const FunctionSummary &S) {
  TouchBits T;
  T.SendX = !S.Channels.SendX.isZero();
  T.SendY = !S.Channels.SendY.isZero();
  T.RecvX = !S.Channels.RecvX.isZero();
  T.RecvY = !S.Channels.RecvY.isZero();
  return T;
}

/// Conservative summary for a member of a recursive SCC: unknown counts
/// on every direction the SCC can reach syntactically, unknown returns,
/// pessimistic write bits, no demands, no diagnostics.
std::vector<FunctionSummary>
summarizeRecursive(const CallGraph &G, const SCCDecomposition &D,
                   uint32_t SCCId,
                   const std::vector<FunctionSummary> &AllSummaries) {
  const SCCDecomposition::SCC &C = D.SCCs[SCCId];

  // Per-member syntactic touches plus callee names, then a fixpoint over
  // the members (out-of-SCC callees are already summarized).
  std::map<uint32_t, TouchBits> Own;
  std::map<uint32_t, std::set<uint32_t>> CalleeOrdinals;
  for (uint32_t M : C.Members) {
    const CallGraph::Node &N = G.Nodes[M];
    TouchBits T;
    std::set<std::string> Names;
    collectOwnTouches(N.Function->getBody(), T, Names);
    for (uint32_t Callee : N.Callees) {
      if (D.SCCOf[Callee] == SCCId)
        CalleeOrdinals[M].insert(Callee);
      else
        T.merge(touchesOfSummary(AllSummaries[Callee]));
    }
    Own[M] = T;
  }
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (uint32_t M : C.Members)
      for (uint32_t Callee : CalleeOrdinals[M]) {
        TouchBits Before = Own[M];
        Own[M].merge(Own[Callee]);
        if (!(Before.SendX == Own[M].SendX && Before.SendY == Own[M].SendY &&
              Before.RecvX == Own[M].RecvX && Before.RecvY == Own[M].RecvY))
          Changed = true;
      }
  }

  std::vector<FunctionSummary> Out;
  for (uint32_t M : C.Members) {
    const CallGraph::Node &N = G.Nodes[M];
    FunctionSummary S;
    S.Ordinal = M;
    S.SectionName = N.Section->getName();
    S.FunctionName = N.Function->getName();
    S.NumParams = static_cast<uint32_t>(N.Function->params().size());
    S.Ret = Interval::top();
    const TouchBits &T = Own[M];
    CallChain Decl = {{S.FunctionName, N.Function->getLoc()}};
    auto Dir = [&](bool Touched) {
      return Touched ? ChannelPoly::unknown()
                     : ChannelPoly::of(SymPoly::constant(0));
    };
    S.Channels.SendX = Dir(T.SendX);
    S.Channels.SendY = Dir(T.SendY);
    S.Channels.RecvX = Dir(T.RecvX);
    S.Channels.RecvY = Dir(T.RecvY);
    if (T.SendX)
      S.Channels.SendXChain = Decl;
    if (T.SendY)
      S.Channels.SendYChain = Decl;
    if (T.RecvX)
      S.Channels.RecvXChain = Decl;
    if (T.RecvY)
      S.Channels.RecvYChain = Decl;
    S.HasChannelTraffic = T.any();
    for (uint32_t I = 0; I != S.NumParams; ++I)
      if (N.Function->params()[I].Ty.isArray()) {
        ArrayParamUse U;
        U.ParamIndex = I;
        U.MayWrite = true; // pessimistic: never claim reads-before-write
        S.ArrayUses.push_back(U);
      }
    S.WritesArrayParams = !S.ArrayUses.empty();
    S.Pure = false;
    Out.push_back(std::move(S));
  }
  return Out;
}

} // namespace

SCCOutput interproc::summarizeSCC(const CallGraph &G,
                                  const SCCDecomposition &D, uint32_t SCCId,
                                  const std::vector<FunctionSummary> &All,
                                  const AnalysisOptions &Opts) {
  SCCOutput Out;
  const SCCDecomposition::SCC &C = D.SCCs[SCCId];
  if (C.Recursive) {
    Out.Summaries = summarizeRecursive(G, D, SCCId, All);
    return Out;
  }
  Summarizer S(G, All, Opts, Out.Diags);
  for (uint32_t M : C.Members)
    Out.Summaries.push_back(S.run(M));
  sortDiags(Out.Diags);
  return Out;
}
