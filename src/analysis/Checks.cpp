//===- Checks.cpp - Static-analysis check registry ------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/Checks.h"

using namespace warpc;
using namespace warpc::analysis;

const std::vector<CheckInfo> &analysis::allChecks() {
  static const std::vector<CheckInfo> Table = {
      {check::UseBeforeInit,
       "scalar variable read on every path before any store reaches it",
       Severity::Error},
      {check::DeadStore,
       "scalar store whose value no later load can observe", Severity::Warning},
      {check::UnreachableCode,
       "statement unreachable from the function entry", Severity::Warning},
      {check::ArrayBounds,
       "array subscript provably outside the declared extent",
       Severity::Error},
      {check::ChannelMismatch,
       "adjacent cell programs disagree on the number of values crossing "
       "the systolic link (potential deadlock)",
       Severity::Warning},
      {check::ChannelPath,
       "branch arms send or receive different numbers of values",
       Severity::Warning},
      {check::InterprocArrayBounds,
       "argument passed through a call chain is provably subscripted "
       "outside the array extent in a callee",
       Severity::Error},
      {check::InterprocDivZero,
       "argument passed through a call chain provably reaches zero at a "
       "division in a callee",
       Severity::Error},
      {check::InterprocUninit,
       "uninitialized array passed to a callee that reads it before any "
       "write",
       Severity::Error},
      {check::ChannelDeadlock,
       "whole-program systolic link where the downstream cell provably "
       "blocks forever on values the upstream cell never sends",
       Severity::Error},
  };
  return Table;
}

const CheckInfo *analysis::findCheck(const std::string &Id) {
  for (const CheckInfo &C : allChecks())
    if (Id == C.Id)
      return &C;
  return nullptr;
}
