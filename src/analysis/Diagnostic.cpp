//===- Diagnostic.cpp - Structured analysis diagnostics -------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/Diagnostic.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <tuple>

using namespace warpc;
using namespace warpc::analysis;

const char *analysis::severityName(Severity S) {
  return S == Severity::Error ? "error" : "warning";
}

bool analysis::diagLess(const Diag &A, const Diag &B) {
  return std::tie(A.FunctionOrdinal, A.Loc.Line, A.Loc.Column, A.CheckId,
                  A.Message) < std::tie(B.FunctionOrdinal, B.Loc.Line,
                                        B.Loc.Column, B.CheckId, B.Message);
}

void analysis::sortDiags(std::vector<Diag> &Diags) {
  std::stable_sort(Diags.begin(), Diags.end(), diagLess);
}

DiagCounts analysis::countDiags(const std::vector<Diag> &Diags) {
  DiagCounts C;
  for (const Diag &D : Diags) {
    if (D.Sev == Severity::Error)
      ++C.Errors;
    else
      ++C.Warnings;
  }
  return C;
}

std::string analysis::renderText(const std::vector<Diag> &Diags,
                                 bool Summary) {
  std::string Out;
  for (const Diag &D : Diags) {
    Out += D.Loc.str() + ": " + severityName(D.Sev) + ": " + D.Message;
    if (!D.Function.empty())
      Out += " (in '" + D.Function + "')";
    Out += " [" + D.CheckId + "]\n";
    for (const DiagNote &N : D.Notes)
      Out += "  " + N.Loc.str() + ": note: " + N.Message + "\n";
    for (const FixItHint &F : D.FixIts) {
      bool Insert = !F.Range.End.isValid() || F.Range.End == F.Range.Begin;
      Out += "  fix-it: ";
      if (F.Replacement.empty())
        Out += "remove " + F.Range.Begin.str() + ".." + F.Range.End.str();
      else if (Insert)
        Out += "insert '" + F.Replacement + "' at " + F.Range.Begin.str();
      else
        Out += "replace " + F.Range.Begin.str() + ".." + F.Range.End.str() +
               " with '" + F.Replacement + "'";
      Out += "\n";
    }
  }
  if (Summary) {
    DiagCounts C = countDiags(Diags);
    Out += std::to_string(C.Errors) + " error(s), " +
           std::to_string(C.Warnings) + " warning(s)\n";
  }
  return Out;
}

static json::Value locJson(SourceLoc L) {
  json::Value O = json::Value::object();
  O.set("line", static_cast<uint64_t>(L.Line));
  O.set("column", static_cast<uint64_t>(L.Column));
  return O;
}

json::Value analysis::renderJson(const std::vector<Diag> &Diags) {
  json::Value Root = json::Value::object();
  Root.set("version", static_cast<uint64_t>(1));
  json::Value Arr = json::Value::array();
  for (const Diag &D : Diags) {
    json::Value O = json::Value::object();
    O.set("check", D.CheckId);
    O.set("severity", severityName(D.Sev));
    O.set("section", D.Section);
    O.set("function", D.Function);
    O.set("line", static_cast<uint64_t>(D.Loc.Line));
    O.set("column", static_cast<uint64_t>(D.Loc.Column));
    if (D.Range.End.isValid()) {
      O.set("endLine", static_cast<uint64_t>(D.Range.End.Line));
      O.set("endColumn", static_cast<uint64_t>(D.Range.End.Column));
    }
    O.set("message", D.Message);
    if (!D.Notes.empty()) {
      json::Value Notes = json::Value::array();
      for (const DiagNote &N : D.Notes) {
        json::Value NO = locJson(N.Loc);
        NO.set("message", N.Message);
        Notes.push(std::move(NO));
      }
      O.set("notes", std::move(Notes));
    }
    if (!D.FixIts.empty()) {
      json::Value Fixes = json::Value::array();
      for (const FixItHint &F : D.FixIts) {
        json::Value FO = json::Value::object();
        FO.set("begin", locJson(F.Range.Begin));
        FO.set("end", locJson(F.Range.End.isValid() ? F.Range.End
                                                    : F.Range.Begin));
        FO.set("replacement", F.Replacement);
        Fixes.push(std::move(FO));
      }
      O.set("fixits", std::move(Fixes));
    }
    Arr.push(std::move(O));
  }
  Root.set("diagnostics", std::move(Arr));
  DiagCounts C = countDiags(Diags);
  json::Value Counts = json::Value::object();
  Counts.set("errors", C.Errors);
  Counts.set("warnings", C.Warnings);
  Root.set("counts", std::move(Counts));
  return Root;
}

void analysis::promoteWarnings(std::vector<Diag> &Diags) {
  for (Diag &D : Diags)
    D.Sev = Severity::Error;
}

//===----------------------------------------------------------------------===//
// Suppression comments
//===----------------------------------------------------------------------===//

namespace {

/// The check ids allowed on one source line; "all" becomes the wildcard.
struct Allowance {
  bool All = false;
  std::set<std::string> Ids;

  bool covers(const std::string &Id) const { return All || Ids.count(Id); }
};

} // namespace

/// Parses "lint: <form>a, b)" out of a comment body, where \p Form is
/// "allow(" or "allow-fn("; returns false when the marker is absent or
/// malformed. The two forms cannot shadow each other: "allow(" never
/// matches at an "allow-fn(" site because of the '-'.
static bool parseAllowance(const std::string &Comment, const std::string &Form,
                           Allowance &A) {
  size_t Marker = Comment.find("lint:");
  if (Marker == std::string::npos)
    return false;
  size_t Open = Comment.find(Form, Marker);
  if (Open == std::string::npos)
    return false;
  size_t Close = Comment.find(')', Open);
  if (Close == std::string::npos)
    return false;
  std::string List =
      Comment.substr(Open + Form.size(), Close - Open - Form.size());
  std::string Id;
  auto Flush = [&]() {
    if (Id.empty())
      return;
    if (Id == "all")
      A.All = true;
    else
      A.Ids.insert(Id);
    Id.clear();
  };
  for (char Ch : List) {
    if (Ch == ',' || std::isspace(static_cast<unsigned char>(Ch)))
      Flush();
    else
      Id += Ch;
  }
  Flush();
  return A.All || !A.Ids.empty();
}

/// Scans \p Source for suppression comments, filling one map per form.
/// Both forms honor the next-line targeting for comment-only lines.
static void collectAllowances(const std::string &Source,
                              std::map<uint32_t, Allowance> &ByLine,
                              std::map<uint32_t, Allowance> &FnByLine) {
  uint32_t LineNo = 0;
  size_t Pos = 0;
  while (Pos <= Source.size()) {
    size_t Eol = Source.find('\n', Pos);
    std::string Line = Source.substr(
        Pos, Eol == std::string::npos ? std::string::npos : Eol - Pos);
    ++LineNo;
    size_t C1 = Line.find("//");
    size_t C2 = Line.find("--");
    size_t CommentAt = std::min(C1, C2);
    if (CommentAt != std::string::npos) {
      std::string Comment = Line.substr(CommentAt);
      size_t FirstText = Line.find_first_not_of(" \t");
      uint32_t Target = FirstText == CommentAt ? LineNo + 1 : LineNo;
      Allowance A;
      if (parseAllowance(Comment, "allow(", A)) {
        Allowance &Slot = ByLine[Target];
        Slot.All = Slot.All || A.All;
        Slot.Ids.insert(A.Ids.begin(), A.Ids.end());
      }
      Allowance F;
      if (parseAllowance(Comment, "allow-fn(", F)) {
        Allowance &Slot = FnByLine[Target];
        Slot.All = Slot.All || F.All;
        Slot.Ids.insert(F.Ids.begin(), F.Ids.end());
      }
    }
    if (Eol == std::string::npos)
      break;
    Pos = Eol + 1;
  }
}

std::vector<Diag> analysis::applySuppressions(std::vector<Diag> Diags,
                                              const std::string &Source) {
  return applySuppressions(std::move(Diags), Source, {});
}

std::vector<Diag>
analysis::applySuppressions(std::vector<Diag> Diags, const std::string &Source,
                            const std::vector<uint32_t> &FunctionDeclLines) {
  std::map<uint32_t, Allowance> ByLine, FnByLine;
  collectAllowances(Source, ByLine, FnByLine);

  std::vector<Diag> Kept;
  Kept.reserve(Diags.size());
  for (Diag &D : Diags) {
    auto It = ByLine.find(D.Loc.Line);
    if (It != ByLine.end() && It->second.covers(D.CheckId))
      continue;
    if (D.FunctionOrdinal < FunctionDeclLines.size()) {
      auto FnIt = FnByLine.find(FunctionDeclLines[D.FunctionOrdinal]);
      if (FnIt != FnByLine.end() && FnIt->second.covers(D.CheckId))
        continue;
    }
    Kept.push_back(std::move(D));
  }
  return Kept;
}
