//===- Analyzer.cpp - Per-function static-analysis checks -----------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//
//
// The per-function checks run on freshly lowered, *unoptimized* IR so that
// every source-level store and load is still visible (the optimizer would
// happily delete exactly the dead stores we want to report). Each check is
// a small client of the opt/ dataflow framework:
//
//   use-before-init   ReachingDefs: a scalar load with no same-block store
//                     before it and no reaching definition at block entry
//                     reads garbage on every path (definite, not may).
//   dead-store        a backward liveness solve over scalar *variables*
//                     (the opt/ Liveness is over registers): a store to a
//                     variable dead at that point can never be observed.
//   unreachable-code  CFG reachability from the entry block.
//   array-bounds      LoopInfo: induction registers get exact attained
//                     ranges from the literal-bound for-loop lowering;
//                     subscript intervals follow affine chains, and only
//                     provable violations are reported.
//
//===----------------------------------------------------------------------===//

#include "analysis/Analyzer.h"

#include "analysis/interproc/InterprocAnalysis.h"
#include "ir/IR.h"
#include "ir/IRBuilder.h"
#include "opt/LoopInfo.h"
#include "opt/ReachingDefs.h"
#include "support/BitSet.h"
#include "support/Casting.h"

#include <algorithm>
#include <map>
#include <set>

using namespace warpc;
using namespace warpc::analysis;
using namespace warpc::w2;

namespace {

/// Where each instruction defining a register lives.
struct DefRef {
  ir::BlockId Block;
  uint32_t Pos;
  const ir::Instr *I;
};

using DefMap = std::map<ir::Reg, std::vector<DefRef>>;

DefMap buildDefMap(const ir::IRFunction &F) {
  DefMap Defs;
  for (size_t B = 0; B != F.numBlocks(); ++B) {
    const ir::BasicBlock *BB = F.block(static_cast<ir::BlockId>(B));
    for (size_t Pos = 0; Pos != BB->Instrs.size(); ++Pos) {
      const ir::Instr &I = BB->Instrs[Pos];
      if (I.definesReg())
        Defs[I.Dst].push_back({static_cast<ir::BlockId>(B),
                               static_cast<uint32_t>(Pos), &I});
    }
  }
  return Defs;
}

/// Declaration-site facts gathered from the AST: the initializer-store
/// exemption for the dead-store check and the "declared here" notes.
struct DeclInfo {
  std::string Name;
  SourceLoc Loc;
  bool HasInit = false;
};

void collectDecls(const Stmt *S, std::vector<DeclInfo> &Out) {
  if (!S)
    return;
  switch (S->getKind()) {
  case Stmt::Kind::Block:
    for (const StmtPtr &Child : cast<BlockStmt>(S)->stmts())
      collectDecls(Child.get(), Out);
    return;
  case Stmt::Kind::Decl: {
    const VarDecl *D = cast<DeclStmt>(S)->getDecl();
    Out.push_back({D->getName(), D->getLoc(), D->getInit() != nullptr});
    return;
  }
  case Stmt::Kind::If:
    collectDecls(cast<IfStmt>(S)->getThen(), Out);
    collectDecls(cast<IfStmt>(S)->getElse(), Out);
    return;
  case Stmt::Kind::For:
    collectDecls(cast<ForStmt>(S)->getBody(), Out);
    return;
  case Stmt::Kind::While:
    collectDecls(cast<WhileStmt>(S)->getBody(), Out);
    return;
  default:
    return;
  }
}

/// Blocks reachable from the entry. Checks other than unreachable-code
/// skip dead blocks: dataflow facts there are vacuous (nothing reaches
/// them), and any finding would merely cascade off the one unreachable-code
/// report the user already gets.
std::vector<bool> computeReachable(const ir::IRFunction &F) {
  std::vector<bool> Reachable(F.numBlocks(), false);
  if (F.numBlocks() == 0)
    return Reachable;
  std::vector<ir::BlockId> Work{0};
  Reachable[0] = true;
  while (!Work.empty()) {
    ir::BlockId B = Work.back();
    Work.pop_back();
    for (ir::BlockId Succ : F.block(B)->successors())
      if (!Reachable[Succ]) {
        Reachable[Succ] = true;
        Work.push_back(Succ);
      }
  }
  return Reachable;
}

/// Context shared by the per-function checks.
struct FnContext {
  const SectionDecl &Section;
  const FunctionDecl &F;
  uint32_t Ordinal;
  const ir::IRFunction &IR;
  std::vector<bool> Reachable;
  DefMap Defs;
  std::vector<DeclInfo> Decls;
  /// Source locations of stores emitted for declaration initializers.
  std::set<std::pair<uint32_t, uint32_t>> InitStoreLocs;

  const DeclInfo *declOf(const std::string &Name, bool RequireNoInit) const {
    for (const DeclInfo &D : Decls)
      if (D.Name == Name && (!RequireNoInit || !D.HasInit))
        return &D;
    return nullptr;
  }

  Diag makeDiag(const char *CheckId, SourceLoc Loc,
                std::string Message) const {
    Diag D;
    D.CheckId = CheckId;
    const CheckInfo *Info = findCheck(CheckId);
    D.Sev = Info ? Info->DefaultSev : Severity::Warning;
    D.Section = Section.getName();
    D.Function = F.getName();
    D.FunctionOrdinal = Ordinal;
    D.Loc = Loc;
    D.Range.Begin = Loc;
    D.Message = std::move(Message);
    return D;
  }
};

//===----------------------------------------------------------------------===//
// use-before-init
//===----------------------------------------------------------------------===//

void checkUseBeforeInit(const FnContext &Ctx, std::vector<Diag> &Out) {
  const ir::IRFunction &F = Ctx.IR;
  opt::ReachingDefsInfo RD = opt::ReachingDefsInfo::compute(F);
  std::set<std::pair<uint32_t, uint32_t>> Reported;

  for (size_t B = 0; B != F.numBlocks(); ++B) {
    if (!Ctx.Reachable[B])
      continue;
    const ir::BasicBlock *BB = F.block(static_cast<ir::BlockId>(B));
    std::set<ir::VarId> StoredHere;
    for (const ir::Instr &I : BB->Instrs) {
      if (I.Op == ir::Opcode::StoreVar) {
        StoredHere.insert(I.Var);
        continue;
      }
      if (I.Op != ir::Opcode::LoadVar)
        continue;
      const ir::Variable &V = F.variable(I.Var);
      if (V.IsParam || V.Ty.isArray())
        continue;
      if (StoredHere.count(I.Var))
        continue;
      if (!RD.defsReaching(static_cast<ir::BlockId>(B), I.Var).empty())
        continue;
      if (!Reported.insert({I.Loc.Line, I.Loc.Column}).second)
        continue;
      Diag D = Ctx.makeDiag(check::UseBeforeInit, I.Loc,
                            "variable '" + V.Name +
                                "' is read before any value is assigned "
                                "to it");
      if (const DeclInfo *Decl = Ctx.declOf(V.Name, /*RequireNoInit=*/true))
        D.Notes.push_back(
            {Decl->Loc, "'" + V.Name + "' declared here without an "
                                       "initializer"});
      Out.push_back(std::move(D));
    }
  }
}

//===----------------------------------------------------------------------===//
// dead-store
//===----------------------------------------------------------------------===//

void checkDeadStores(const FnContext &Ctx, std::vector<Diag> &Out) {
  const ir::IRFunction &F = Ctx.IR;
  size_t NumVars = F.numVariables();
  size_t NumBlocks = F.numBlocks();
  if (NumVars == 0 || NumBlocks == 0)
    return;

  // Use/Def per block over scalar variables.
  std::vector<BitSet> Use(NumBlocks, BitSet(NumVars));
  std::vector<BitSet> Def(NumBlocks, BitSet(NumVars));
  for (size_t B = 0; B != NumBlocks; ++B) {
    const ir::BasicBlock *BB = F.block(static_cast<ir::BlockId>(B));
    for (const ir::Instr &I : BB->Instrs) {
      if (I.Op == ir::Opcode::LoadVar) {
        if (!Def[B].test(I.Var))
          Use[B].set(I.Var);
      } else if (I.Op == ir::Opcode::StoreVar) {
        Def[B].set(I.Var);
      }
    }
  }

  std::vector<BitSet> LiveIn(NumBlocks, BitSet(NumVars));
  std::vector<BitSet> LiveOut(NumBlocks, BitSet(NumVars));
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (size_t B = NumBlocks; B-- > 0;) {
      const ir::BasicBlock *BB = F.block(static_cast<ir::BlockId>(B));
      BitSet NewOut(NumVars);
      for (ir::BlockId Succ : BB->successors())
        NewOut.unionWith(LiveIn[Succ]);
      BitSet NewIn = NewOut;
      NewIn.subtract(Def[B]);
      NewIn.unionWith(Use[B]);
      if (!(NewOut == LiveOut[B]) || !(NewIn == LiveIn[B])) {
        LiveOut[B] = std::move(NewOut);
        LiveIn[B] = std::move(NewIn);
        Changed = true;
      }
    }
  }

  // A register defined by Recv feeds a store the programmer cannot avoid:
  // consuming (and discarding) a stream element is part of the channel
  // protocol, not a dead computation.
  auto isRecvBacked = [&](const ir::Instr &Store) {
    if (Store.Operands.empty())
      return false;
    auto It = Ctx.Defs.find(Store.Operands[0]);
    if (It == Ctx.Defs.end())
      return false;
    for (const DefRef &D : It->second)
      if (D.I->Op == ir::Opcode::Recv)
        return true;
    return false;
  };

  for (size_t B = 0; B != NumBlocks; ++B) {
    if (!Ctx.Reachable[B])
      continue;
    const ir::BasicBlock *BB = F.block(static_cast<ir::BlockId>(B));
    BitSet Live = LiveOut[B];
    for (size_t Pos = BB->Instrs.size(); Pos-- > 0;) {
      const ir::Instr &I = BB->Instrs[Pos];
      if (I.Op == ir::Opcode::LoadVar) {
        Live.set(I.Var);
        continue;
      }
      if (I.Op != ir::Opcode::StoreVar)
        continue;
      const ir::Variable &V = F.variable(I.Var);
      bool Dead = !Live.test(I.Var);
      Live.reset(I.Var);
      if (!Dead || V.Ty.isArray())
        continue;
      if (Ctx.InitStoreLocs.count({I.Loc.Line, I.Loc.Column}))
        continue;
      if (isRecvBacked(I))
        continue;
      Diag D = Ctx.makeDiag(check::DeadStore, I.Loc,
                            "value assigned to '" + V.Name +
                                "' is never used");
      FixItHint Fix;
      Fix.Range.Begin = SourceLoc(I.Loc.Line, 1);
      Fix.Range.End = SourceLoc(I.Loc.Line + 1, 1);
      Fix.Replacement.clear();
      D.FixIts.push_back(std::move(Fix));
      Out.push_back(std::move(D));
    }
  }
}

//===----------------------------------------------------------------------===//
// unreachable-code
//===----------------------------------------------------------------------===//

void checkUnreachable(const FnContext &Ctx, std::vector<Diag> &Out) {
  const ir::IRFunction &F = Ctx.IR;
  size_t NumBlocks = F.numBlocks();
  if (NumBlocks == 0)
    return;
  const std::vector<bool> &Reachable = Ctx.Reachable;
  std::vector<std::vector<ir::BlockId>> Preds = F.computePredecessors();
  for (size_t B = 0; B != NumBlocks; ++B) {
    if (Reachable[B])
      continue;
    // Report only region entries: unreachable blocks whose predecessors
    // are all reachable (or absent), so one dead tail yields one report.
    bool Entry = true;
    for (ir::BlockId P : Preds[B])
      if (!Reachable[P])
        Entry = false;
    if (!Entry)
      continue;
    // Synthetic blocks (a lone compiler-emitted terminator, e.g. the merge
    // after an if whose both arms return) are not source-level dead code.
    const ir::BasicBlock *BB = F.block(static_cast<ir::BlockId>(B));
    const ir::Instr *First = nullptr;
    for (const ir::Instr &I : BB->Instrs)
      if (!ir::isTerminator(I.Op)) {
        First = &I;
        break;
      }
    if (!First || !First->Loc.isValid())
      continue;
    // The fall-off-the-end return the lowering synthesizes at the closing
    // brace (e.g. the merge after an if whose arms both return) is not
    // user code either; it is stamped with the function's end location.
    if (First->Loc.Line == Ctx.F.getEndLoc().Line &&
        First->Loc.Column == Ctx.F.getEndLoc().Column)
      continue;
    Out.push_back(Ctx.makeDiag(
        check::UnreachableCode, First->Loc,
        "code is unreachable; no control path from the function entry "
        "reaches it"));
  }
}

//===----------------------------------------------------------------------===//
// array-bounds
//===----------------------------------------------------------------------===//

/// An integer interval. EndpointsAttained means both Lo and Hi are values
/// the expression actually takes at run time (not just interval slack), so
/// an out-of-range endpoint is a provable violation.
struct IRange {
  bool Known = false;
  int64_t Lo = 0;
  int64_t Hi = 0;
  bool EndpointsAttained = false;

  bool isSingleton() const { return Known && Lo == Hi; }
  static IRange unknown() { return {}; }
  static IRange of(int64_t L, int64_t H, bool Attained) {
    return {true, L, H, Attained};
  }
};

class BoundsChecker {
public:
  BoundsChecker(const FnContext &Ctx) : Ctx(Ctx), F(Ctx.IR) {
    computeInductionRanges();
  }

  void run(std::vector<Diag> &Out) {
    std::set<std::tuple<uint32_t, uint32_t, ir::VarId>> Reported;
    for (size_t B = 0; B != F.numBlocks(); ++B) {
      if (!Ctx.Reachable[B])
        continue;
      for (const ir::Instr &I : F.block(static_cast<ir::BlockId>(B))->Instrs) {
        bool IsLoad = I.Op == ir::Opcode::LoadElem;
        bool IsStore = I.Op == ir::Opcode::StoreElem;
        if (!IsLoad && !IsStore)
          continue;
        const ir::Variable &V = F.variable(I.Var);
        if (!V.Ty.isArray() || I.Operands.empty())
          continue;
        auto Extent = static_cast<int64_t>(V.Ty.arraySize());
        IRange R = rangeOf(I.Operands[0], 0);
        if (!R.Known)
          continue;
        std::string Problem;
        if (R.Hi < 0 || R.Lo >= Extent)
          Problem = "subscript of '" + V.Name + "' is always out of bounds "
                    "(range [" + std::to_string(R.Lo) + ".." +
                    std::to_string(R.Hi) + "], extent " +
                    std::to_string(Extent) + ")";
        else if (R.EndpointsAttained && R.Hi >= Extent)
          Problem = "subscript of '" + V.Name + "' reaches " +
                    std::to_string(R.Hi) + ", past the last element (extent " +
                    std::to_string(Extent) + ")";
        else if (R.EndpointsAttained && R.Lo < 0)
          Problem = "subscript of '" + V.Name + "' reaches " +
                    std::to_string(R.Lo) + ", below the first element";
        if (Problem.empty())
          continue;
        if (!Reported.insert({I.Loc.Line, I.Loc.Column, I.Var}).second)
          continue;
        Out.push_back(Ctx.makeDiag(check::ArrayBounds, I.Loc,
                                   std::move(Problem)));
      }
    }
  }

private:
  /// Matches the IRBuilder's for-loop shape on each natural loop: the
  /// header compares the induction register against the bound and the
  /// induction register has exactly the {Copy lo, Add self+step} def pair.
  void computeInductionRanges() {
    opt::LoopInfo LI = opt::LoopInfo::compute(F);
    for (const opt::Loop &L : LI.loops()) {
      const ir::BasicBlock *H = F.block(L.Header);
      const ir::Instr *Term = H->terminator();
      if (!Term || Term->Op != ir::Opcode::CondBr || Term->Operands.empty())
        continue;
      const ir::Instr *Cmp = singleDef(Term->Operands[0]);
      if (!Cmp || (Cmp->Op != ir::Opcode::CmpLE &&
                   Cmp->Op != ir::Opcode::CmpGE) ||
          Cmp->Operands.size() != 2)
        continue;
      ir::Reg Ind = Cmp->Operands[0];
      auto It = Ctx.Defs.find(Ind);
      if (It == Ctx.Defs.end() || It->second.size() != 2)
        continue;
      const ir::Instr *Init = nullptr, *Advance = nullptr;
      for (const DefRef &D : It->second) {
        if (D.I->Op == ir::Opcode::Copy)
          Init = D.I;
        else if (D.I->Op == ir::Opcode::Add && D.I->Operands.size() == 2 &&
                 D.I->Operands[0] == Ind && L.contains(D.Block))
          Advance = D.I;
      }
      if (!Init || !Advance || Init->Operands.size() != 1)
        continue;
      int64_t Lo, Hi, Step;
      if (!constOf(Init->Operands[0], Lo) || !constOf(Cmp->Operands[1], Hi) ||
          !constOf(Advance->Operands[1], Step) || Step == 0)
        continue;
      int64_t MinA, MaxA;
      if (Step > 0) {
        if (Hi < Lo)
          continue; // zero-trip: the body never runs
        int64_t K = (Hi - Lo) / Step;
        MinA = Lo;
        MaxA = Lo + K * Step;
      } else {
        if (Lo < Hi)
          continue;
        int64_t K = (Lo - Hi) / (-Step);
        MinA = Lo + K * Step;
        MaxA = Lo;
      }
      InductionRange[Ind] = IRange::of(MinA, MaxA, /*Attained=*/true);
    }
  }

  const ir::Instr *singleDef(ir::Reg R) const {
    auto It = Ctx.Defs.find(R);
    if (It == Ctx.Defs.end() || It->second.size() != 1)
      return nullptr;
    return It->second[0].I;
  }

  bool constOf(ir::Reg R, int64_t &V) const {
    const ir::Instr *D = singleDef(R);
    if (D && D->Op == ir::Opcode::ConstInt) {
      V = D->IntImm;
      return true;
    }
    return false;
  }

  IRange rangeOf(ir::Reg R, unsigned Depth) {
    if (Depth > 16)
      return IRange::unknown();
    auto Ind = InductionRange.find(R);
    if (Ind != InductionRange.end())
      return Ind->second;
    const ir::Instr *D = singleDef(R);
    if (!D)
      return IRange::unknown();
    switch (D->Op) {
    case ir::Opcode::ConstInt:
      return IRange::of(D->IntImm, D->IntImm, true);
    case ir::Opcode::Copy:
      return rangeOf(D->Operands[0], Depth + 1);
    case ir::Opcode::Add:
    case ir::Opcode::Sub: {
      IRange A = rangeOf(D->Operands[0], Depth + 1);
      IRange B = rangeOf(D->Operands[1], Depth + 1);
      if (!A.Known || !B.Known)
        return IRange::unknown();
      bool Attained = (A.EndpointsAttained && B.isSingleton()) ||
                      (A.isSingleton() && B.EndpointsAttained);
      if (D->Op == ir::Opcode::Add)
        return IRange::of(A.Lo + B.Lo, A.Hi + B.Hi, Attained);
      return IRange::of(A.Lo - B.Hi, A.Hi - B.Lo, Attained);
    }
    case ir::Opcode::Mul: {
      IRange A = rangeOf(D->Operands[0], Depth + 1);
      IRange B = rangeOf(D->Operands[1], Depth + 1);
      if (!A.Known || !B.Known)
        return IRange::unknown();
      if (B.isSingleton())
        return scale(A, B.Lo);
      if (A.isSingleton())
        return scale(B, A.Lo);
      return IRange::unknown();
    }
    default:
      return IRange::unknown();
    }
  }

  static IRange scale(IRange A, int64_t C) {
    int64_t L = A.Lo * C, H = A.Hi * C;
    if (L > H)
      std::swap(L, H);
    return IRange::of(L, H, A.EndpointsAttained);
  }

  const FnContext &Ctx;
  const ir::IRFunction &F;
  std::map<ir::Reg, IRange> InductionRange;
};

} // namespace

//===----------------------------------------------------------------------===//
// Entry points
//===----------------------------------------------------------------------===//

std::vector<Diag> analysis::analyzeFunction(const SectionDecl &Section,
                                            const FunctionDecl &F,
                                            uint32_t Ordinal,
                                            const AnalysisOptions &Opts) {
  std::unique_ptr<ir::IRFunction> IRF = ir::lowerFunction(F);
  FnContext Ctx{Section,        F,  Ordinal, *IRF, computeReachable(*IRF),
                buildDefMap(*IRF), {},      {}};
  collectDecls(F.getBody(), Ctx.Decls);
  for (const DeclInfo &D : Ctx.Decls)
    if (D.HasInit)
      Ctx.InitStoreLocs.insert({D.Loc.Line, D.Loc.Column});

  std::vector<Diag> Out;
  if (Opts.enabled(check::UseBeforeInit))
    checkUseBeforeInit(Ctx, Out);
  if (Opts.enabled(check::DeadStore))
    checkDeadStores(Ctx, Out);
  if (Opts.enabled(check::UnreachableCode))
    checkUnreachable(Ctx, Out);
  if (Opts.enabled(check::ArrayBounds))
    BoundsChecker(Ctx).run(Out);
  sortDiags(Out);
  return Out;
}

ModuleAnalysis analysis::analyzeModule(const ModuleDecl &M,
                                       const std::string &Source,
                                       const AnalysisOptions &Opts) {
  ModuleAnalysis Result;
  uint32_t Ordinal = 0;
  for (size_t S = 0; S != M.numSections(); ++S) {
    const SectionDecl *Section = M.getSection(S);
    for (size_t FI = 0; FI != Section->numFunctions(); ++FI) {
      std::vector<Diag> Fn = analyzeFunction(*Section,
                                             *Section->getFunction(FI),
                                             Ordinal++, Opts);
      Result.Diags.insert(Result.Diags.end(),
                          std::make_move_iterator(Fn.begin()),
                          std::make_move_iterator(Fn.end()));
      ++Result.FunctionsAnalyzed;
    }
  }
  std::vector<Diag> Chan = checkChannelProtocol(M, Opts);
  Result.Diags.insert(Result.Diags.end(),
                      std::make_move_iterator(Chan.begin()),
                      std::make_move_iterator(Chan.end()));
  interproc::InterprocResult IP = interproc::runInterproc(M, Opts);
  Result.Diags.insert(Result.Diags.end(),
                      std::make_move_iterator(IP.Diags.begin()),
                      std::make_move_iterator(IP.Diags.end()));
  interproc::supersedeChannelMismatch(Result.Diags);
  Result.Diags = finalizeModuleDiags(std::move(Result.Diags), Source, Opts,
                                     &M);
  return Result;
}

std::vector<Diag> analysis::finalizeModuleDiags(std::vector<Diag> Diags,
                                                const std::string &Source,
                                                const AnalysisOptions &Opts,
                                                const w2::ModuleDecl *M) {
  if (Opts.WarningsAsErrors)
    promoteWarnings(Diags);
  if (Opts.HonorSuppressions && !Source.empty()) {
    std::vector<uint32_t> DeclLines;
    if (M)
      for (size_t S = 0; S != M->numSections(); ++S) {
        const SectionDecl *Section = M->getSection(S);
        for (size_t FI = 0; FI != Section->numFunctions(); ++FI)
          DeclLines.push_back(Section->getFunction(FI)->getLoc().Line);
      }
    Diags = applySuppressions(std::move(Diags), Source, DeclLines);
  }
  sortDiags(Diags);
  return Diags;
}
