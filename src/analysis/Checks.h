//===- Checks.h - Static-analysis check registry ----------------*- C++ -*-===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The catalog of analysis checks and the option block controlling a run.
/// Every diagnostic the analyzer emits carries one of these ids, and the
/// CLIs resolve --disable/--list-checks against this table.
///
//===----------------------------------------------------------------------===//

#ifndef WARPC_ANALYSIS_CHECKS_H
#define WARPC_ANALYSIS_CHECKS_H

#include "analysis/Diagnostic.h"

#include <set>
#include <string>
#include <vector>

namespace warpc {
namespace analysis {

/// Stable check identifiers (the strings that appear in diagnostics,
/// suppression comments and --disable lists).
namespace check {
inline constexpr const char *UseBeforeInit = "use-before-init";
inline constexpr const char *DeadStore = "dead-store";
inline constexpr const char *UnreachableCode = "unreachable-code";
inline constexpr const char *ArrayBounds = "array-bounds";
inline constexpr const char *ChannelMismatch = "channel-mismatch";
inline constexpr const char *ChannelPath = "channel-path";
inline constexpr const char *InterprocArrayBounds = "interproc-array-bounds";
inline constexpr const char *InterprocDivZero = "interproc-div-zero";
inline constexpr const char *InterprocUninit = "interproc-uninit";
inline constexpr const char *ChannelDeadlock = "channel-deadlock";
} // namespace check

/// One registry entry.
struct CheckInfo {
  const char *Id;
  const char *Summary;
  Severity DefaultSev;
};

/// All registered checks, in a fixed order.
const std::vector<CheckInfo> &allChecks();

/// Looks up a check by id; null when unknown.
const CheckInfo *findCheck(const std::string &Id);

/// Options for one analysis run.
struct AnalysisOptions {
  /// Check ids excluded from the run.
  std::set<std::string> Disabled;
  /// Upgrade every warning to an error (-Werror).
  bool WarningsAsErrors = false;
  /// Honor "lint: allow(...)" suppression comments (needs source text).
  bool HonorSuppressions = true;

  bool enabled(const char *Id) const { return !Disabled.count(Id); }
};

} // namespace analysis
} // namespace warpc

#endif // WARPC_ANALYSIS_CHECKS_H
