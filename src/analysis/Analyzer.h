//===- Analyzer.h - Static-analysis driver ----------------------*- C++ -*-===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The analysis subsystem's entry points. Per-function checks lower the
/// checked AST to (unoptimized) IR and run the dataflow-backed checks —
/// use-before-init on ReachingDefs, dead stores on a scalar-variable
/// liveness solve, unreachable code on CFG reachability, and constant
/// array-bounds violations on LoopInfo-derived induction ranges. The
/// channel-protocol checker is a module-level pass: it computes symbolic
/// per-function Send/Recv counts from the structured AST (exact for W2's
/// literal-bound for-loops) and compares adjacent cell programs along the
/// systolic array.
///
/// analyzeFunction touches only one function body plus sibling signatures,
/// which is what lets the parallel runner schedule it per function exactly
/// like compilation phases 2+3.
///
//===----------------------------------------------------------------------===//

#ifndef WARPC_ANALYSIS_ANALYZER_H
#define WARPC_ANALYSIS_ANALYZER_H

#include "analysis/Checks.h"
#include "analysis/Diagnostic.h"
#include "w2/AST.h"

#include <cstdint>
#include <string>
#include <vector>

namespace warpc {
namespace analysis {

/// A possibly-unknown value count on one channel direction.
struct SymCount {
  bool Known = true;
  uint64_t N = 0;

  static SymCount unknown() { return {false, 0}; }
  static SymCount of(uint64_t V) { return {true, V}; }
  bool isZero() const { return Known && N == 0; }

  SymCount operator+(SymCount O) const {
    if (!Known || !O.Known)
      return unknown();
    return of(N + O.N);
  }
  SymCount times(SymCount Trip) const {
    if (isZero())
      return of(0);
    if (Trip.isZero())
      return of(0);
    if (!Known || !Trip.Known)
      return unknown();
    return of(N * Trip.N);
  }
  friend bool operator==(SymCount A, SymCount B) {
    return A.Known == B.Known && (!A.Known || A.N == B.N);
  }
  friend bool operator!=(SymCount A, SymCount B) { return !(A == B); }
};

/// Send/Recv counts of one function execution, per channel direction.
struct ChannelCounts {
  SymCount SendX, SendY, RecvX, RecvY;

  bool anyTraffic() const {
    return !SendX.isZero() || !SendY.isZero() || !RecvX.isZero() ||
           !RecvY.isZero();
  }
};

/// Runs the per-function checks on one semantically checked function.
/// \p Ordinal is the function's flat index in module declaration order
/// (the deterministic sort key).
std::vector<Diag> analyzeFunction(const w2::SectionDecl &Section,
                                  const w2::FunctionDecl &F, uint32_t Ordinal,
                                  const AnalysisOptions &Opts);

/// Computes the symbolic channel counts of \p F (call expansion within
/// \p Section, literal trip counts, Unknown for data-dependent paths).
/// Exposed for tests; checkChannelProtocol is the consuming pass.
ChannelCounts channelCountsOf(const w2::SectionDecl &Section,
                              const w2::FunctionDecl &F);

/// The module-level channel-protocol pass: chains every channel-using,
/// uncalled function in declaration order — the cell programs of the
/// linear systolic array, each cell's Y output feeding the next cell's X
/// input — and flags known-vs-known count mismatches on each link.
/// X-direction sends with no downstream receiver drain to the host
/// interface and are not flagged. Also emits the channel-path warnings
/// for if-arms with diverging counts.
std::vector<Diag> checkChannelProtocol(const w2::ModuleDecl &M,
                                       const AnalysisOptions &Opts);

/// Result of analyzing a whole module.
struct ModuleAnalysis {
  /// Canonically sorted, suppression-filtered diagnostics.
  std::vector<Diag> Diags;
  uint32_t FunctionsAnalyzed = 0;
};

/// Sequential whole-module analysis: per-function checks in declaration
/// order, then the channel-protocol pass, then the interprocedural
/// bottom-up phase (summary checks plus the whole-program deadlock
/// detector, which supersedes channel-mismatch warnings on links it
/// proves deadlocked), then -Werror promotion, suppression filtering
/// against \p Source, and the canonical sort. The parallel runner
/// produces byte-identical output to this.
ModuleAnalysis analyzeModule(const w2::ModuleDecl &M,
                             const std::string &Source,
                             const AnalysisOptions &Opts);

/// The shared tail of module analysis: -Werror promotion, suppression
/// filtering against \p Source, and the canonical sort. Both the
/// sequential analyzeModule and the parallel runner funnel through this,
/// which is what makes their outputs byte-identical by construction.
/// When \p M is given, function-scope "lint: allow-fn(...)" comments on
/// declaration lines are honored in addition to the line-level form.
std::vector<Diag> finalizeModuleDiags(std::vector<Diag> Diags,
                                      const std::string &Source,
                                      const AnalysisOptions &Opts,
                                      const w2::ModuleDecl *M = nullptr);

} // namespace analysis
} // namespace warpc

#endif // WARPC_ANALYSIS_ANALYZER_H
