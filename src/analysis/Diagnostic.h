//===- Diagnostic.h - Structured analysis diagnostics -----------*- C++ -*-===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The structured diagnostic model of the static-analysis subsystem: a
/// source-ranged Diag with severity, check id, attached notes and fix-it
/// hints, plus the two renderers (text and JSON) and the suppression
/// filter. Unlike the front end's free-text DiagnosticEngine, every field
/// here is machine-readable, and the ordering is a deterministic function
/// of the diagnostic contents alone — per-function parallel analysis can
/// merge worker results in any completion order and still serialize
/// byte-identically.
///
//===----------------------------------------------------------------------===//

#ifndef WARPC_ANALYSIS_DIAGNOSTIC_H
#define WARPC_ANALYSIS_DIAGNOSTIC_H

#include "support/Json.h"
#include "support/SourceLoc.h"

#include <cstdint>
#include <string>
#include <vector>

namespace warpc {
namespace analysis {

/// Diagnostic severity. Notes never appear top-level; they ride along as
/// Diag::Notes entries.
enum class Severity : uint8_t { Warning, Error };

/// Returns "warning" or "error".
const char *severityName(Severity S);

/// A half-open source extent [Begin, End). End.isValid() may be false
/// when only a point location is known.
struct SourceRange {
  SourceLoc Begin;
  SourceLoc End;
};

/// Secondary location attached to a diagnostic ("declared here",
/// "sends happen in this loop").
struct DiagNote {
  SourceLoc Loc;
  std::string Message;
};

/// A suggested edit: replace \p Range with \p Replacement. An empty range
/// (End == Begin) means "insert before Begin"; an empty replacement means
/// "remove the range".
struct FixItHint {
  SourceRange Range;
  std::string Replacement;
};

/// One analysis finding. FunctionOrdinal is the function's flat index in
/// module declaration order; together with the source location and check
/// id it makes the sort key total, so the merged diagnostic stream is
/// independent of which worker analyzed which function first.
struct Diag {
  std::string CheckId;
  Severity Sev = Severity::Warning;
  std::string Section;
  std::string Function;
  uint32_t FunctionOrdinal = 0;
  SourceLoc Loc;
  SourceRange Range; ///< Optional; Range.Begin usually equals Loc.
  std::string Message;
  std::vector<DiagNote> Notes;
  std::vector<FixItHint> FixIts;
};

/// Strict-weak ordering on (FunctionOrdinal, Loc, CheckId, Message):
/// deterministic regardless of production order.
bool diagLess(const Diag &A, const Diag &B);

/// Stable-sorts \p Diags into the canonical order.
void sortDiags(std::vector<Diag> &Diags);

/// Counts per severity.
struct DiagCounts {
  uint64_t Errors = 0;
  uint64_t Warnings = 0;
};
DiagCounts countDiags(const std::vector<Diag> &Diags);

/// Renders the diagnostics as human-readable text, one primary line per
/// diagnostic ("12:5: warning: ... [dead-store]") with indented note and
/// fix-it lines, followed by a summary line when \p Summary is true.
std::string renderText(const std::vector<Diag> &Diags, bool Summary = true);

/// Renders {"version":1, "diagnostics":[...], "counts":{...}}. Given
/// canonically sorted input the output is byte-deterministic (json::Value
/// objects keep insertion order).
json::Value renderJson(const std::vector<Diag> &Diags);

/// Upgrades every warning to an error (the --werror treatment).
void promoteWarnings(std::vector<Diag> &Diags);

/// Suppression comments. A W2 comment ("//" or "--") containing
///   lint: allow(check-id[, check-id...])
/// suppresses matching diagnostics on its own line — or, when the comment
/// is the only thing on its line, on the next line. "allow(all)" matches
/// every check. Returns the diagnostics that survive.
std::vector<Diag> applySuppressions(std::vector<Diag> Diags,
                                    const std::string &Source);

/// Like the two-argument form, but additionally honors the function-scope
/// variant
///   lint: allow-fn(check-id[, check-id...])
/// on a function's declaration line (or, comment-only-line form, the line
/// above it), which suppresses matching diagnostics anywhere in that
/// function. \p FunctionDeclLines maps function ordinal -> declaration
/// line. Precedence: the line-level allow() is consulted first; allow-fn
/// only widens the suppression, it can never re-enable a check.
std::vector<Diag>
applySuppressions(std::vector<Diag> Diags, const std::string &Source,
                  const std::vector<uint32_t> &FunctionDeclLines);

} // namespace analysis
} // namespace warpc

#endif // WARPC_ANALYSIS_DIAGNOSTIC_H
