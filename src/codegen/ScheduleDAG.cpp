//===- ScheduleDAG.cpp - Basic-block dependence DAG ------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "codegen/ScheduleDAG.h"

#include <algorithm>
#include <map>

using namespace warpc;
using namespace warpc::codegen;
using namespace warpc::ir;

ScheduleDAG ScheduleDAG::build(const BasicBlock &BB, const MachineModel &MM) {
  ScheduleDAG DAG;
  size_t N = BB.Instrs.size();
  if (N > 0 && isTerminator(BB.Instrs.back().Op))
    --N;
  DAG.NumNodes = static_cast<uint32_t>(N);

  auto Latency = [&](uint32_t From) {
    return MM.opInfo(BB.Instrs[From]).Latency;
  };
  auto AddEdge = [&](uint32_t From, uint32_t To) {
    DAG.Edges.push_back(DAGEdge{From, To, Latency(From)});
  };

  // Register def-use and anti/output dependences.
  std::map<Reg, uint32_t> LastDef;
  std::map<Reg, std::vector<uint32_t>> UsesSinceDef;
  for (uint32_t Pos = 0; Pos != N; ++Pos) {
    const Instr &I = BB.Instrs[Pos];
    ++DAG.BuildWork;
    for (Reg R : I.Operands) {
      auto Def = LastDef.find(R);
      if (Def != LastDef.end())
        AddEdge(Def->second, Pos);
      UsesSinceDef[R].push_back(Pos);
      ++DAG.BuildWork;
    }
    if (I.definesReg()) {
      // Output dependence with the previous definition.
      auto Def = LastDef.find(I.Dst);
      if (Def != LastDef.end())
        DAG.Edges.push_back(DAGEdge{Def->second, Pos, 1});
      // Anti dependences with intervening uses.
      auto Uses = UsesSinceDef.find(I.Dst);
      if (Uses != UsesSinceDef.end()) {
        for (uint32_t UsePos : Uses->second)
          if (UsePos != Pos)
            DAG.Edges.push_back(DAGEdge{UsePos, Pos, 1});
        Uses->second.clear();
      }
      LastDef[I.Dst] = Pos;
    }
  }

  // Memory ordering: conservative per-variable serialization of accesses
  // where at least one is a write. (Exact subscript disambiguation only
  // matters across iterations and lives in opt/Dependence.)
  std::map<VarId, std::vector<uint32_t>> MemOps;
  for (uint32_t Pos = 0; Pos != N; ++Pos) {
    const Instr &I = BB.Instrs[Pos];
    if (I.readsMemory() || I.writesMemory())
      MemOps[I.Var].push_back(Pos);
  }
  for (auto &[Var, Ops] : MemOps) {
    (void)Var;
    for (size_t A = 0; A != Ops.size(); ++A) {
      for (size_t B = A + 1; B != Ops.size(); ++B) {
        ++DAG.BuildWork;
        const Instr &IA = BB.Instrs[Ops[A]];
        const Instr &IB = BB.Instrs[Ops[B]];
        if (!IA.writesMemory() && !IB.writesMemory())
          continue;
        // Write->read uses the writer's latency; read->write is an anti
        // dependence needing only issue order.
        if (IA.writesMemory())
          AddEdge(Ops[A], Ops[B]);
        else
          DAG.Edges.push_back(DAGEdge{Ops[A], Ops[B], 1});
      }
    }
  }

  // Channel FIFO ordering per channel.
  for (int ChanIdx = 0; ChanIdx != 2; ++ChanIdx) {
    w2::Channel C = ChanIdx == 0 ? w2::Channel::X : w2::Channel::Y;
    uint32_t Prev = UINT32_MAX;
    for (uint32_t Pos = 0; Pos != N; ++Pos) {
      const Instr &I = BB.Instrs[Pos];
      if ((I.Op == Opcode::Send || I.Op == Opcode::Recv) && I.Chan == C) {
        if (Prev != UINT32_MAX)
          AddEdge(Prev, Pos);
        Prev = Pos;
      }
    }
  }

  // Calls are barriers.
  for (uint32_t Pos = 0; Pos != N; ++Pos) {
    if (BB.Instrs[Pos].Op != Opcode::Call)
      continue;
    for (uint32_t Other = 0; Other != N; ++Other) {
      ++DAG.BuildWork;
      if (Other < Pos)
        DAG.Edges.push_back(DAGEdge{Other, Pos, 1});
      else if (Other > Pos)
        AddEdge(Pos, Other);
    }
  }

  // Heights by reverse topological order (nodes are index-ordered and all
  // edges point forward, so a reverse index sweep suffices).
  DAG.Height.assign(DAG.NumNodes, 0);
  std::vector<std::vector<const DAGEdge *>> OutEdges(DAG.NumNodes);
  for (const DAGEdge &E : DAG.Edges)
    OutEdges[E.From].push_back(&E);
  for (uint32_t Node = DAG.NumNodes; Node-- > 0;) {
    uint32_t H = MM.opInfo(BB.Instrs[Node]).Latency;
    for (const DAGEdge *E : OutEdges[Node])
      H = std::max(H, E->Latency + DAG.Height[E->To]);
    DAG.Height[Node] = H;
    ++DAG.BuildWork;
  }
  return DAG;
}
