//===- ListScheduler.h - Cycle-driven list scheduling -----------*- C++ -*-===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Critical-path list scheduling of one basic block onto the Warp cell's
/// wide instruction word. Acyclic regions (everything the software
/// pipeliner does not handle) go through this scheduler in phase 3.
///
//===----------------------------------------------------------------------===//

#ifndef WARPC_CODEGEN_LISTSCHEDULER_H
#define WARPC_CODEGEN_LISTSCHEDULER_H

#include "codegen/MachineModel.h"
#include "ir/IR.h"

#include <cstdint>
#include <vector>

namespace warpc {
namespace codegen {

/// One instruction placed in the schedule.
struct ScheduledOp {
  uint32_t InstrIdx = 0; ///< Index into the block's instruction list.
  uint32_t Cycle = 0;
  FUKind Unit = FUKind::IAlu;
};

/// The schedule of one basic block.
struct BlockSchedule {
  std::vector<ScheduledOp> Ops;
  /// Total cycles including latency drain and the terminator.
  uint32_t Length = 0;
  /// Issue-slot probes performed; a phase-3 work metric.
  uint64_t Attempts = 0;
};

/// Schedules \p BB. The terminator (if any) is placed after every other
/// operation has issued.
BlockSchedule listSchedule(const ir::BasicBlock &BB, const MachineModel &MM);

/// Returns an empty string when \p S respects all dependences and resource
/// limits of \p BB, else a description of the first violation. Test hook.
std::string validateBlockSchedule(const ir::BasicBlock &BB,
                                  const MachineModel &MM,
                                  const BlockSchedule &S);

} // namespace codegen
} // namespace warpc

#endif // WARPC_CODEGEN_LISTSCHEDULER_H
