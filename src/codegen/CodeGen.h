//===- CodeGen.h - Phase 3 orchestration ------------------------*- C++ -*-===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compiler phase 3 for one function: software pipelining of innermost
/// simple loops, list scheduling of everything else, and register
/// allocation. Produces a MachineFunction consumed by the assembler
/// (phase 4) and the work metrics consumed by the cost model.
///
//===----------------------------------------------------------------------===//

#ifndef WARPC_CODEGEN_CODEGEN_H
#define WARPC_CODEGEN_CODEGEN_H

#include "codegen/ListScheduler.h"
#include "codegen/MachineModel.h"
#include "codegen/ModuloScheduler.h"
#include "codegen/RegAlloc.h"
#include "ir/IR.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace warpc {
namespace codegen {

/// Work counters accumulated while generating code for one function.
struct CodeGenMetrics {
  uint64_t ListSchedAttempts = 0;
  uint64_t ModuloSchedAttempts = 0;
  uint64_t RecMIIWork = 0;
  uint64_t RegAllocWork = 0;
  uint32_t LoopsConsidered = 0;
  uint32_t LoopsPipelined = 0;

  CodeGenMetrics &operator+=(const CodeGenMetrics &O) {
    ListSchedAttempts += O.ListSchedAttempts;
    ModuloSchedAttempts += O.ModuloSchedAttempts;
    RecMIIWork += O.RecMIIWork;
    RegAllocWork += O.RegAllocWork;
    LoopsConsidered += O.LoopsConsidered;
    LoopsPipelined += O.LoopsPipelined;
    return *this;
  }
};

/// Scheduled, register-allocated code for one function.
struct MachineFunction {
  std::string Name;
  /// Per-block list schedules (indexed by BlockId). Blocks that were
  /// software-pipelined still carry a (unused) fallback entry so the
  /// structure is uniform.
  std::vector<BlockSchedule> Blocks;
  /// Pipelined loops keyed by their body block.
  std::map<ir::BlockId, LoopSchedule> PipelinedLoops;
  RegAllocResult RA;
  CodeGenMetrics Metrics;

  /// Instruction words of the emitted code: one word per schedule cycle,
  /// plus prologue + kernel + epilogue for each pipelined loop.
  uint64_t codeWords() const;
};

/// Runs phase 3 on optimized IR.
MachineFunction generateCode(const ir::IRFunction &F, const MachineModel &MM);

} // namespace codegen
} // namespace warpc

#endif // WARPC_CODEGEN_CODEGEN_H
