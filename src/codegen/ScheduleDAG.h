//===- ScheduleDAG.h - Basic-block dependence DAG ---------------*- C++ -*-===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dependence DAG over the instructions of one basic block, the input to
/// the list scheduler. Edges carry the producer's latency.
///
//===----------------------------------------------------------------------===//

#ifndef WARPC_CODEGEN_SCHEDULEDAG_H
#define WARPC_CODEGEN_SCHEDULEDAG_H

#include "codegen/MachineModel.h"
#include "ir/IR.h"

#include <cstdint>
#include <vector>

namespace warpc {
namespace codegen {

/// One edge of the DAG: To may not start before start(From) + Latency.
struct DAGEdge {
  uint32_t From = 0;
  uint32_t To = 0;
  uint32_t Latency = 1;
};

/// Dependence DAG over a block's instructions (terminator excluded — it is
/// always scheduled last by construction).
struct ScheduleDAG {
  uint32_t NumNodes = 0;
  std::vector<DAGEdge> Edges;
  /// Per-node critical-path height (longest latency path to any sink),
  /// used as the list scheduler's priority.
  std::vector<uint32_t> Height;
  /// Edges examined while building; a phase-3 work metric.
  uint64_t BuildWork = 0;

  /// Builds the DAG for \p BB: register def-use edges, conservative memory
  /// ordering per variable, channel FIFO ordering, and call barriers.
  static ScheduleDAG build(const ir::BasicBlock &BB, const MachineModel &MM);
};

} // namespace codegen
} // namespace warpc

#endif // WARPC_CODEGEN_SCHEDULEDAG_H
