//===- MachineModel.cpp - Warp cell machine description --------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "codegen/MachineModel.h"

using namespace warpc;
using namespace warpc::codegen;
using namespace warpc::ir;

const char *codegen::fuKindName(FUKind Kind) {
  switch (Kind) {
  case FUKind::FAdd:
    return "fadd";
  case FUKind::FMul:
    return "fmul";
  case FUKind::IAlu:
    return "ialu";
  case FUKind::Mem:
    return "mem";
  case FUKind::Chan:
    return "chan";
  case FUKind::Branch:
    return "br";
  }
  return "?";
}

MachineModel MachineModel::warpCell() { return MachineModel(); }

OpInfo MachineModel::opInfo(const Instr &I) const {
  bool FloatOp = I.Ty == ValueType::Float;
  switch (I.Op) {
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Neg:
    return FloatOp ? OpInfo{FUKind::FAdd, 5, 1} : OpInfo{FUKind::IAlu, 1, 1};
  case Opcode::Mul:
    return FloatOp ? OpInfo{FUKind::FMul, 5, 1} : OpInfo{FUKind::IAlu, 2, 1};
  case Opcode::Div:
    // Divide iterates in the multiplier; partially pipelined (a new
    // divide may start every 4 cycles).
    return FloatOp ? OpInfo{FUKind::FMul, 12, 4}
                   : OpInfo{FUKind::IAlu, 10, 4};
  case Opcode::Rem:
    return OpInfo{FUKind::IAlu, 10, 4};
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Not:
    return OpInfo{FUKind::IAlu, 1, 1};
  case Opcode::CmpEQ:
  case Opcode::CmpNE:
  case Opcode::CmpLT:
  case Opcode::CmpLE:
  case Opcode::CmpGT:
  case Opcode::CmpGE:
    return FloatOp ? OpInfo{FUKind::FAdd, 5, 1} : OpInfo{FUKind::IAlu, 1, 1};
  case Opcode::IntToFloat:
    return OpInfo{FUKind::FAdd, 3, 1};
  case Opcode::ConstInt:
  case Opcode::ConstFloat:
  case Opcode::Copy:
    return OpInfo{FUKind::IAlu, 1, 1};
  case Opcode::LoadVar:
  case Opcode::LoadElem:
    return OpInfo{FUKind::Mem, 2, 1};
  case Opcode::StoreVar:
  case Opcode::StoreElem:
    return OpInfo{FUKind::Mem, 1, 1};
  case Opcode::Send:
  case Opcode::Recv:
    return OpInfo{FUKind::Chan, 1, 1};
  case Opcode::Sqrt:
    return OpInfo{FUKind::FMul, 14, 4};
  case Opcode::Abs:
    return OpInfo{FUKind::FAdd, 2, 1};
  case Opcode::Call:
    // Calls flush the pipelines and transfer control.
    return OpInfo{FUKind::Branch, 15, 15};
  case Opcode::Br:
  case Opcode::CondBr:
  case Opcode::Ret:
    return OpInfo{FUKind::Branch, 2, 1};
  }
  return OpInfo{FUKind::IAlu, 1, 1};
}
