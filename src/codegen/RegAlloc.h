//===- RegAlloc.h - Register allocation -------------------------*- C++ -*-===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Linear-scan assignment of virtual registers to the Warp cell's register
/// files. The Warp register organization is "unusual" (Section 1): the
/// AGU and the FP datapath have separate files, so int and float values
/// allocate independently. Values that do not fit spill to local memory.
///
//===----------------------------------------------------------------------===//

#ifndef WARPC_CODEGEN_REGALLOC_H
#define WARPC_CODEGEN_REGALLOC_H

#include "codegen/MachineModel.h"
#include "ir/IR.h"

#include <cstdint>
#include <vector>

namespace warpc {
namespace codegen {

/// Outcome of register allocation for one function.
struct RegAllocResult {
  /// Physical register (or spill slot) per virtual register; values >=
  /// the file size denote spill slots.
  std::vector<uint32_t> Assignment;
  uint32_t IntRegsUsed = 0;
  uint32_t FloatRegsUsed = 0;
  uint32_t Spills = 0;
  /// Interval events processed; a phase-3 work metric.
  uint64_t Work = 0;
  /// Maximum number of simultaneously live values (both files).
  uint32_t PeakPressure = 0;
};

/// Runs linear scan over \p F in layout order.
RegAllocResult allocateRegisters(const ir::IRFunction &F,
                                 const MachineModel &MM);

/// The scalar result type of a register-defining instruction (comparisons
/// and logical operations produce int regardless of their operand type).
ir::ValueType resultType(const ir::Instr &I);

} // namespace codegen
} // namespace warpc

#endif // WARPC_CODEGEN_REGALLOC_H
