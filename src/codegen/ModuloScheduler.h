//===- ModuloScheduler.h - Software pipelining ------------------*- C++ -*-===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Iterative modulo scheduling (software pipelining) of innermost simple
/// loops — the heart of compiler phase 3 and the dominant share of
/// compilation time. The algorithm follows Rau's iterative modulo
/// scheduling: compute MII = max(ResMII, RecMII), then try successive
/// initiation intervals, placing operations by critical-path priority with
/// eviction when no slot satisfies both dependence and resource
/// constraints under a fixed budget.
///
//===----------------------------------------------------------------------===//

#ifndef WARPC_CODEGEN_MODULOSCHEDULER_H
#define WARPC_CODEGEN_MODULOSCHEDULER_H

#include "codegen/MachineModel.h"
#include "ir/IR.h"
#include "opt/Dependence.h"
#include "opt/LoopInfo.h"

#include <cstdint>
#include <string>
#include <vector>

namespace warpc {
namespace codegen {

/// One kernel operation: issued at Cycle within the kernel (0 <= Cycle <
/// II) in pipeline stage Stage.
struct KernelOp {
  uint32_t InstrIdx = 0;
  uint32_t Cycle = 0;
  uint32_t Stage = 0;
  FUKind Unit = FUKind::IAlu;
};

/// Result of software pipelining one loop.
struct LoopSchedule {
  bool Pipelined = false;
  uint32_t II = 0;     ///< Achieved initiation interval.
  uint32_t MII = 0;    ///< max(ResMII, RecMII) lower bound.
  uint32_t ResMII = 0; ///< Resource-constrained bound.
  uint32_t RecMII = 0; ///< Recurrence-constrained bound.
  uint32_t Stages = 0; ///< Kernel depth; prologue/epilogue are Stages-1 deep.
  std::vector<KernelOp> Kernel;
  /// Placement probes across all II attempts; the phase-3 work metric.
  uint64_t Attempts = 0;
  /// Longest-path relaxations spent computing RecMII.
  uint64_t RecMIIWork = 0;
};

/// Pipelines the body of \p L using precomputed dependences. When \p Deps
/// is not PipelineSafe the result has Pipelined = false and the caller
/// falls back to list scheduling.
LoopSchedule moduloSchedule(const ir::IRFunction &F, const opt::Loop &L,
                            const opt::LoopDeps &Deps,
                            const MachineModel &MM);

/// Returns an empty string when \p S satisfies every dependence edge
/// (start(To) >= start(From) + latency - II*distance) and the modulo
/// reservation table; else the first violation. Test hook.
std::string validateLoopSchedule(const ir::IRFunction &F, const opt::Loop &L,
                                 const opt::LoopDeps &Deps,
                                 const MachineModel &MM,
                                 const LoopSchedule &S);

} // namespace codegen
} // namespace warpc

#endif // WARPC_CODEGEN_MODULOSCHEDULER_H
