//===- MachineModel.h - Warp cell machine description -----------*- C++ -*-===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Machine description of one Warp processing element. Each cell is a
/// wide-instruction-word (horizontally microcoded) processor with multiple
/// pipelined functional units — a floating-point adder, a floating-point
/// multiplier, an integer ALU/address unit, a local-memory port, and the
/// X/Y systolic channel queues — all issuing in one instruction word per
/// cycle. "These architectural features give a compiler an opportunity to
/// produce good (and sometimes even optimal) code, but determining the
/// appropriate code sequence can be expensive" (Section 1).
///
//===----------------------------------------------------------------------===//

#ifndef WARPC_CODEGEN_MACHINEMODEL_H
#define WARPC_CODEGEN_MACHINEMODEL_H

#include "ir/IR.h"

#include <cstdint>

namespace warpc {
namespace codegen {

/// The functional units of a Warp cell's instruction word.
enum class FUKind : uint8_t {
  FAdd,   ///< Pipelined floating add/subtract/compare/convert.
  FMul,   ///< Pipelined floating multiply (also divide, sqrt).
  IAlu,   ///< Integer ALU and address generation.
  Mem,    ///< Local data-memory port.
  Chan,   ///< X/Y channel queue access.
  Branch, ///< Sequencer (branches, calls).
};
inline constexpr unsigned NumFUKinds = 6;

/// Returns a short mnemonic ("fadd", "mem", ...).
const char *fuKindName(FUKind Kind);

/// Static issue/latency data for one opcode on the Warp cell.
struct OpInfo {
  FUKind Unit = FUKind::IAlu;
  /// Cycles until the result may be consumed. All units are fully
  /// pipelined (initiation interval 1) except divide and sqrt.
  uint32_t Latency = 1;
  /// Cycles the unit stays reserved (1 for pipelined operations).
  uint32_t Reserve = 1;
};

/// Describes one Warp processing element.
class MachineModel {
public:
  /// The standard PC-Warp cell configuration used by all benches.
  static MachineModel warpCell();

  /// Issue and latency data for an instruction.
  OpInfo opInfo(const ir::Instr &I) const;

  /// Number of issue slots per cycle for \p Kind (one each on Warp).
  uint32_t slots(FUKind Kind) const { return Slots[static_cast<unsigned>(Kind)]; }

  /// Register file sizes (per type) for the allocator.
  uint32_t intRegs() const { return NumIntRegs; }
  uint32_t floatRegs() const { return NumFloatRegs; }

private:
  uint32_t Slots[NumFUKinds] = {1, 1, 1, 1, 1, 1};
  uint32_t NumIntRegs = 31;
  uint32_t NumFloatRegs = 31;
};

} // namespace codegen
} // namespace warpc

#endif // WARPC_CODEGEN_MACHINEMODEL_H
