//===- ListScheduler.cpp - Cycle-driven list scheduling --------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "codegen/ListScheduler.h"

#include "codegen/ScheduleDAG.h"

#include <algorithm>
#include <cassert>
#include <map>

using namespace warpc;
using namespace warpc::codegen;
using namespace warpc::ir;

namespace {

/// Tracks functional-unit occupancy per cycle.
class ReservationTable {
public:
  explicit ReservationTable(const MachineModel &MM) : MM(MM) {}

  bool canIssue(FUKind Unit, uint32_t Cycle, uint32_t Reserve) const {
    for (uint32_t C = Cycle; C != Cycle + Reserve; ++C) {
      auto It = Used.find({Unit, C});
      if (It != Used.end() && It->second >= MM.slots(Unit))
        return false;
    }
    return true;
  }

  void issue(FUKind Unit, uint32_t Cycle, uint32_t Reserve) {
    for (uint32_t C = Cycle; C != Cycle + Reserve; ++C)
      ++Used[{Unit, C}];
  }

private:
  const MachineModel &MM;
  std::map<std::pair<FUKind, uint32_t>, uint32_t> Used;
};

} // namespace

BlockSchedule codegen::listSchedule(const BasicBlock &BB,
                                    const MachineModel &MM) {
  BlockSchedule Sched;
  ScheduleDAG DAG = ScheduleDAG::build(BB, MM);
  Sched.Attempts += DAG.BuildWork;
  uint32_t N = DAG.NumNodes;

  // Predecessor counts and in-edges per node.
  std::vector<uint32_t> PredsLeft(N, 0);
  std::vector<std::vector<const DAGEdge *>> InEdges(N);
  std::vector<std::vector<const DAGEdge *>> OutEdges(N);
  for (const DAGEdge &E : DAG.Edges) {
    ++PredsLeft[E.To];
    InEdges[E.To].push_back(&E);
    OutEdges[E.From].push_back(&E);
  }

  std::vector<uint32_t> StartCycle(N, 0);
  std::vector<bool> Placed(N, false);
  std::vector<uint32_t> Earliest(N, 0);
  std::vector<uint32_t> Ready; // node ids whose preds are all placed
  for (uint32_t Node = 0; Node != N; ++Node)
    if (PredsLeft[Node] == 0)
      Ready.push_back(Node);

  ReservationTable RT(MM);
  uint32_t Cycle = 0;
  uint32_t NumPlaced = 0;
  uint32_t Horizon = 0;

  while (NumPlaced != N) {
    // Issue as many ready ops as the word allows this cycle, preferring
    // the longest critical path.
    std::sort(Ready.begin(), Ready.end(), [&](uint32_t A, uint32_t B) {
      if (DAG.Height[A] != DAG.Height[B])
        return DAG.Height[A] > DAG.Height[B];
      return A < B;
    });
    std::vector<uint32_t> StillReady;
    for (uint32_t Node : Ready) {
      ++Sched.Attempts;
      OpInfo Info = MM.opInfo(BB.Instrs[Node]);
      if (Earliest[Node] <= Cycle && RT.canIssue(Info.Unit, Cycle,
                                                 Info.Reserve)) {
        RT.issue(Info.Unit, Cycle, Info.Reserve);
        StartCycle[Node] = Cycle;
        Placed[Node] = true;
        ++NumPlaced;
        Horizon = std::max(Horizon,
                           Cycle + std::max(Info.Latency, Info.Reserve));
        Sched.Ops.push_back(ScheduledOp{Node, Cycle, Info.Unit});
        // Release successors whose predecessors are all placed.
        for (const DAGEdge *E : OutEdges[Node]) {
          Earliest[E->To] =
              std::max(Earliest[E->To], Cycle + E->Latency);
          if (--PredsLeft[E->To] == 0)
            StillReady.push_back(E->To);
        }
        continue;
      }
      StillReady.push_back(Node);
    }
    Ready = std::move(StillReady);
    ++Cycle;
    assert(Cycle < 1000000 && "list scheduler failed to make progress");
  }

  // The terminator issues once every operation has completed issue; its
  // own latency (branch delay) extends the block.
  if (!BB.Instrs.empty() && isTerminator(BB.Instrs.back().Op)) {
    uint32_t TermIdx = static_cast<uint32_t>(BB.Instrs.size() - 1);
    OpInfo Info = MM.opInfo(BB.Instrs[TermIdx]);
    uint32_t TermCycle = Horizon;
    // A conditional branch must wait for its condition register.
    Sched.Ops.push_back(ScheduledOp{TermIdx, TermCycle, Info.Unit});
    Horizon = TermCycle + Info.Latency;
  }
  Sched.Length = Horizon;
  return Sched;
}

std::string codegen::validateBlockSchedule(const BasicBlock &BB,
                                           const MachineModel &MM,
                                           const BlockSchedule &S) {
  ScheduleDAG DAG = ScheduleDAG::build(BB, MM);
  std::vector<int64_t> Start(DAG.NumNodes, -1);
  for (const ScheduledOp &Op : S.Ops)
    if (Op.InstrIdx < DAG.NumNodes)
      Start[Op.InstrIdx] = Op.Cycle;
  for (uint32_t Node = 0; Node != DAG.NumNodes; ++Node)
    if (Start[Node] < 0)
      return "instruction " + std::to_string(Node) + " was never scheduled";
  for (const DAGEdge &E : DAG.Edges)
    if (Start[E.To] < Start[E.From] + static_cast<int64_t>(E.Latency))
      return "dependence " + std::to_string(E.From) + " -> " +
             std::to_string(E.To) + " violated";
  // Resource check.
  std::map<std::pair<FUKind, uint32_t>, uint32_t> Used;
  for (const ScheduledOp &Op : S.Ops) {
    OpInfo Info = MM.opInfo(BB.Instrs[Op.InstrIdx]);
    for (uint32_t C = Op.Cycle; C != Op.Cycle + Info.Reserve; ++C)
      if (++Used[{Info.Unit, C}] > MM.slots(Info.Unit))
        return std::string("oversubscribed ") + fuKindName(Info.Unit) +
               " at cycle " + std::to_string(C);
  }
  return "";
}
