//===- CodeGen.cpp - Phase 3 orchestration ----------------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "codegen/CodeGen.h"

#include "opt/Dependence.h"
#include "opt/LoopInfo.h"

#include <set>

using namespace warpc;
using namespace warpc::codegen;
using namespace warpc::ir;

uint64_t MachineFunction::codeWords() const {
  uint64_t Words = 0;
  std::set<BlockId> Pipelined;
  for (const auto &[Body, Sched] : PipelinedLoops) {
    Pipelined.insert(Body);
    // Kernel of II words plus (Stages-1) stages of prologue and epilogue.
    Words += Sched.II;
    Words += 2ull * Sched.II * (Sched.Stages > 0 ? Sched.Stages - 1 : 0);
  }
  for (size_t B = 0; B != Blocks.size(); ++B) {
    if (Pipelined.count(static_cast<BlockId>(B)))
      continue;
    Words += Blocks[B].Length;
  }
  return Words;
}

MachineFunction codegen::generateCode(const IRFunction &F,
                                      const MachineModel &MM) {
  MachineFunction MF;
  MF.Name = F.name();

  // Software-pipeline innermost simple loops first (innermost-first order
  // is what LoopInfo::compute returns).
  opt::LoopInfo LI = opt::LoopInfo::compute(F);
  std::set<BlockId> PipelinedBodies;
  for (const opt::Loop &L : LI.loops()) {
    if (!L.isSimpleInnerLoop())
      continue;
    if (PipelinedBodies.count(L.bodyBlock()))
      continue;
    ++MF.Metrics.LoopsConsidered;
    opt::LoopDeps Deps = opt::analyzeLoopDependences(F, L);
    LoopSchedule Sched = moduloSchedule(F, L, Deps, MM);
    MF.Metrics.ModuloSchedAttempts += Sched.Attempts;
    MF.Metrics.RecMIIWork += Sched.RecMIIWork;
    if (Sched.Pipelined) {
      ++MF.Metrics.LoopsPipelined;
      PipelinedBodies.insert(L.bodyBlock());
      MF.PipelinedLoops.emplace(L.bodyBlock(), std::move(Sched));
    }
  }

  // List-schedule every block (pipelined bodies keep an entry of length 0
  // so indexing by BlockId stays uniform).
  MF.Blocks.resize(F.numBlocks());
  for (size_t B = 0; B != F.numBlocks(); ++B) {
    if (PipelinedBodies.count(static_cast<BlockId>(B)))
      continue;
    MF.Blocks[B] = listSchedule(*F.block(static_cast<BlockId>(B)), MM);
    MF.Metrics.ListSchedAttempts += MF.Blocks[B].Attempts;
  }

  MF.RA = allocateRegisters(F, MM);
  MF.Metrics.RegAllocWork = MF.RA.Work;
  return MF;
}
