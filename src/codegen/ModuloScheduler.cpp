//===- ModuloScheduler.cpp - Software pipelining ---------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "codegen/ModuloScheduler.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <vector>

using namespace warpc;
using namespace warpc::codegen;
using namespace warpc::ir;
using namespace warpc::opt;

namespace {

constexpr int64_t NegInf = std::numeric_limits<int64_t>::min() / 4;

/// Longest-path check: does the dependence graph contain a positive cycle
/// under initiation interval II? Edge weight = latency(From) - II*distance.
bool hasPositiveCycle(uint32_t N, const std::vector<DepEdge> &Edges,
                      const std::vector<uint32_t> &Latency, uint32_t II,
                      uint64_t &Work) {
  std::vector<int64_t> Dist(static_cast<size_t>(N) * N, NegInf);
  auto At = [&](uint32_t I, uint32_t J) -> int64_t & {
    return Dist[static_cast<size_t>(I) * N + J];
  };
  for (const DepEdge &E : Edges) {
    int64_t W = static_cast<int64_t>(Latency[E.From]) -
                static_cast<int64_t>(II) * E.Distance;
    At(E.From, E.To) = std::max(At(E.From, E.To), W);
    // A self-edge is itself a cycle.
    if (E.From == E.To && W > 0)
      return true;
  }
  for (uint32_t K = 0; K != N; ++K)
    for (uint32_t I = 0; I != N; ++I) {
      if (At(I, K) == NegInf)
        continue;
      for (uint32_t J = 0; J != N; ++J) {
        ++Work;
        if (At(K, J) == NegInf)
          continue;
        int64_t Cand = At(I, K) + At(K, J);
        if (Cand > At(I, J))
          At(I, J) = Cand;
      }
    }
  for (uint32_t I = 0; I != N; ++I)
    if (At(I, I) > 0)
      return true;
  return false;
}

/// Modulo reservation table: per-unit occupancy of the II kernel slots.
class ModuloRT {
public:
  ModuloRT(const MachineModel &MM, uint32_t II) : MM(MM), II(II) {
    for (unsigned U = 0; U != NumFUKinds; ++U)
      Used[U].assign(II, 0);
  }

  bool canIssue(FUKind Unit, uint32_t Cycle, uint32_t Reserve) const {
    uint32_t R = std::min(Reserve, II);
    for (uint32_t C = 0; C != R; ++C)
      if (Used[static_cast<unsigned>(Unit)][(Cycle + C) % II] >=
          MM.slots(Unit))
        return false;
    // An operation reserving the unit for >= II cycles can never share it.
    if (Reserve >= II)
      for (uint32_t Slot = 0; Slot != II; ++Slot)
        if (Used[static_cast<unsigned>(Unit)][Slot] != 0)
          return false;
    return true;
  }

  void issue(FUKind Unit, uint32_t Cycle, uint32_t Reserve) {
    uint32_t R = std::min(std::max(Reserve, 1u), II);
    if (Reserve >= II)
      R = II;
    for (uint32_t C = 0; C != R; ++C)
      ++Used[static_cast<unsigned>(Unit)][(Cycle + C) % II];
  }

  void release(FUKind Unit, uint32_t Cycle, uint32_t Reserve) {
    uint32_t R = std::min(std::max(Reserve, 1u), II);
    if (Reserve >= II)
      R = II;
    for (uint32_t C = 0; C != R; ++C) {
      assert(Used[static_cast<unsigned>(Unit)][(Cycle + C) % II] > 0 &&
             "releasing an unreserved slot");
      --Used[static_cast<unsigned>(Unit)][(Cycle + C) % II];
    }
  }

private:
  const MachineModel &MM;
  uint32_t II;
  std::vector<uint32_t> Used[NumFUKinds];
};

} // namespace

LoopSchedule codegen::moduloSchedule(const IRFunction &F, const Loop &L,
                                     const LoopDeps &Deps,
                                     const MachineModel &MM) {
  LoopSchedule Sched;
  if (!Deps.PipelineSafe)
    return Sched;

  const BasicBlock *Body = F.block(L.bodyBlock());
  uint32_t N = static_cast<uint32_t>(Body->Instrs.size());
  if (N > 0 && isTerminator(Body->Instrs.back().Op))
    --N;
  if (N == 0)
    return Sched;

  std::vector<OpInfo> Info(N);
  std::vector<uint32_t> Latency(N);
  for (uint32_t Op = 0; Op != N; ++Op) {
    Info[Op] = MM.opInfo(Body->Instrs[Op]);
    Latency[Op] = Info[Op].Latency;
  }

  // ResMII: each unit's demand over its slots.
  uint32_t UnitCount[NumFUKinds] = {0};
  for (uint32_t Op = 0; Op != N; ++Op)
    UnitCount[static_cast<unsigned>(Info[Op].Unit)] +=
        std::max(Info[Op].Reserve, 1u);
  Sched.ResMII = 1;
  for (unsigned U = 0; U != NumFUKinds; ++U) {
    FUKind Kind = static_cast<FUKind>(U);
    if (UnitCount[U] == 0)
      continue;
    uint32_t Bound = (UnitCount[U] + MM.slots(Kind) - 1) / MM.slots(Kind);
    Sched.ResMII = std::max(Sched.ResMII, Bound);
  }

  // Very large bodies make both the recurrence analysis (O(n^3) longest
  // paths) and the modulo reservation search explode; fall back to list
  // scheduling before paying for them, as the 1989 compiler fell back to
  // straight code generation for unpipelinable loops.
  constexpr uint32_t MaxPracticalII = 128;
  constexpr uint32_t MaxPipelineOps = 192;
  if (N > MaxPipelineOps || Sched.ResMII > MaxPracticalII) {
    Sched.RecMII = 0;
    Sched.MII = Sched.ResMII;
    return Sched;
  }

  // RecMII: smallest II admitting no positive dependence cycle. "No
  // positive cycle at II" is monotone in II, so binary search applies.
  // The exact check is an O(n^3) longest-path computation, so beyond
  // RecMIIExactOps we fall back to a lower bound from one- and two-node
  // cycles (underestimating RecMII only costs extra failed attempts).
  constexpr uint32_t RecMIIExactOps = 96;
  uint32_t LatencySum = 1;
  for (uint32_t Lat : Latency)
    LatencySum += Lat;
  if (N > RecMIIExactOps) {
    uint32_t Bound = 1;
    for (const DepEdge &E : Deps.Edges) {
      ++Sched.RecMIIWork;
      if (E.From == E.To && E.Distance > 0)
        Bound = std::max(Bound, (Latency[E.From] + E.Distance - 1) /
                                    E.Distance);
      if (E.Distance == 0)
        continue;
      // Two-node cycle with a distance-0 return edge.
      for (const DepEdge &Back : Deps.Edges) {
        if (Back.From != E.To || Back.To != E.From)
          continue;
        uint32_t Dist = E.Distance + Back.Distance;
        if (Dist > 0)
          Bound = std::max(
              Bound, (Latency[E.From] + Latency[Back.From] + Dist - 1) /
                         Dist);
      }
    }
    Sched.RecMII = Bound;
  } else {
    uint32_t Lo = 1, Hi = LatencySum;
    if (hasPositiveCycle(N, Deps.Edges, Latency, Hi, Sched.RecMIIWork)) {
      // Pathological graph; refuse to pipeline.
      Sched.RecMII = LatencySum + 1;
    } else {
      while (Lo < Hi) {
        uint32_t Mid = Lo + (Hi - Lo) / 2;
        if (hasPositiveCycle(N, Deps.Edges, Latency, Mid,
                             Sched.RecMIIWork))
          Lo = Mid + 1;
        else
          Hi = Mid;
      }
      Sched.RecMII = Lo;
    }
  }
  Sched.MII = std::max(Sched.ResMII, Sched.RecMII);

  // A loop whose MII approaches its sequential length gains nothing from
  // overlap.
  if (Sched.MII > MaxPracticalII)
    return Sched;

  // Priority: critical-path height over same-iteration edges.
  std::vector<uint32_t> Height(N, 0);
  std::vector<std::vector<const DepEdge *>> OutZero(N);
  for (const DepEdge &E : Deps.Edges)
    if (E.Distance == 0)
      OutZero[E.From].push_back(&E);
  for (uint32_t Op = N; Op-- > 0;) {
    uint32_t H = Latency[Op];
    for (const DepEdge *E : OutZero[Op])
      H = std::max(H, Latency[Op] + Height[E->To]);
    Height[Op] = H;
  }

  std::vector<std::vector<const DepEdge *>> InEdges(N), OutEdges(N);
  for (const DepEdge &E : Deps.Edges) {
    if (E.From < N && E.To < N) {
      OutEdges[E.From].push_back(&E);
      InEdges[E.To].push_back(&E);
    }
  }

  // Compile-time guard rail: across all candidate IIs, give up once the
  // scheduler has burned this many placement probes. The expended probes
  // still land in the work metrics — a hard-to-pipeline loop was exactly
  // as expensive for the 1989 compiler.
  const uint64_t AttemptCap = 150000;

  const uint32_t MaxII = Sched.MII * 2 + 32;
  for (uint32_t II = Sched.MII; II <= MaxII; ++II) {
    if (Sched.Attempts > AttemptCap)
      return Sched;
    ModuloRT RT(MM, II);
    std::vector<int64_t> Time(N, -1);
    std::vector<int64_t> PrevTime(N, -1);
    int64_t Budget = static_cast<int64_t>(N) * 6 + 24;

    // Height-ordered work stack; re-pushed entries keep priority order.
    auto Better = [&](uint32_t A, uint32_t B) {
      if (Height[A] != Height[B])
        return Height[A] < Height[B]; // max-heap via sorted vector back
      return A > B;
    };
    std::vector<uint32_t> Work(N);
    for (uint32_t Op = 0; Op != N; ++Op)
      Work[Op] = Op;
    std::sort(Work.begin(), Work.end(), Better);

    bool Failed = false;
    while (!Work.empty()) {
      if (Budget-- <= 0) {
        Failed = true;
        break;
      }
      uint32_t Op = Work.back();
      Work.pop_back();

      // Earliest start from scheduled predecessors.
      int64_t Earliest = 0;
      for (const DepEdge *E : InEdges[Op]) {
        if (Time[E->From] < 0)
          continue;
        int64_t Bound = Time[E->From] + static_cast<int64_t>(Latency[E->From]) -
                        static_cast<int64_t>(II) * E->Distance;
        Earliest = std::max(Earliest, Bound);
      }
      if (PrevTime[Op] >= 0)
        Earliest = std::max(Earliest, PrevTime[Op] + 1);

      // Probe II consecutive start cycles.
      int64_t Chosen = -1;
      for (int64_t T = Earliest; T != Earliest + II; ++T) {
        ++Sched.Attempts;
        if (RT.canIssue(Info[Op].Unit, static_cast<uint32_t>(T % II),
                        Info[Op].Reserve)) {
          Chosen = T;
          break;
        }
      }
      bool Forced = false;
      if (Chosen < 0) {
        Chosen = Earliest;
        Forced = true;
      }

      // Evict operations that conflict with a forced placement: resource
      // conflicts on the same unit, and already-scheduled successors whose
      // dependence would now be violated.
      if (Forced) {
        for (uint32_t Other = 0; Other != N; ++Other) {
          if (Other == Op || Time[Other] < 0)
            continue;
          bool Conflict = false;
          if (Info[Other].Unit == Info[Op].Unit) {
            // Approximate: same modulo footprint overlap.
            uint32_t RA = std::min(std::max(Info[Op].Reserve, 1u), II);
            uint32_t RB = std::min(std::max(Info[Other].Reserve, 1u), II);
            for (uint32_t A = 0; A != RA && !Conflict; ++A)
              for (uint32_t B = 0; B != RB && !Conflict; ++B)
                if ((Chosen + A) % II ==
                    (Time[Other] + B) % II)
                  Conflict = true;
          }
          if (Conflict) {
            RT.release(Info[Other].Unit,
                       static_cast<uint32_t>(Time[Other] % II),
                       Info[Other].Reserve);
            PrevTime[Other] = Time[Other];
            Time[Other] = -1;
            Work.push_back(Other);
          }
        }
      }

      RT.issue(Info[Op].Unit, static_cast<uint32_t>(Chosen % II),
               Info[Op].Reserve);
      Time[Op] = Chosen;
      PrevTime[Op] = Chosen;

      // Unschedule successors whose constraint is now violated.
      for (const DepEdge *E : OutEdges[Op]) {
        uint32_t Succ = E->To;
        if (Succ == Op || Time[Succ] < 0)
          continue;
        int64_t Bound = Chosen + static_cast<int64_t>(Latency[Op]) -
                        static_cast<int64_t>(II) * E->Distance;
        if (Time[Succ] < Bound) {
          RT.release(Info[Succ].Unit,
                     static_cast<uint32_t>(Time[Succ] % II),
                     Info[Succ].Reserve);
          PrevTime[Succ] = Time[Succ];
          Time[Succ] = -1;
          Work.push_back(Succ);
        }
      }
      // Keep the stack ordered by priority so eviction does not starve.
      std::sort(Work.begin(), Work.end(), Better);
    }

    if (Failed)
      continue;

    // Verify every edge (paranoia against eviction ordering bugs); retry
    // with a larger II on violation.
    bool Valid = true;
    for (const DepEdge &E : Deps.Edges) {
      int64_t Bound = Time[E.From] + static_cast<int64_t>(Latency[E.From]) -
                      static_cast<int64_t>(II) * E.Distance;
      if (Time[E.To] < Bound) {
        Valid = false;
        break;
      }
    }
    if (!Valid)
      continue;

    // Success: normalize times, split into stage and kernel cycle.
    int64_t MinTime = *std::min_element(Time.begin(), Time.end());
    uint32_t MaxStage = 0;
    Sched.Kernel.clear();
    for (uint32_t Op = 0; Op != N; ++Op) {
      uint64_t T = static_cast<uint64_t>(Time[Op] - MinTime);
      KernelOp K;
      K.InstrIdx = Op;
      K.Cycle = static_cast<uint32_t>(T % II);
      K.Stage = static_cast<uint32_t>(T / II);
      K.Unit = Info[Op].Unit;
      MaxStage = std::max(MaxStage, K.Stage);
      Sched.Kernel.push_back(K);
    }
    Sched.Pipelined = true;
    Sched.II = II;
    Sched.Stages = MaxStage + 1;
    return Sched;
  }

  // No II within range worked; caller falls back to list scheduling.
  return Sched;
}

std::string codegen::validateLoopSchedule(const IRFunction &F, const Loop &L,
                                          const LoopDeps &Deps,
                                          const MachineModel &MM,
                                          const LoopSchedule &S) {
  if (!S.Pipelined)
    return "schedule is not pipelined";
  const BasicBlock *Body = F.block(L.bodyBlock());
  uint32_t N = static_cast<uint32_t>(Body->Instrs.size());
  if (N > 0 && isTerminator(Body->Instrs.back().Op))
    --N;

  std::vector<int64_t> Time(N, -1);
  for (const KernelOp &K : S.Kernel) {
    if (K.InstrIdx >= N)
      return "kernel references instruction out of range";
    Time[K.InstrIdx] =
        static_cast<int64_t>(K.Stage) * S.II + K.Cycle;
  }
  for (uint32_t Op = 0; Op != N; ++Op)
    if (Time[Op] < 0)
      return "instruction " + std::to_string(Op) + " missing from kernel";

  for (const DepEdge &E : Deps.Edges) {
    uint32_t Lat = MM.opInfo(Body->Instrs[E.From]).Latency;
    int64_t Bound = Time[E.From] + Lat -
                    static_cast<int64_t>(S.II) * E.Distance;
    if (Time[E.To] < Bound)
      return "dependence " + std::to_string(E.From) + " -> " +
             std::to_string(E.To) + " (distance " +
             std::to_string(E.Distance) + ") violated";
  }

  // Modulo resource check.
  std::vector<std::vector<uint32_t>> Used(
      NumFUKinds, std::vector<uint32_t>(S.II, 0));
  for (const KernelOp &K : S.Kernel) {
    OpInfo Info = MM.opInfo(Body->Instrs[K.InstrIdx]);
    uint32_t R = std::min(std::max(Info.Reserve, 1u), S.II);
    for (uint32_t C = 0; C != R; ++C) {
      uint32_t Slot = (K.Cycle + C) % S.II;
      if (++Used[static_cast<unsigned>(Info.Unit)][Slot] >
          MM.slots(Info.Unit))
        return std::string("oversubscribed ") + fuKindName(Info.Unit) +
               " at kernel slot " + std::to_string(Slot);
    }
  }
  return "";
}
