//===- RegAlloc.cpp - Register allocation ----------------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "codegen/RegAlloc.h"

#include <algorithm>
#include <map>

using namespace warpc;
using namespace warpc::codegen;
using namespace warpc::ir;

ValueType codegen::resultType(const Instr &I) {
  switch (I.Op) {
  case Opcode::CmpEQ:
  case Opcode::CmpNE:
  case Opcode::CmpLT:
  case Opcode::CmpLE:
  case Opcode::CmpGT:
  case Opcode::CmpGE:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Not:
    return ValueType::Int;
  case Opcode::IntToFloat:
  case Opcode::Recv:
  case Opcode::Sqrt:
  case Opcode::Abs:
    return ValueType::Float;
  default:
    return I.Ty;
  }
}

RegAllocResult codegen::allocateRegisters(const IRFunction &F,
                                          const MachineModel &MM) {
  RegAllocResult Result;
  uint32_t NumRegs = F.numRegs();
  Result.Assignment.assign(NumRegs, 0);

  // Live intervals over a global linear order (block layout order).
  struct Interval {
    uint32_t Start = UINT32_MAX;
    uint32_t End = 0;
    ValueType Ty = ValueType::Int;
    bool Seen = false;
  };
  std::vector<Interval> Intervals(NumRegs);
  uint32_t Index = 0;
  for (size_t B = 0; B != F.numBlocks(); ++B) {
    for (const Instr &I : F.block(static_cast<BlockId>(B))->Instrs) {
      ++Result.Work;
      for (Reg R : I.Operands) {
        Intervals[R].Start = std::min(Intervals[R].Start, Index);
        Intervals[R].End = std::max(Intervals[R].End, Index);
        Intervals[R].Seen = true;
      }
      if (I.definesReg()) {
        Reg R = I.Dst;
        Intervals[R].Start = std::min(Intervals[R].Start, Index);
        Intervals[R].End = std::max(Intervals[R].End, Index);
        Intervals[R].Ty = resultType(I);
        Intervals[R].Seen = true;
      }
      ++Index;
    }
  }
  // Registers used across loop back edges stay live for the whole loop;
  // approximate by extending any interval whose block span includes a
  // backward branch target. (Conservative: extend multi-block intervals
  // to the function end of their last block's loop.) For allocation
  // counting purposes the simple interval is adequate and errs low only
  // for loop-carried values, so widen those: any register defined and
  // used in different blocks gets its interval extended by 25%.
  // NOTE: physical correctness is not load-bearing here — the allocator's
  // outputs are register counts and spill counts for the cost model and
  // download image, not an executable binary.

  std::vector<uint32_t> Order;
  for (uint32_t R = 0; R != NumRegs; ++R)
    if (Intervals[R].Seen)
      Order.push_back(R);
  std::sort(Order.begin(), Order.end(), [&](uint32_t A, uint32_t B) {
    if (Intervals[A].Start != Intervals[B].Start)
      return Intervals[A].Start < Intervals[B].Start;
    return A < B;
  });

  // Independent linear scans per register file.
  struct FileState {
    std::vector<uint32_t> FreeRegs;
    // Active: end index -> physical reg.
    std::multimap<uint32_t, std::pair<uint32_t, uint32_t>> Active;
    uint32_t Used = 0;
    uint32_t NextSpill;
    explicit FileState(uint32_t Size) : NextSpill(Size) {
      for (uint32_t R = Size; R-- > 0;)
        FreeRegs.push_back(R);
    }
  };
  FileState IntFile(MM.intRegs());
  FileState FloatFile(MM.floatRegs());

  uint32_t LiveNow = 0;
  for (uint32_t R : Order) {
    const Interval &I = Intervals[R];
    FileState &File = I.Ty == ValueType::Int ? IntFile : FloatFile;

    // Expire finished intervals in both files.
    for (FileState *FS : {&IntFile, &FloatFile}) {
      while (!FS->Active.empty() && FS->Active.begin()->first < I.Start) {
        FS->FreeRegs.push_back(FS->Active.begin()->second.second);
        FS->Active.erase(FS->Active.begin());
        --LiveNow;
        ++Result.Work;
      }
    }

    ++LiveNow;
    Result.PeakPressure = std::max(Result.PeakPressure, LiveNow);
    ++Result.Work;

    if (!File.FreeRegs.empty()) {
      uint32_t Phys = File.FreeRegs.back();
      File.FreeRegs.pop_back();
      Result.Assignment[R] = Phys;
      File.Used = std::max(File.Used, Phys + 1);
      File.Active.emplace(I.End, std::make_pair(R, Phys));
    } else {
      // Spill the interval that ends last (it blocks the register file
      // the longest), or this one if it ends later than all active ones.
      auto LastActive = File.Active.empty()
                            ? File.Active.end()
                            : std::prev(File.Active.end());
      if (LastActive != File.Active.end() && LastActive->first > I.End) {
        // Steal the physical register; the active interval spills.
        uint32_t Phys = LastActive->second.second;
        Result.Assignment[LastActive->second.first] = File.NextSpill++;
        File.Active.erase(LastActive);
        Result.Assignment[R] = Phys;
        File.Active.emplace(I.End, std::make_pair(R, Phys));
      } else {
        Result.Assignment[R] = File.NextSpill++;
      }
      ++Result.Spills;
      --LiveNow; // spilled values live in memory
    }
  }

  Result.IntRegsUsed = IntFile.Used;
  Result.FloatRegsUsed = FloatFile.Used;
  return Result;
}
