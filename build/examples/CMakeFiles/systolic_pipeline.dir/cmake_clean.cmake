file(REMOVE_RECURSE
  "CMakeFiles/systolic_pipeline.dir/systolic_pipeline.cpp.o"
  "CMakeFiles/systolic_pipeline.dir/systolic_pipeline.cpp.o.d"
  "systolic_pipeline"
  "systolic_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/systolic_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
