# Empty compiler generated dependencies file for systolic_pipeline.
# This may be replaced when dependencies are built.
