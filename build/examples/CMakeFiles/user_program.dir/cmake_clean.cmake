file(REMOVE_RECURSE
  "CMakeFiles/user_program.dir/user_program.cpp.o"
  "CMakeFiles/user_program.dir/user_program.cpp.o.d"
  "user_program"
  "user_program.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/user_program.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
