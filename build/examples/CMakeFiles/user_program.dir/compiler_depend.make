# Empty compiler generated dependencies file for user_program.
# This may be replaced when dependencies are built.
