file(REMOVE_RECURSE
  "CMakeFiles/inspect_pipeline.dir/inspect_pipeline.cpp.o"
  "CMakeFiles/inspect_pipeline.dir/inspect_pipeline.cpp.o.d"
  "inspect_pipeline"
  "inspect_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inspect_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
