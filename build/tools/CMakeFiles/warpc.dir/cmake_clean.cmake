file(REMOVE_RECURSE
  "CMakeFiles/warpc.dir/warpc.cpp.o"
  "CMakeFiles/warpc.dir/warpc.cpp.o.d"
  "warpc"
  "warpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
