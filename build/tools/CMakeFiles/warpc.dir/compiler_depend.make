# Empty compiler generated dependencies file for warpc.
# This may be replaced when dependencies are built.
