# Empty dependencies file for warpc.
# This may be replaced when dependencies are built.
