file(REMOVE_RECURSE
  "CMakeFiles/warpc_w2.dir/AST.cpp.o"
  "CMakeFiles/warpc_w2.dir/AST.cpp.o.d"
  "CMakeFiles/warpc_w2.dir/ASTPrinter.cpp.o"
  "CMakeFiles/warpc_w2.dir/ASTPrinter.cpp.o.d"
  "CMakeFiles/warpc_w2.dir/Inliner.cpp.o"
  "CMakeFiles/warpc_w2.dir/Inliner.cpp.o.d"
  "CMakeFiles/warpc_w2.dir/Lexer.cpp.o"
  "CMakeFiles/warpc_w2.dir/Lexer.cpp.o.d"
  "CMakeFiles/warpc_w2.dir/Parser.cpp.o"
  "CMakeFiles/warpc_w2.dir/Parser.cpp.o.d"
  "CMakeFiles/warpc_w2.dir/Sema.cpp.o"
  "CMakeFiles/warpc_w2.dir/Sema.cpp.o.d"
  "libwarpc_w2.a"
  "libwarpc_w2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warpc_w2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
