# Empty compiler generated dependencies file for warpc_w2.
# This may be replaced when dependencies are built.
