file(REMOVE_RECURSE
  "libwarpc_w2.a"
)
