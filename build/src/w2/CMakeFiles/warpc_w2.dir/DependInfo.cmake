
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/w2/AST.cpp" "src/w2/CMakeFiles/warpc_w2.dir/AST.cpp.o" "gcc" "src/w2/CMakeFiles/warpc_w2.dir/AST.cpp.o.d"
  "/root/repo/src/w2/ASTPrinter.cpp" "src/w2/CMakeFiles/warpc_w2.dir/ASTPrinter.cpp.o" "gcc" "src/w2/CMakeFiles/warpc_w2.dir/ASTPrinter.cpp.o.d"
  "/root/repo/src/w2/Inliner.cpp" "src/w2/CMakeFiles/warpc_w2.dir/Inliner.cpp.o" "gcc" "src/w2/CMakeFiles/warpc_w2.dir/Inliner.cpp.o.d"
  "/root/repo/src/w2/Lexer.cpp" "src/w2/CMakeFiles/warpc_w2.dir/Lexer.cpp.o" "gcc" "src/w2/CMakeFiles/warpc_w2.dir/Lexer.cpp.o.d"
  "/root/repo/src/w2/Parser.cpp" "src/w2/CMakeFiles/warpc_w2.dir/Parser.cpp.o" "gcc" "src/w2/CMakeFiles/warpc_w2.dir/Parser.cpp.o.d"
  "/root/repo/src/w2/Sema.cpp" "src/w2/CMakeFiles/warpc_w2.dir/Sema.cpp.o" "gcc" "src/w2/CMakeFiles/warpc_w2.dir/Sema.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/warpc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
