# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("w2")
subdirs("ir")
subdirs("opt")
subdirs("codegen")
subdirs("asmout")
subdirs("driver")
subdirs("workload")
subdirs("cluster")
subdirs("parallel")
