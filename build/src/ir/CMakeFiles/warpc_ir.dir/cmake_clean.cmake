file(REMOVE_RECURSE
  "CMakeFiles/warpc_ir.dir/IR.cpp.o"
  "CMakeFiles/warpc_ir.dir/IR.cpp.o.d"
  "CMakeFiles/warpc_ir.dir/IRBuilder.cpp.o"
  "CMakeFiles/warpc_ir.dir/IRBuilder.cpp.o.d"
  "CMakeFiles/warpc_ir.dir/Interpreter.cpp.o"
  "CMakeFiles/warpc_ir.dir/Interpreter.cpp.o.d"
  "libwarpc_ir.a"
  "libwarpc_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warpc_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
