# Empty compiler generated dependencies file for warpc_ir.
# This may be replaced when dependencies are built.
