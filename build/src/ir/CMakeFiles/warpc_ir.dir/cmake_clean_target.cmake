file(REMOVE_RECURSE
  "libwarpc_ir.a"
)
