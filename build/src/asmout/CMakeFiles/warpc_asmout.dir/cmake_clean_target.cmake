file(REMOVE_RECURSE
  "libwarpc_asmout.a"
)
