file(REMOVE_RECURSE
  "CMakeFiles/warpc_asmout.dir/Assembly.cpp.o"
  "CMakeFiles/warpc_asmout.dir/Assembly.cpp.o.d"
  "CMakeFiles/warpc_asmout.dir/DownloadModule.cpp.o"
  "CMakeFiles/warpc_asmout.dir/DownloadModule.cpp.o.d"
  "libwarpc_asmout.a"
  "libwarpc_asmout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warpc_asmout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
