# Empty dependencies file for warpc_asmout.
# This may be replaced when dependencies are built.
