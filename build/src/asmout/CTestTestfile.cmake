# CMake generated Testfile for 
# Source directory: /root/repo/src/asmout
# Build directory: /root/repo/build/src/asmout
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
