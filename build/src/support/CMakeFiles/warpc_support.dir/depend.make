# Empty dependencies file for warpc_support.
# This may be replaced when dependencies are built.
