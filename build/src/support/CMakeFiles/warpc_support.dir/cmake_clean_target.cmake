file(REMOVE_RECURSE
  "libwarpc_support.a"
)
