file(REMOVE_RECURSE
  "CMakeFiles/warpc_support.dir/Diagnostics.cpp.o"
  "CMakeFiles/warpc_support.dir/Diagnostics.cpp.o.d"
  "CMakeFiles/warpc_support.dir/PRNG.cpp.o"
  "CMakeFiles/warpc_support.dir/PRNG.cpp.o.d"
  "CMakeFiles/warpc_support.dir/Stats.cpp.o"
  "CMakeFiles/warpc_support.dir/Stats.cpp.o.d"
  "CMakeFiles/warpc_support.dir/StringUtils.cpp.o"
  "CMakeFiles/warpc_support.dir/StringUtils.cpp.o.d"
  "CMakeFiles/warpc_support.dir/TextTable.cpp.o"
  "CMakeFiles/warpc_support.dir/TextTable.cpp.o.d"
  "libwarpc_support.a"
  "libwarpc_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warpc_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
