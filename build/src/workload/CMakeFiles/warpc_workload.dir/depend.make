# Empty dependencies file for warpc_workload.
# This may be replaced when dependencies are built.
