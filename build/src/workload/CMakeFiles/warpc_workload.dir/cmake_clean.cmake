file(REMOVE_RECURSE
  "CMakeFiles/warpc_workload.dir/Generator.cpp.o"
  "CMakeFiles/warpc_workload.dir/Generator.cpp.o.d"
  "libwarpc_workload.a"
  "libwarpc_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warpc_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
