file(REMOVE_RECURSE
  "libwarpc_workload.a"
)
