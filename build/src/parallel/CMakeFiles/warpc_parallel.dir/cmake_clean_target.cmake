file(REMOVE_RECURSE
  "libwarpc_parallel.a"
)
