file(REMOVE_RECURSE
  "CMakeFiles/warpc_parallel.dir/CostModel.cpp.o"
  "CMakeFiles/warpc_parallel.dir/CostModel.cpp.o.d"
  "CMakeFiles/warpc_parallel.dir/Job.cpp.o"
  "CMakeFiles/warpc_parallel.dir/Job.cpp.o.d"
  "CMakeFiles/warpc_parallel.dir/Scheduler.cpp.o"
  "CMakeFiles/warpc_parallel.dir/Scheduler.cpp.o.d"
  "CMakeFiles/warpc_parallel.dir/SimRunner.cpp.o"
  "CMakeFiles/warpc_parallel.dir/SimRunner.cpp.o.d"
  "CMakeFiles/warpc_parallel.dir/ThreadRunner.cpp.o"
  "CMakeFiles/warpc_parallel.dir/ThreadRunner.cpp.o.d"
  "libwarpc_parallel.a"
  "libwarpc_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warpc_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
