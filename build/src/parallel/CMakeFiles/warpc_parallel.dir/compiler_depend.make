# Empty compiler generated dependencies file for warpc_parallel.
# This may be replaced when dependencies are built.
