file(REMOVE_RECURSE
  "libwarpc_driver.a"
)
