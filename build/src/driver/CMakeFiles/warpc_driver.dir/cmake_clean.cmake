file(REMOVE_RECURSE
  "CMakeFiles/warpc_driver.dir/Compiler.cpp.o"
  "CMakeFiles/warpc_driver.dir/Compiler.cpp.o.d"
  "libwarpc_driver.a"
  "libwarpc_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warpc_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
