# Empty compiler generated dependencies file for warpc_driver.
# This may be replaced when dependencies are built.
