# Empty dependencies file for warpc_driver.
# This may be replaced when dependencies are built.
