
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opt/Dependence.cpp" "src/opt/CMakeFiles/warpc_opt.dir/Dependence.cpp.o" "gcc" "src/opt/CMakeFiles/warpc_opt.dir/Dependence.cpp.o.d"
  "/root/repo/src/opt/LICM.cpp" "src/opt/CMakeFiles/warpc_opt.dir/LICM.cpp.o" "gcc" "src/opt/CMakeFiles/warpc_opt.dir/LICM.cpp.o.d"
  "/root/repo/src/opt/Liveness.cpp" "src/opt/CMakeFiles/warpc_opt.dir/Liveness.cpp.o" "gcc" "src/opt/CMakeFiles/warpc_opt.dir/Liveness.cpp.o.d"
  "/root/repo/src/opt/LocalOpt.cpp" "src/opt/CMakeFiles/warpc_opt.dir/LocalOpt.cpp.o" "gcc" "src/opt/CMakeFiles/warpc_opt.dir/LocalOpt.cpp.o.d"
  "/root/repo/src/opt/LoopInfo.cpp" "src/opt/CMakeFiles/warpc_opt.dir/LoopInfo.cpp.o" "gcc" "src/opt/CMakeFiles/warpc_opt.dir/LoopInfo.cpp.o.d"
  "/root/repo/src/opt/ReachingDefs.cpp" "src/opt/CMakeFiles/warpc_opt.dir/ReachingDefs.cpp.o" "gcc" "src/opt/CMakeFiles/warpc_opt.dir/ReachingDefs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/warpc_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/w2/CMakeFiles/warpc_w2.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/warpc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
