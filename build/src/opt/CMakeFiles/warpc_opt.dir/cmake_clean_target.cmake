file(REMOVE_RECURSE
  "libwarpc_opt.a"
)
