# Empty dependencies file for warpc_opt.
# This may be replaced when dependencies are built.
