file(REMOVE_RECURSE
  "CMakeFiles/warpc_opt.dir/Dependence.cpp.o"
  "CMakeFiles/warpc_opt.dir/Dependence.cpp.o.d"
  "CMakeFiles/warpc_opt.dir/LICM.cpp.o"
  "CMakeFiles/warpc_opt.dir/LICM.cpp.o.d"
  "CMakeFiles/warpc_opt.dir/Liveness.cpp.o"
  "CMakeFiles/warpc_opt.dir/Liveness.cpp.o.d"
  "CMakeFiles/warpc_opt.dir/LocalOpt.cpp.o"
  "CMakeFiles/warpc_opt.dir/LocalOpt.cpp.o.d"
  "CMakeFiles/warpc_opt.dir/LoopInfo.cpp.o"
  "CMakeFiles/warpc_opt.dir/LoopInfo.cpp.o.d"
  "CMakeFiles/warpc_opt.dir/ReachingDefs.cpp.o"
  "CMakeFiles/warpc_opt.dir/ReachingDefs.cpp.o.d"
  "libwarpc_opt.a"
  "libwarpc_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warpc_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
