file(REMOVE_RECURSE
  "CMakeFiles/warpc_codegen.dir/CodeGen.cpp.o"
  "CMakeFiles/warpc_codegen.dir/CodeGen.cpp.o.d"
  "CMakeFiles/warpc_codegen.dir/ListScheduler.cpp.o"
  "CMakeFiles/warpc_codegen.dir/ListScheduler.cpp.o.d"
  "CMakeFiles/warpc_codegen.dir/MachineModel.cpp.o"
  "CMakeFiles/warpc_codegen.dir/MachineModel.cpp.o.d"
  "CMakeFiles/warpc_codegen.dir/ModuloScheduler.cpp.o"
  "CMakeFiles/warpc_codegen.dir/ModuloScheduler.cpp.o.d"
  "CMakeFiles/warpc_codegen.dir/RegAlloc.cpp.o"
  "CMakeFiles/warpc_codegen.dir/RegAlloc.cpp.o.d"
  "CMakeFiles/warpc_codegen.dir/ScheduleDAG.cpp.o"
  "CMakeFiles/warpc_codegen.dir/ScheduleDAG.cpp.o.d"
  "libwarpc_codegen.a"
  "libwarpc_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warpc_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
