file(REMOVE_RECURSE
  "libwarpc_codegen.a"
)
