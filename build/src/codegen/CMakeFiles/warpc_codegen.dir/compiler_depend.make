# Empty compiler generated dependencies file for warpc_codegen.
# This may be replaced when dependencies are built.
