
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codegen/CodeGen.cpp" "src/codegen/CMakeFiles/warpc_codegen.dir/CodeGen.cpp.o" "gcc" "src/codegen/CMakeFiles/warpc_codegen.dir/CodeGen.cpp.o.d"
  "/root/repo/src/codegen/ListScheduler.cpp" "src/codegen/CMakeFiles/warpc_codegen.dir/ListScheduler.cpp.o" "gcc" "src/codegen/CMakeFiles/warpc_codegen.dir/ListScheduler.cpp.o.d"
  "/root/repo/src/codegen/MachineModel.cpp" "src/codegen/CMakeFiles/warpc_codegen.dir/MachineModel.cpp.o" "gcc" "src/codegen/CMakeFiles/warpc_codegen.dir/MachineModel.cpp.o.d"
  "/root/repo/src/codegen/ModuloScheduler.cpp" "src/codegen/CMakeFiles/warpc_codegen.dir/ModuloScheduler.cpp.o" "gcc" "src/codegen/CMakeFiles/warpc_codegen.dir/ModuloScheduler.cpp.o.d"
  "/root/repo/src/codegen/RegAlloc.cpp" "src/codegen/CMakeFiles/warpc_codegen.dir/RegAlloc.cpp.o" "gcc" "src/codegen/CMakeFiles/warpc_codegen.dir/RegAlloc.cpp.o.d"
  "/root/repo/src/codegen/ScheduleDAG.cpp" "src/codegen/CMakeFiles/warpc_codegen.dir/ScheduleDAG.cpp.o" "gcc" "src/codegen/CMakeFiles/warpc_codegen.dir/ScheduleDAG.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/opt/CMakeFiles/warpc_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/warpc_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/w2/CMakeFiles/warpc_w2.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/warpc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
