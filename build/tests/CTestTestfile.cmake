# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_tests[1]_include.cmake")
include("/root/repo/build/tests/w2_tests[1]_include.cmake")
include("/root/repo/build/tests/ir_tests[1]_include.cmake")
include("/root/repo/build/tests/opt_tests[1]_include.cmake")
include("/root/repo/build/tests/codegen_tests[1]_include.cmake")
include("/root/repo/build/tests/asmout_tests[1]_include.cmake")
include("/root/repo/build/tests/driver_tests[1]_include.cmake")
include("/root/repo/build/tests/workload_tests[1]_include.cmake")
include("/root/repo/build/tests/cluster_tests[1]_include.cmake")
include("/root/repo/build/tests/parallel_tests[1]_include.cmake")
