file(REMOVE_RECURSE
  "CMakeFiles/codegen_tests.dir/codegen/ListSchedulerTest.cpp.o"
  "CMakeFiles/codegen_tests.dir/codegen/ListSchedulerTest.cpp.o.d"
  "CMakeFiles/codegen_tests.dir/codegen/MachineModelTest.cpp.o"
  "CMakeFiles/codegen_tests.dir/codegen/MachineModelTest.cpp.o.d"
  "CMakeFiles/codegen_tests.dir/codegen/ModuloSchedulerTest.cpp.o"
  "CMakeFiles/codegen_tests.dir/codegen/ModuloSchedulerTest.cpp.o.d"
  "CMakeFiles/codegen_tests.dir/codegen/RegAllocTest.cpp.o"
  "CMakeFiles/codegen_tests.dir/codegen/RegAllocTest.cpp.o.d"
  "CMakeFiles/codegen_tests.dir/codegen/ScheduleDAGTest.cpp.o"
  "CMakeFiles/codegen_tests.dir/codegen/ScheduleDAGTest.cpp.o.d"
  "codegen_tests"
  "codegen_tests.pdb"
  "codegen_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codegen_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
