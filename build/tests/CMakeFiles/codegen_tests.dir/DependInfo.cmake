
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/codegen/ListSchedulerTest.cpp" "tests/CMakeFiles/codegen_tests.dir/codegen/ListSchedulerTest.cpp.o" "gcc" "tests/CMakeFiles/codegen_tests.dir/codegen/ListSchedulerTest.cpp.o.d"
  "/root/repo/tests/codegen/MachineModelTest.cpp" "tests/CMakeFiles/codegen_tests.dir/codegen/MachineModelTest.cpp.o" "gcc" "tests/CMakeFiles/codegen_tests.dir/codegen/MachineModelTest.cpp.o.d"
  "/root/repo/tests/codegen/ModuloSchedulerTest.cpp" "tests/CMakeFiles/codegen_tests.dir/codegen/ModuloSchedulerTest.cpp.o" "gcc" "tests/CMakeFiles/codegen_tests.dir/codegen/ModuloSchedulerTest.cpp.o.d"
  "/root/repo/tests/codegen/RegAllocTest.cpp" "tests/CMakeFiles/codegen_tests.dir/codegen/RegAllocTest.cpp.o" "gcc" "tests/CMakeFiles/codegen_tests.dir/codegen/RegAllocTest.cpp.o.d"
  "/root/repo/tests/codegen/ScheduleDAGTest.cpp" "tests/CMakeFiles/codegen_tests.dir/codegen/ScheduleDAGTest.cpp.o" "gcc" "tests/CMakeFiles/codegen_tests.dir/codegen/ScheduleDAGTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/parallel/CMakeFiles/warpc_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/warpc_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/driver/CMakeFiles/warpc_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/asmout/CMakeFiles/warpc_asmout.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/warpc_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/warpc_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/warpc_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/w2/CMakeFiles/warpc_w2.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/warpc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
