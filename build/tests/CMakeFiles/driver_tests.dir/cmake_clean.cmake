file(REMOVE_RECURSE
  "CMakeFiles/driver_tests.dir/driver/CompilerTest.cpp.o"
  "CMakeFiles/driver_tests.dir/driver/CompilerTest.cpp.o.d"
  "CMakeFiles/driver_tests.dir/driver/RandomSweepTest.cpp.o"
  "CMakeFiles/driver_tests.dir/driver/RandomSweepTest.cpp.o.d"
  "CMakeFiles/driver_tests.dir/driver/WorkMetricsTest.cpp.o"
  "CMakeFiles/driver_tests.dir/driver/WorkMetricsTest.cpp.o.d"
  "driver_tests"
  "driver_tests.pdb"
  "driver_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/driver_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
