file(REMOVE_RECURSE
  "CMakeFiles/parallel_tests.dir/parallel/CostModelTest.cpp.o"
  "CMakeFiles/parallel_tests.dir/parallel/CostModelTest.cpp.o.d"
  "CMakeFiles/parallel_tests.dir/parallel/JobTest.cpp.o"
  "CMakeFiles/parallel_tests.dir/parallel/JobTest.cpp.o.d"
  "CMakeFiles/parallel_tests.dir/parallel/SchedulerTest.cpp.o"
  "CMakeFiles/parallel_tests.dir/parallel/SchedulerTest.cpp.o.d"
  "CMakeFiles/parallel_tests.dir/parallel/SimRunnerTest.cpp.o"
  "CMakeFiles/parallel_tests.dir/parallel/SimRunnerTest.cpp.o.d"
  "CMakeFiles/parallel_tests.dir/parallel/ThreadRunnerTest.cpp.o"
  "CMakeFiles/parallel_tests.dir/parallel/ThreadRunnerTest.cpp.o.d"
  "parallel_tests"
  "parallel_tests.pdb"
  "parallel_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
