file(REMOVE_RECURSE
  "CMakeFiles/opt_tests.dir/opt/DependenceTest.cpp.o"
  "CMakeFiles/opt_tests.dir/opt/DependenceTest.cpp.o.d"
  "CMakeFiles/opt_tests.dir/opt/LICMTest.cpp.o"
  "CMakeFiles/opt_tests.dir/opt/LICMTest.cpp.o.d"
  "CMakeFiles/opt_tests.dir/opt/LivenessTest.cpp.o"
  "CMakeFiles/opt_tests.dir/opt/LivenessTest.cpp.o.d"
  "CMakeFiles/opt_tests.dir/opt/LocalOptTest.cpp.o"
  "CMakeFiles/opt_tests.dir/opt/LocalOptTest.cpp.o.d"
  "CMakeFiles/opt_tests.dir/opt/LoopInfoTest.cpp.o"
  "CMakeFiles/opt_tests.dir/opt/LoopInfoTest.cpp.o.d"
  "CMakeFiles/opt_tests.dir/opt/ReachingDefsTest.cpp.o"
  "CMakeFiles/opt_tests.dir/opt/ReachingDefsTest.cpp.o.d"
  "opt_tests"
  "opt_tests.pdb"
  "opt_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opt_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
