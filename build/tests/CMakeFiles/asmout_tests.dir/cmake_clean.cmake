file(REMOVE_RECURSE
  "CMakeFiles/asmout_tests.dir/asmout/AssemblyTest.cpp.o"
  "CMakeFiles/asmout_tests.dir/asmout/AssemblyTest.cpp.o.d"
  "CMakeFiles/asmout_tests.dir/asmout/DownloadModuleTest.cpp.o"
  "CMakeFiles/asmout_tests.dir/asmout/DownloadModuleTest.cpp.o.d"
  "asmout_tests"
  "asmout_tests.pdb"
  "asmout_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asmout_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
