# Empty dependencies file for asmout_tests.
# This may be replaced when dependencies are built.
