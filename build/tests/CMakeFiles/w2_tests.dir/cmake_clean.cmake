file(REMOVE_RECURSE
  "CMakeFiles/w2_tests.dir/w2/ASTPrinterTest.cpp.o"
  "CMakeFiles/w2_tests.dir/w2/ASTPrinterTest.cpp.o.d"
  "CMakeFiles/w2_tests.dir/w2/AstTest.cpp.o"
  "CMakeFiles/w2_tests.dir/w2/AstTest.cpp.o.d"
  "CMakeFiles/w2_tests.dir/w2/InlinerTest.cpp.o"
  "CMakeFiles/w2_tests.dir/w2/InlinerTest.cpp.o.d"
  "CMakeFiles/w2_tests.dir/w2/LexerTest.cpp.o"
  "CMakeFiles/w2_tests.dir/w2/LexerTest.cpp.o.d"
  "CMakeFiles/w2_tests.dir/w2/ParserTest.cpp.o"
  "CMakeFiles/w2_tests.dir/w2/ParserTest.cpp.o.d"
  "CMakeFiles/w2_tests.dir/w2/SemaTest.cpp.o"
  "CMakeFiles/w2_tests.dir/w2/SemaTest.cpp.o.d"
  "w2_tests"
  "w2_tests.pdb"
  "w2_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/w2_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
