# Empty compiler generated dependencies file for w2_tests.
# This may be replaced when dependencies are built.
