file(REMOVE_RECURSE
  "CMakeFiles/support_tests.dir/support/BitSetTest.cpp.o"
  "CMakeFiles/support_tests.dir/support/BitSetTest.cpp.o.d"
  "CMakeFiles/support_tests.dir/support/CastingTest.cpp.o"
  "CMakeFiles/support_tests.dir/support/CastingTest.cpp.o.d"
  "CMakeFiles/support_tests.dir/support/DiagnosticsTest.cpp.o"
  "CMakeFiles/support_tests.dir/support/DiagnosticsTest.cpp.o.d"
  "CMakeFiles/support_tests.dir/support/ErrorOrTest.cpp.o"
  "CMakeFiles/support_tests.dir/support/ErrorOrTest.cpp.o.d"
  "CMakeFiles/support_tests.dir/support/PRNGTest.cpp.o"
  "CMakeFiles/support_tests.dir/support/PRNGTest.cpp.o.d"
  "CMakeFiles/support_tests.dir/support/StatsTest.cpp.o"
  "CMakeFiles/support_tests.dir/support/StatsTest.cpp.o.d"
  "CMakeFiles/support_tests.dir/support/StringUtilsTest.cpp.o"
  "CMakeFiles/support_tests.dir/support/StringUtilsTest.cpp.o.d"
  "CMakeFiles/support_tests.dir/support/TextTableTest.cpp.o"
  "CMakeFiles/support_tests.dir/support/TextTableTest.cpp.o.d"
  "support_tests"
  "support_tests.pdb"
  "support_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/support_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
