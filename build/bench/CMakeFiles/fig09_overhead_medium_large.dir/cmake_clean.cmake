file(REMOVE_RECURSE
  "CMakeFiles/fig09_overhead_medium_large.dir/fig09_overhead_medium_large.cpp.o"
  "CMakeFiles/fig09_overhead_medium_large.dir/fig09_overhead_medium_large.cpp.o.d"
  "fig09_overhead_medium_large"
  "fig09_overhead_medium_large.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_overhead_medium_large.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
