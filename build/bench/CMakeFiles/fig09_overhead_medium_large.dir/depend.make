# Empty dependencies file for fig09_overhead_medium_large.
# This may be replaced when dependencies are built.
