file(REMOVE_RECURSE
  "CMakeFiles/fig05_times_fhuge.dir/fig05_times_fhuge.cpp.o"
  "CMakeFiles/fig05_times_fhuge.dir/fig05_times_fhuge.cpp.o.d"
  "fig05_times_fhuge"
  "fig05_times_fhuge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_times_fhuge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
