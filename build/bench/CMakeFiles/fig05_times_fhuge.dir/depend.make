# Empty dependencies file for fig05_times_fhuge.
# This may be replaced when dependencies are built.
