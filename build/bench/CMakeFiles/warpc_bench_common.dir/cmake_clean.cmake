file(REMOVE_RECURSE
  "CMakeFiles/warpc_bench_common.dir/FigureCommon.cpp.o"
  "CMakeFiles/warpc_bench_common.dir/FigureCommon.cpp.o.d"
  "libwarpc_bench_common.a"
  "libwarpc_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warpc_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
