# Empty compiler generated dependencies file for warpc_bench_common.
# This may be replaced when dependencies are built.
