file(REMOVE_RECURSE
  "libwarpc_bench_common.a"
)
