# Empty compiler generated dependencies file for fig12_times_fsmall.
# This may be replaced when dependencies are built.
