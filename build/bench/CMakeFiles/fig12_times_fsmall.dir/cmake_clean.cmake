file(REMOVE_RECURSE
  "CMakeFiles/fig12_times_fsmall.dir/fig12_times_fsmall.cpp.o"
  "CMakeFiles/fig12_times_fsmall.dir/fig12_times_fsmall.cpp.o.d"
  "fig12_times_fsmall"
  "fig12_times_fsmall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_times_fsmall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
