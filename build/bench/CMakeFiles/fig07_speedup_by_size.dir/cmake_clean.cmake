file(REMOVE_RECURSE
  "CMakeFiles/fig07_speedup_by_size.dir/fig07_speedup_by_size.cpp.o"
  "CMakeFiles/fig07_speedup_by_size.dir/fig07_speedup_by_size.cpp.o.d"
  "fig07_speedup_by_size"
  "fig07_speedup_by_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_speedup_by_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
