# Empty dependencies file for fig07_speedup_by_size.
# This may be replaced when dependencies are built.
