# Empty dependencies file for fig10_overhead_huge.
# This may be replaced when dependencies are built.
