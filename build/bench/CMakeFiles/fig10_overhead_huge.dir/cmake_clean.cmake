file(REMOVE_RECURSE
  "CMakeFiles/fig10_overhead_huge.dir/fig10_overhead_huge.cpp.o"
  "CMakeFiles/fig10_overhead_huge.dir/fig10_overhead_huge.cpp.o.d"
  "fig10_overhead_huge"
  "fig10_overhead_huge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_overhead_huge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
