file(REMOVE_RECURSE
  "CMakeFiles/real_threads_speedup.dir/real_threads_speedup.cpp.o"
  "CMakeFiles/real_threads_speedup.dir/real_threads_speedup.cpp.o.d"
  "real_threads_speedup"
  "real_threads_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/real_threads_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
