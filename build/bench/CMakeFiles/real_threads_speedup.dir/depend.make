# Empty dependencies file for real_threads_speedup.
# This may be replaced when dependencies are built.
