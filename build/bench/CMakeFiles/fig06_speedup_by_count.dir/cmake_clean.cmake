file(REMOVE_RECURSE
  "CMakeFiles/fig06_speedup_by_count.dir/fig06_speedup_by_count.cpp.o"
  "CMakeFiles/fig06_speedup_by_count.dir/fig06_speedup_by_count.cpp.o.d"
  "fig06_speedup_by_count"
  "fig06_speedup_by_count.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_speedup_by_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
