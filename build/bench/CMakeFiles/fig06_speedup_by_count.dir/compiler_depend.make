# Empty compiler generated dependencies file for fig06_speedup_by_count.
# This may be replaced when dependencies are built.
