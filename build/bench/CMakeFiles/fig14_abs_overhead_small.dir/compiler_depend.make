# Empty compiler generated dependencies file for fig14_abs_overhead_small.
# This may be replaced when dependencies are built.
