file(REMOVE_RECURSE
  "CMakeFiles/fig13_times_fmedium.dir/fig13_times_fmedium.cpp.o"
  "CMakeFiles/fig13_times_fmedium.dir/fig13_times_fmedium.cpp.o.d"
  "fig13_times_fmedium"
  "fig13_times_fmedium.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_times_fmedium.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
