# Empty dependencies file for fig13_times_fmedium.
# This may be replaced when dependencies are built.
