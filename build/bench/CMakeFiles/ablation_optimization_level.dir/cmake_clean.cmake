file(REMOVE_RECURSE
  "CMakeFiles/ablation_optimization_level.dir/ablation_optimization_level.cpp.o"
  "CMakeFiles/ablation_optimization_level.dir/ablation_optimization_level.cpp.o.d"
  "ablation_optimization_level"
  "ablation_optimization_level.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_optimization_level.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
