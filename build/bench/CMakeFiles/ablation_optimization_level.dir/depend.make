# Empty dependencies file for ablation_optimization_level.
# This may be replaced when dependencies are built.
