file(REMOVE_RECURSE
  "CMakeFiles/ablation_overhead_sources.dir/ablation_overhead_sources.cpp.o"
  "CMakeFiles/ablation_overhead_sources.dir/ablation_overhead_sources.cpp.o.d"
  "ablation_overhead_sources"
  "ablation_overhead_sources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_overhead_sources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
