file(REMOVE_RECURSE
  "CMakeFiles/fig03_times_ftiny.dir/fig03_times_ftiny.cpp.o"
  "CMakeFiles/fig03_times_ftiny.dir/fig03_times_ftiny.cpp.o.d"
  "fig03_times_ftiny"
  "fig03_times_ftiny.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_times_ftiny.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
