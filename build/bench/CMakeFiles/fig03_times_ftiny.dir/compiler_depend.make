# Empty compiler generated dependencies file for fig03_times_ftiny.
# This may be replaced when dependencies are built.
