# Empty dependencies file for fig08_overhead_small.
# This may be replaced when dependencies are built.
