file(REMOVE_RECURSE
  "CMakeFiles/fig08_overhead_small.dir/fig08_overhead_small.cpp.o"
  "CMakeFiles/fig08_overhead_small.dir/fig08_overhead_small.cpp.o.d"
  "fig08_overhead_small"
  "fig08_overhead_small.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_overhead_small.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
