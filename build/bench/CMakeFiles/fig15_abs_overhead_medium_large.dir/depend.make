# Empty dependencies file for fig15_abs_overhead_medium_large.
# This may be replaced when dependencies are built.
