file(REMOVE_RECURSE
  "CMakeFiles/fig15_abs_overhead_medium_large.dir/fig15_abs_overhead_medium_large.cpp.o"
  "CMakeFiles/fig15_abs_overhead_medium_large.dir/fig15_abs_overhead_medium_large.cpp.o.d"
  "fig15_abs_overhead_medium_large"
  "fig15_abs_overhead_medium_large.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_abs_overhead_medium_large.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
