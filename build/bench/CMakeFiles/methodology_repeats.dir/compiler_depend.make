# Empty compiler generated dependencies file for methodology_repeats.
# This may be replaced when dependencies are built.
