file(REMOVE_RECURSE
  "CMakeFiles/methodology_repeats.dir/methodology_repeats.cpp.o"
  "CMakeFiles/methodology_repeats.dir/methodology_repeats.cpp.o.d"
  "methodology_repeats"
  "methodology_repeats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/methodology_repeats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
