# Empty compiler generated dependencies file for fig16_abs_overhead_huge.
# This may be replaced when dependencies are built.
