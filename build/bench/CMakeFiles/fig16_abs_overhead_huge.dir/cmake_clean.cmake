file(REMOVE_RECURSE
  "CMakeFiles/fig16_abs_overhead_huge.dir/fig16_abs_overhead_huge.cpp.o"
  "CMakeFiles/fig16_abs_overhead_huge.dir/fig16_abs_overhead_huge.cpp.o.d"
  "fig16_abs_overhead_huge"
  "fig16_abs_overhead_huge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_abs_overhead_huge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
