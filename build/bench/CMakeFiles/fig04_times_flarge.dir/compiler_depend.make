# Empty compiler generated dependencies file for fig04_times_flarge.
# This may be replaced when dependencies are built.
