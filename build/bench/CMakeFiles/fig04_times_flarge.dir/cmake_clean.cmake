file(REMOVE_RECURSE
  "CMakeFiles/fig04_times_flarge.dir/fig04_times_flarge.cpp.o"
  "CMakeFiles/fig04_times_flarge.dir/fig04_times_flarge.cpp.o.d"
  "fig04_times_flarge"
  "fig04_times_flarge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_times_flarge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
