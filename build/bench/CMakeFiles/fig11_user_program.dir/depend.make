# Empty dependencies file for fig11_user_program.
# This may be replaced when dependencies are built.
