file(REMOVE_RECURSE
  "CMakeFiles/fig11_user_program.dir/fig11_user_program.cpp.o"
  "CMakeFiles/fig11_user_program.dir/fig11_user_program.cpp.o.d"
  "fig11_user_program"
  "fig11_user_program.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_user_program.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
