//===- quickstart.cpp - warpc quickstart ---------------------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
// Quickstart: compile a small Warp module — the program "S" of the
// paper's Figure 1 (section 1 with one function, section 2 with three) —
// sequentially and with the parallel compiler, and poke at the results.
//
//   $ ./quickstart
//
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"
#include "parallel/ThreadRunner.h"
#include "workload/Generator.h"

#include <cstdio>

using namespace warpc;

int main() {
  // 1. A W2 module: you would normally read this from a .w2 file.
  std::string Source = workload::makeFigure1Program();
  std::printf("Compiling module (first lines):\n");
  size_t Shown = 0, Pos = 0;
  while (Shown < 6 && Pos < Source.size()) {
    size_t End = Source.find('\n', Pos);
    std::printf("  | %s\n", Source.substr(Pos, End - Pos).c_str());
    Pos = End + 1;
    ++Shown;
  }
  std::printf("  | ...\n\n");

  codegen::MachineModel MM = codegen::MachineModel::warpCell();

  // 2. Phase 1 alone: what the parallel compiler's master process runs to
  // set up the compilation. Errors would abort here.
  driver::ParseResult Parsed = driver::parseAndCheck(Source);
  if (!Parsed.succeeded()) {
    std::printf("compilation aborted:\n%s", Parsed.Diags.str().c_str());
    return 1;
  }
  std::printf("parse ok: %zu sections, %zu functions, %u source lines\n",
              Parsed.Module->numSections(), Parsed.Module->numFunctions(),
              Parsed.Metrics.SourceLines);

  // 3. The sequential compiler (the paper's baseline).
  driver::ModuleResult Seq = driver::compileModuleSequential(Source, MM);
  std::printf("sequential compile: %s, download module %llu bytes\n",
              Seq.Succeeded ? "ok" : "FAILED",
              static_cast<unsigned long long>(Seq.Image.byteSize()));

  // 4. The parallel compiler with four function-master workers. The
  // result is bit-identical.
  parallel::ThreadRunResult Par =
      parallel::compileModuleParallel(Source, MM, 4);
  std::printf("parallel compile:   %s with %u workers, image %s\n\n",
              Par.Module.Succeeded ? "ok" : "FAILED", Par.WorkersUsed,
              Par.Module.Image.Image == Seq.Image.Image
                  ? "bit-identical to sequential"
                  : "DIFFERS (bug!)");

  // 5. Look at one compiled function: scheduled Warp assembly.
  const driver::FunctionResult &F = Seq.Functions.front();
  std::printf("function '%s' (section '%s'): %llu instruction words, "
              "%u/%u int/float registers, %u loop(s) software-pipelined\n",
              F.FunctionName.c_str(), F.SectionName.c_str(),
              static_cast<unsigned long long>(F.Program.CodeWords),
              F.Program.IntRegsUsed, F.Program.FloatRegsUsed,
              F.LoopsPipelined);
  std::printf("listing (first lines):\n");
  Shown = 0;
  Pos = 0;
  const std::string &Listing = F.Program.Listing;
  while (Shown < 10 && Pos < Listing.size()) {
    size_t End = Listing.find('\n', Pos);
    std::printf("  %s\n", Listing.substr(Pos, End - Pos).c_str());
    Pos = End + 1;
    ++Shown;
  }
  std::printf("  ...\n");
  return 0;
}
