//===- systolic_pipeline.cpp - Two cells computing through channels -------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
// "Due to its high communication bandwidth, Warp is a good host for
// pipelined computations where different phases of the computation are
// mapped onto different processors" (Section 3). This example compiles a
// two-function section — a smoothing stage and a scaling stage — and
// executes them as a systolic pipeline using the IR interpreter: stage
// one's Y output feeds stage two's X input.
//
//   $ ./systolic_pipeline
//
//===----------------------------------------------------------------------===//

#include "ir/IRBuilder.h"
#include "ir/Interpreter.h"
#include "opt/LocalOpt.h"
#include "w2/Lexer.h"
#include "w2/Parser.h"
#include "w2/Sema.h"

#include <cstdio>

using namespace warpc;
using namespace warpc::ir;

int main() {
  const std::string Source = R"(module pipeline;
section stages cells 2 {
  function smooth(n: int) {
    var prev: float = 0.0;
    var cur: float = 0.0;
    receive(X, prev);
    send(Y, prev);
    for i = 1 to 15 {
      receive(X, cur);
      send(Y, (prev + cur) / 2.0);
      prev = cur;
    }
  }
  function scale(gain: float, n: int) {
    var v: float = 0.0;
    for i = 0 to 15 {
      receive(X, v);
      send(Y, v * gain);
    }
  }
}
)";

  DiagnosticEngine Diags;
  w2::Lexer Lexer(Source, Diags);
  w2::Parser Parser(Lexer.lexAll(), Diags);
  auto Module = Parser.parseModule();
  w2::Sema Sema(Diags);
  if (Diags.hasErrors() || !Sema.checkModule(*Module)) {
    std::printf("%s", Diags.str().c_str());
    return 1;
  }

  const w2::SectionDecl *Section = Module->getSection(0);
  auto Smooth = lowerFunction(*Section->getFunction(0));
  auto Scale = lowerFunction(*Section->getFunction(1));
  opt::runLocalOpt(*Smooth);
  opt::runLocalOpt(*Scale);

  // A noisy ramp enters cell 1.
  std::vector<double> Input;
  for (int I = 0; I != 16; ++I)
    Input.push_back(I + ((I % 2) ? 0.5 : -0.5));

  // Cell 1: smoothing. Its Y output is the systolic link to cell 2.
  ExecInput In1;
  In1.Args.push_back(ExecInput::Arg::ofInt(16));
  In1.XInput = Input;
  ExecResult Stage1 = interpret(*Smooth, In1);
  if (!Stage1.Completed) {
    std::printf("stage 1 faulted: %s\n", Stage1.Fault.c_str());
    return 1;
  }

  // Cell 2: scaling, fed by the link.
  ExecInput In2;
  In2.Args.push_back(ExecInput::Arg::ofFloat(10.0));
  In2.Args.push_back(ExecInput::Arg::ofInt(16));
  In2.XInput = Stage1.YOutput;
  ExecResult Stage2 = interpret(*Scale, In2);
  if (!Stage2.Completed) {
    std::printf("stage 2 faulted: %s\n", Stage2.Fault.c_str());
    return 1;
  }

  std::printf("%-8s %-10s %-10s\n", "input", "smoothed", "scaled x10");
  for (size_t I = 0; I != Input.size(); ++I)
    std::printf("%-8.2f %-10.2f %-10.2f\n", Input[I], Stage1.YOutput[I],
                Stage2.YOutput[I]);
  std::printf("\n%zu values flowed through the two-cell pipeline "
              "(%llu + %llu interpreted instructions).\n",
              Stage2.YOutput.size(),
              static_cast<unsigned long long>(Stage1.StepsExecuted),
              static_cast<unsigned long long>(Stage2.StepsExecuted));
  return 0;
}
