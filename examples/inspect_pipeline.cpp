//===- inspect_pipeline.cpp - Walk the compiler phase by phase -----------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
// Walks one small W2 function through all four compiler phases and dumps
// every intermediate artifact: tokens, AST statistics, flowgraph IR
// before and after optimization, the software-pipelined schedule, and
// the final Warp assembly listing.
//
//   $ ./inspect_pipeline
//
//===----------------------------------------------------------------------===//

#include "asmout/Assembly.h"
#include "codegen/CodeGen.h"
#include "ir/IRBuilder.h"
#include "opt/Dependence.h"
#include "opt/LocalOpt.h"
#include "opt/LoopInfo.h"
#include "w2/Lexer.h"
#include "w2/Parser.h"
#include "w2/Sema.h"

#include <cstdio>

using namespace warpc;

int main() {
  const std::string Source = R"(module demo;
section filter cells 4 {
  function fir(coef: float[16], gain: float): float {
    var acc: float = 0.0;
    var win: float[16];
    receive(X, win[0]);
    for i = 0 to 15 {
      acc = acc + win[i] * coef[i];
    }
    send(Y, acc * gain);
    return acc;
  }
}
)";
  std::printf("=== source ===\n%s\n", Source.c_str());

  // Phase 1a: lexing.
  DiagnosticEngine Diags;
  w2::Lexer Lexer(Source, Diags);
  auto Tokens = Lexer.lexAll();
  std::printf("=== phase 1: %llu tokens ===\n",
              static_cast<unsigned long long>(Lexer.tokenCount()));

  // Phase 1b: parsing.
  w2::Parser Parser(std::move(Tokens), Diags);
  auto Module = Parser.parseModule();

  // Phase 1c: semantic checking (needs the whole section).
  w2::Sema Sema(Diags);
  Sema.checkModule(*Module);
  if (Diags.hasErrors()) {
    std::printf("%s", Diags.str().c_str());
    return 1;
  }
  const w2::FunctionDecl *F = Module->getSection(0)->getFunction(0);
  std::printf("function '%s': %llu AST nodes, loop depth %u\n\n",
              F->getName().c_str(),
              static_cast<unsigned long long>(w2::countAstNodes(*F)),
              w2::maxLoopDepth(*F));

  // Phase 2: flowgraph construction and optimization.
  auto IRF = ir::lowerFunction(*F);
  std::printf("=== phase 2: flowgraph (before optimization) ===\n%s\n",
              ir::printFunction(*IRF).c_str());
  opt::OptStats Stats = opt::runLocalOpt(*IRF);
  std::printf("optimizer: folded %llu, simplified %llu, cse %llu, copies "
              "%llu, dead %llu (in %llu sweeps)\n",
              static_cast<unsigned long long>(Stats.ConstFolded),
              static_cast<unsigned long long>(Stats.Simplified),
              static_cast<unsigned long long>(Stats.CSEEliminated),
              static_cast<unsigned long long>(Stats.CopiesPropagated),
              static_cast<unsigned long long>(Stats.DeadRemoved),
              static_cast<unsigned long long>(Stats.Iterations));
  std::printf("\n=== phase 2: flowgraph (after optimization) ===\n%s\n",
              ir::printFunction(*IRF).c_str());

  // Phase 2c: loop and dependence analysis.
  opt::LoopInfo LI = opt::LoopInfo::compute(*IRF);
  for (const opt::Loop &L : LI.loops()) {
    if (!L.isSimpleInnerLoop())
      continue;
    opt::LoopDeps Deps = opt::analyzeLoopDependences(*IRF, L);
    std::printf("loop at bb%u: %zu dependence edges, pipeline-safe=%s, "
                "step=%lld\n",
                L.Header, Deps.Edges.size(),
                Deps.PipelineSafe ? "yes" : "no",
                static_cast<long long>(Deps.Step));
  }

  // Phase 3: scheduling + register allocation.
  codegen::MachineModel MM = codegen::MachineModel::warpCell();
  codegen::MachineFunction MF = codegen::generateCode(*IRF, MM);
  for (const auto &[Body, Sched] : MF.PipelinedLoops)
    std::printf("software pipelined bb%u: ii=%u (resmii=%u recmii=%u), "
                "%u stages\n",
                Body, Sched.II, Sched.ResMII, Sched.RecMII, Sched.Stages);
  std::printf("registers: %u int + %u float, %u spills\n\n",
              MF.RA.IntRegsUsed, MF.RA.FloatRegsUsed, MF.RA.Spills);

  // Phase 4: assembly.
  asmout::CellProgram Program = asmout::assembleFunction(*IRF, MF);
  std::printf("=== phase 4: Warp assembly (%llu words, %zu image bytes) "
              "===\n%s",
              static_cast<unsigned long long>(Program.CodeWords),
              Program.Image.size(), Program.Listing.c_str());
  return 0;
}
