//===- user_program.cpp - The Section 4.3 user program -------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
// Compiles the paper's mechanical-engineering application (three
// sections, nine functions: per section one ~300-line function and two
// small ones) two ways:
//
//  * for real, with thread-backed function masters on this machine, and
//  * on the simulated 1989 host system, reproducing the Figure 11
//    speedups including the superlinear 2-processor result.
//
//   $ ./user_program
//
//===----------------------------------------------------------------------===//

#include "parallel/SimRunner.h"
#include "parallel/ThreadRunner.h"
#include "support/StringUtils.h"
#include "support/TextTable.h"
#include "workload/Generator.h"

#include <cstdio>

using namespace warpc;
using namespace warpc::parallel;

int main() {
  codegen::MachineModel MM = codegen::MachineModel::warpCell();
  std::string Source = workload::makeUserProgram();

  // --- Real compilation with nine function masters.
  ThreadRunResult Real = compileModuleParallel(Source, MM, 9);
  if (!Real.Module.Succeeded) {
    std::printf("compilation failed:\n%s", Real.Module.Diags.str().c_str());
    return 1;
  }
  std::printf("compiled the user program with %u function-master threads "
              "in %.1f ms\n",
              Real.WorkersUsed, Real.ElapsedSec * 1e3);
  std::printf("sections and functions:\n");
  for (const auto &Section : Real.Module.Image.Sections) {
    std::printf("  section %-8s (%u cells):", Section.SectionName.c_str(),
                Section.NumCells);
    for (const auto &P : Section.Programs)
      std::printf(" %s[%llu words]", P.FunctionName.c_str(),
                  static_cast<unsigned long long>(P.CodeWords));
    std::printf("\n");
  }

  // --- The same program on the 1989 network of workstations.
  cluster::HostConfig Host = cluster::HostConfig::sunNetwork1989();
  CostModel Model = CostModel::lisp1989();
  auto Job = buildJob(Source, MM);
  if (!Job)
    return 1;
  SeqStats Seq = simulateSequential(*Job, Host, Model);
  std::printf("\nsimulated 1989 sequential compilation: %.0f s "
              "(%.1f minutes)\n",
              Seq.ElapsedSec, Seq.ElapsedSec / 60);

  TextTable Table({"processors", "elapsed [min]", "speedup"});
  for (unsigned Procs : {2u, 3u, 5u, 9u}) {
    Assignment Assign = Procs >= Job->numFunctions()
                            ? scheduleFCFS(*Job, Procs)
                            : scheduleBalanced(*Job, Procs);
    ParStats Par = simulateParallel(*Job, Assign, Host, Model);
    Table.addRow(std::to_string(Procs),
                 {Par.ElapsedSec / 60, Seq.ElapsedSec / Par.ElapsedSec}, 2);
  }
  std::printf("%s", Table.str().c_str());
  std::printf("\nthe 2-processor speedup exceeds 2: the sequential "
              "compiler pays more GC and swap than both masters "
              "combined (paper Section 4.3).\n");
  return 0;
}
