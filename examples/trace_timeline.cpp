//===- trace_timeline.cpp - Timeline of a parallel compilation -----------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
// Prints the event timeline of a simulated parallel compilation of the
// Figure 1 program S — the textual analogue of the paper's Figure 2
// ("Call graph for compilation of program S"), showing the master fork
// the section masters, the section masters fork their function masters,
// and the joins back up the hierarchy.
//
//   $ ./trace_timeline
//
//===----------------------------------------------------------------------===//

#include "obs/Event.h"
#include "obs/TraceRecorder.h"
#include "parallel/SimRunner.h"
#include "workload/Generator.h"

#include <cstdio>

using namespace warpc;
using namespace warpc::parallel;

int main() {
  codegen::MachineModel MM = codegen::MachineModel::warpCell();
  cluster::HostConfig Host = cluster::HostConfig::sunNetwork1989();
  CostModel Model = CostModel::lisp1989();

  auto Job = buildJob(workload::makeFigure1Program(), MM);
  if (!Job)
    return 1;

  std::printf("=== Simulated timeline: parallel compilation of program S "
              "(Figure 2) ===\n\n");
  obs::TraceRecorder Rec(obs::ClockDomain::Simulated);
  Assignment Assign = scheduleFCFS(*Job, Host.NumWorkstations);
  ParStats Par = simulateParallel(*Job, Assign, Host, Model, &Rec);
  obs::TraceSession Session = Rec.finish();

  for (const obs::SpanEvent &E : Session.Events)
    std::printf("%s\n", obs::renderEvent(Session, E).c_str());
  std::printf("[%8.1fs] compilation complete (elapsed %.1f min)\n",
              Par.ElapsedSec, Par.ElapsedSec / 60);
  return 0;
}
