//===- cluster_playground.cpp - Host-architecture exploration ------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
// "This compiler has also given us an opportunity to evaluate the
// architecture of its underlying host system" (Section 5). This example
// sweeps host parameters — number of free workstations, Ethernet
// bandwidth, workstation memory — and shows how the parallel speedup of
// an 8 x f_large compilation responds.
//
//   $ ./cluster_playground
//
//===----------------------------------------------------------------------===//

#include "parallel/SimRunner.h"
#include "support/TextTable.h"
#include "workload/Generator.h"

#include <cstdio>

using namespace warpc;
using namespace warpc::parallel;

namespace {

double speedupOn(const CompilationJob &Job, const cluster::HostConfig &Host,
                 const CostModel &Model) {
  SeqStats Seq = simulateSequential(Job, Host, Model);
  Assignment Assign = scheduleFCFS(Job, Host.NumWorkstations);
  ParStats Par = simulateParallel(Job, Assign, Host, Model);
  return Seq.ElapsedSec / Par.ElapsedSec;
}

} // namespace

int main() {
  codegen::MachineModel MM = codegen::MachineModel::warpCell();
  CostModel Model = CostModel::lisp1989();
  auto Job = buildJob(
      workload::makeTestModule(workload::FunctionSize::Large, 8), MM);
  if (!Job)
    return 1;

  std::printf("=== Host-architecture playground: 8 x f_large ===\n\n");

  {
    TextTable Table({"free workstations", "speedup"});
    for (unsigned Ws : {2u, 4u, 8u, 14u}) {
      cluster::HostConfig Host = cluster::HostConfig::sunNetwork1989();
      Host.NumWorkstations = Ws;
      Table.addRow(std::to_string(Ws), {speedupOn(*Job, Host, Model)}, 2);
    }
    std::printf("%s\n", Table.str().c_str());
  }
  std::printf("\"on the order of 8 to 16 processors can be used "
              "comfortably\" (Section 6)\n\n");

  {
    TextTable Table({"ethernet [KB/s]", "speedup"});
    for (double KBps : {250.0, 500.0, 1000.0, 4000.0}) {
      cluster::HostConfig Host = cluster::HostConfig::sunNetwork1989();
      Host.EthernetKBps = KBps;
      Table.addRow(std::to_string(static_cast<int>(KBps)),
                   {speedupOn(*Job, Host, Model)}, 2);
    }
    std::printf("%s\n", Table.str().c_str());
  }
  std::printf("slow networks penalize the parallel compiler: every Lisp "
              "core image and every result file crosses the wire\n\n");

  {
    TextTable Table({"usable memory [MB]", "speedup"});
    for (double MB : {8.0, 9.2, 12.0, 24.0}) {
      cluster::HostConfig Host = cluster::HostConfig::sunNetwork1989();
      Host.UsableMemoryKB = MB * 1024;
      Table.addRow(std::to_string(static_cast<int>(MB)),
                   {speedupOn(*Job, Host, Model)}, 2);
    }
    std::printf("%s\n", Table.str().c_str());
  }
  std::printf("with plenty of memory the sequential baseline stops "
              "thrashing, so the measured speedup converges toward the "
              "pure compute ratio.\n");
  return 0;
}
