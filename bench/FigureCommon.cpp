//===- FigureCommon.cpp - Shared figure-bench harness -----------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "FigureCommon.h"

#include "support/StringUtils.h"
#include "support/TextTable.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>

using namespace warpc;
using namespace warpc::bench;
using namespace warpc::parallel;

//===----------------------------------------------------------------------===//
// Machine-readable companion output (BENCH_*.json)
//===----------------------------------------------------------------------===//

namespace {

struct BenchJsonSink {
  bool Enabled = false;
  std::string Path;
  json::Value Doc = json::Value::object();

  void flush() const {
    if (!Enabled)
      return;
    json::Value Out = Doc; // Doc's "rows" grows between flushes
    std::ofstream File(Path);
    if (!File) {
      std::fprintf(stderr, "warning: cannot write %s\n", Path.c_str());
      return;
    }
    File << Out.dump(1) << "\n";
  }
};

BenchJsonSink &sink() {
  static BenchJsonSink S;
  return S;
}

/// "Figure 6" -> "fig06", "Ablation fault tolerance" ->
/// "ablation_fault_tolerance": the BENCH_ file slug.
std::string figureSlug(const std::string &Figure) {
  std::string Lower;
  for (char C : Figure)
    Lower += static_cast<char>(std::tolower(static_cast<unsigned char>(C)));
  if (Lower.rfind("figure ", 0) == 0) {
    std::string Num = Lower.substr(7);
    if (Num.size() == 1)
      Num = "0" + Num;
    return "fig" + Num;
  }
  std::string Slug;
  for (char C : Lower)
    Slug += std::isalnum(static_cast<unsigned char>(C)) ? C : '_';
  return Slug;
}

} // namespace

bool bench::benchJsonEnabled() { return sink().Enabled; }

void bench::benchJsonRow(json::Value Row) {
  BenchJsonSink &S = sink();
  if (!S.Enabled)
    return;
  json::Value Rows = S.Doc.get("rows");
  Rows.push(std::move(Row));
  S.Doc.set("rows", std::move(Rows));
  S.flush();
}

RunPoint bench::runPoint(const Environment &Env, workload::FunctionSize Size,
                         unsigned N) {
  auto Job = buildJob(workload::makeTestModule(Size, N), Env.MM);
  if (!Job) {
    std::fprintf(stderr, "fatal: workload failed to compile: %s\n",
                 Job.getError().message().c_str());
    std::exit(1);
  }
  RunPoint Point;
  Point.NumFunctions = N;
  Point.Seq = simulateSequential(*Job, Env.Host, Env.Model);
  Assignment Assign = scheduleFCFS(*Job, Env.Host.NumWorkstations);
  Point.Par = simulateParallel(*Job, Assign, Env.Host, Env.Model);
  Point.Overheads = computeOverheads(Point.Seq, Point.Par, N);
  return Point;
}

std::vector<unsigned> bench::paperCounts() { return {1, 2, 4, 8}; }

std::vector<unsigned> bench::denseCounts() {
  return {1, 2, 3, 4, 5, 6, 7, 8};
}

void bench::printFigureHeader(const std::string &Figure,
                              const std::string &Title,
                              const std::string &PaperExpectation) {
  std::string Banner = "=== " + Figure + ": " + Title + " ===";
  std::printf("%s\n", Banner.c_str());
  std::printf("paper: %s\n\n", PaperExpectation.c_str());

  if (const char *Dir = std::getenv("WARPC_BENCH_JSON")) {
    BenchJsonSink &S = sink();
    S.Enabled = true;
    S.Path = std::string(Dir) + "/BENCH_" + figureSlug(Figure) + ".json";
    S.Doc = json::Value::object();
    S.Doc.set("schema", "warpc-bench-v1");
    S.Doc.set("figure", Figure);
    S.Doc.set("title", Title);
    S.Doc.set("paper", PaperExpectation);
    S.Doc.set("rows", json::Value::array());
    S.flush();
    std::printf("(also writing %s)\n\n", S.Path.c_str());
  }
}

void bench::printTimesFigure(const Environment &Env,
                             workload::FunctionSize Size,
                             const std::string &Figure,
                             const std::string &PaperExpectation) {
  printFigureHeader(Figure,
                    std::string("execution times for ") +
                        workload::sizeName(Size),
                    PaperExpectation);
  TextTable Table({"functions", "seq elapsed [s]", "seq cpu [s]",
                   "par elapsed [s]", "par cpu/proc [s]", "speedup"});
  for (unsigned N : paperCounts()) {
    RunPoint P = runPoint(Env, Size, N);
    Table.addRow(std::to_string(N),
                 {P.Seq.ElapsedSec, P.Seq.CpuSec, P.Par.ElapsedSec,
                  P.Par.perProcessorCpuSec(), P.speedup()},
                 2);
    json::Value Row = json::Value::object();
    Row.set("size", workload::sizeName(Size));
    Row.set("functions", static_cast<int64_t>(N));
    Row.set("seq_elapsed_sec", P.Seq.ElapsedSec);
    Row.set("seq_cpu_sec", P.Seq.CpuSec);
    Row.set("par_elapsed_sec", P.Par.ElapsedSec);
    Row.set("par_cpu_per_proc_sec", P.Par.perProcessorCpuSec());
    Row.set("speedup", P.speedup());
    benchJsonRow(std::move(Row));
  }
  std::printf("%s\n", Table.str().c_str());
}

void bench::printRelativeOverheadFigure(
    const Environment &Env, const std::vector<workload::FunctionSize> &Sizes,
    const std::string &Figure, const std::string &PaperExpectation) {
  printFigureHeader(Figure, "overheads as percentage of total time",
                    PaperExpectation);
  for (workload::FunctionSize Size : Sizes) {
    std::printf("-- %s --\n", workload::sizeName(Size));
    TextTable Table({"functions", "total overhead [%]",
                     "system overhead [%]", "par elapsed [s]"});
    for (unsigned N : denseCounts()) {
      RunPoint P = runPoint(Env, Size, N);
      Table.addRow(std::to_string(N),
                   {P.Overheads.relTotalPct(), P.Overheads.relSysPct(),
                    P.Par.ElapsedSec},
                   1);
      json::Value Row = json::Value::object();
      Row.set("size", workload::sizeName(Size));
      Row.set("functions", static_cast<int64_t>(N));
      Row.set("rel_total_pct", P.Overheads.relTotalPct());
      Row.set("rel_sys_pct", P.Overheads.relSysPct());
      Row.set("par_elapsed_sec", P.Par.ElapsedSec);
      benchJsonRow(std::move(Row));
    }
    std::printf("%s\n", Table.str().c_str());
  }
}

void bench::printAbsoluteOverheadFigure(
    const Environment &Env, const std::vector<workload::FunctionSize> &Sizes,
    const std::string &Figure, const std::string &PaperExpectation) {
  printFigureHeader(Figure, "absolute overhead", PaperExpectation);
  for (workload::FunctionSize Size : Sizes) {
    std::printf("-- %s --\n", workload::sizeName(Size));
    TextTable Table({"functions", "total overhead [s]",
                     "system overhead [s]", "impl overhead [s]"});
    for (unsigned N : denseCounts()) {
      RunPoint P = runPoint(Env, Size, N);
      Table.addRow(std::to_string(N),
                   {P.Overheads.TotalSec, P.Overheads.SysSec,
                    P.Overheads.ImplSec},
                   1);
      json::Value Row = json::Value::object();
      Row.set("size", workload::sizeName(Size));
      Row.set("functions", static_cast<int64_t>(N));
      Row.set("total_overhead_sec", P.Overheads.TotalSec);
      Row.set("sys_overhead_sec", P.Overheads.SysSec);
      Row.set("impl_overhead_sec", P.Overheads.ImplSec);
      benchJsonRow(std::move(Row));
    }
    std::printf("%s\n", Table.str().c_str());
  }
}
