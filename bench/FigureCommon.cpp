//===- FigureCommon.cpp - Shared figure-bench harness -----------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "FigureCommon.h"

#include "support/StringUtils.h"
#include "support/TextTable.h"

#include <cstdio>

using namespace warpc;
using namespace warpc::bench;
using namespace warpc::parallel;

RunPoint bench::runPoint(const Environment &Env, workload::FunctionSize Size,
                         unsigned N) {
  auto Job = buildJob(workload::makeTestModule(Size, N), Env.MM);
  if (!Job) {
    std::fprintf(stderr, "fatal: workload failed to compile: %s\n",
                 Job.getError().message().c_str());
    std::exit(1);
  }
  RunPoint Point;
  Point.NumFunctions = N;
  Point.Seq = simulateSequential(*Job, Env.Host, Env.Model);
  Assignment Assign = scheduleFCFS(*Job, Env.Host.NumWorkstations);
  Point.Par = simulateParallel(*Job, Assign, Env.Host, Env.Model);
  Point.Overheads = computeOverheads(Point.Seq, Point.Par, N);
  return Point;
}

std::vector<unsigned> bench::paperCounts() { return {1, 2, 4, 8}; }

std::vector<unsigned> bench::denseCounts() {
  return {1, 2, 3, 4, 5, 6, 7, 8};
}

void bench::printFigureHeader(const std::string &Figure,
                              const std::string &Title,
                              const std::string &PaperExpectation) {
  std::string Banner = "=== " + Figure + ": " + Title + " ===";
  std::printf("%s\n", Banner.c_str());
  std::printf("paper: %s\n\n", PaperExpectation.c_str());
}

void bench::printTimesFigure(const Environment &Env,
                             workload::FunctionSize Size,
                             const std::string &Figure,
                             const std::string &PaperExpectation) {
  printFigureHeader(Figure,
                    std::string("execution times for ") +
                        workload::sizeName(Size),
                    PaperExpectation);
  TextTable Table({"functions", "seq elapsed [s]", "seq cpu [s]",
                   "par elapsed [s]", "par cpu/proc [s]", "speedup"});
  for (unsigned N : paperCounts()) {
    RunPoint P = runPoint(Env, Size, N);
    Table.addRow(std::to_string(N),
                 {P.Seq.ElapsedSec, P.Seq.CpuSec, P.Par.ElapsedSec,
                  P.Par.perProcessorCpuSec(), P.speedup()},
                 2);
  }
  std::printf("%s\n", Table.str().c_str());
}

void bench::printRelativeOverheadFigure(
    const Environment &Env, const std::vector<workload::FunctionSize> &Sizes,
    const std::string &Figure, const std::string &PaperExpectation) {
  printFigureHeader(Figure, "overheads as percentage of total time",
                    PaperExpectation);
  for (workload::FunctionSize Size : Sizes) {
    std::printf("-- %s --\n", workload::sizeName(Size));
    TextTable Table({"functions", "total overhead [%]",
                     "system overhead [%]", "par elapsed [s]"});
    for (unsigned N : denseCounts()) {
      RunPoint P = runPoint(Env, Size, N);
      Table.addRow(std::to_string(N),
                   {P.Overheads.relTotalPct(), P.Overheads.relSysPct(),
                    P.Par.ElapsedSec},
                   1);
    }
    std::printf("%s\n", Table.str().c_str());
  }
}

void bench::printAbsoluteOverheadFigure(
    const Environment &Env, const std::vector<workload::FunctionSize> &Sizes,
    const std::string &Figure, const std::string &PaperExpectation) {
  printFigureHeader(Figure, "absolute overhead", PaperExpectation);
  for (workload::FunctionSize Size : Sizes) {
    std::printf("-- %s --\n", workload::sizeName(Size));
    TextTable Table({"functions", "total overhead [s]",
                     "system overhead [s]", "impl overhead [s]"});
    for (unsigned N : denseCounts()) {
      RunPoint P = runPoint(Env, Size, N);
      Table.addRow(std::to_string(N),
                   {P.Overheads.TotalSec, P.Overheads.SysSec,
                    P.Overheads.ImplSec},
                   1);
    }
    std::printf("%s\n", Table.str().c_str());
  }
}
