//===- ablation_fault_tolerance.cpp - Fault-tolerance overhead ablation --------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
// Section 5.2 names fault handling as the hard part of distributing the
// compiler over workstations. This ablation runs the f_large x 8
// experiment under increasingly hostile failure plans — crashed and
// rebooting hosts, a host that never returns, lost completion messages,
// a degraded slow host — and reports what the timeout/retry/reassignment
// machinery costs as a fraction of the parallel elapsed time.
//
//===----------------------------------------------------------------------===//

#include "FigureCommon.h"

#include "cluster/FaultPlan.h"
#include "driver/FaultPolicy.h"
#include "support/StringUtils.h"
#include "support/TextTable.h"

#include <cstdio>
#include <string>

using namespace warpc;
using namespace warpc::bench;
using namespace warpc::cluster;
using namespace warpc::parallel;

int main() {
  Environment Env;
  constexpr unsigned NumFns = 8; // k = 8, so ceil(k/3) = 3 crashed masters
  auto Job = buildJob(
      workload::makeTestModule(workload::FunctionSize::Large, NumFns),
      Env.MM);
  if (!Job) {
    std::fprintf(stderr, "fatal: %s\n", Job.getError().message().c_str());
    return 1;
  }
  Assignment Assign = scheduleFCFS(*Job, Env.Host.NumWorkstations);
  driver::FaultPolicy Policy;

  printFigureHeader(
      "Ablation fault tolerance",
      "fault tolerance under failure plans (f_large, 8 functions)",
      "Section 5.2: child processes and their host processors fail in "
      "practice; with master-side timeouts, bounded retries with "
      "reassignment and straggler speculation the compilation always "
      "completes, at a cost that should stay a modest fraction of the "
      "parallel elapsed time for realistic failure rates");

  ParStats Base = simulateParallel(*Job, Assign, Env.Host, Env.Model,
                                   nullptr, Policy);

  TextTable Table({"failure plan", "par elapsed [s]", "retry [s]",
                   "reassigned", "spec wins", "recompiles",
                   "fault overhead [%]"});
  Table.addRow({"none (baseline)", formatDouble(Base.ElapsedSec, 0), "0",
                "0", "0", "0", "-"});
  {
    json::Value Row = json::Value::object();
    Row.set("plan", "none (baseline)");
    Row.set("par_elapsed_sec", Base.ElapsedSec);
    Row.set("retry_sec", 0.0);
    Row.set("reassigned", static_cast<int64_t>(0));
    Row.set("spec_wins", static_cast<int64_t>(0));
    Row.set("recompiles", static_cast<int64_t>(0));
    Row.set("fault_overhead_pct", 0.0);
    benchJsonRow(std::move(Row));
  }

  auto Report = [&](const std::string &Name, const FaultPlan &Plan) {
    cluster::HostConfig Host = Env.Host;
    Host.Faults = Plan;
    ParStats Par =
        simulateParallel(*Job, Assign, Host, Env.Model, nullptr, Policy);
    double OverheadSec = Par.ElapsedSec - Base.ElapsedSec;
    Table.addRow({Name, formatDouble(Par.ElapsedSec, 0),
                  formatDouble(Par.RetriesSec, 0),
                  std::to_string(Par.FunctionsReassigned),
                  std::to_string(Par.SpeculativeWins),
                  std::to_string(Par.MasterRecompiles),
                  formatDouble(100.0 * OverheadSec / Par.ElapsedSec, 1)});
    json::Value Row = json::Value::object();
    Row.set("plan", Name);
    Row.set("par_elapsed_sec", Par.ElapsedSec);
    Row.set("retry_sec", Par.RetriesSec);
    Row.set("reassigned", static_cast<int64_t>(Par.FunctionsReassigned));
    Row.set("spec_wins", static_cast<int64_t>(Par.SpeculativeWins));
    Row.set("recompiles", static_cast<int64_t>(Par.MasterRecompiles));
    Row.set("fault_overhead_pct", 100.0 * OverheadSec / Par.ElapsedSec);
    benchJsonRow(std::move(Row));
    if (Par.FunctionsCompleted != NumFns)
      std::fprintf(stderr, "fatal: plan '%s' completed %u/%u functions\n",
                   Name.c_str(), Par.FunctionsCompleted, NumFns);
  };

  // Phase timeline for this job (clean run): parse ends ~770s, function
  // masters start ~775s, compiles run until ~2050-2750s, link at ~2780s.
  {
    FaultPlan P;
    P.hostMut(1).CrashAtSec = 120;
    P.hostMut(1).RebootAfterSec = 600;
    Report("crash + reboot during the parse (harmless)", P);
  }
  {
    FaultPlan P;
    P.hostMut(1).CrashAtSec = 1200;
    P.hostMut(1).RebootAfterSec = 600;
    Report("1 crash mid-compile", P);
  }
  {
    FaultPlan P;
    for (unsigned W = 1; W <= 3; ++W) {
      P.hostMut(W).CrashAtSec = 1200 + 300 * (W - 1);
      P.hostMut(W).RebootAfterSec = 600;
    }
    Report("3 crashes mid-compile (= ceil(k/3))", P);
  }
  {
    FaultPlan P;
    for (unsigned W = 1; W <= 3; ++W) {
      P.hostMut(W).CrashAtSec = 1200 + 300 * (W - 1);
      P.hostMut(W).RebootAfterSec = 600;
    }
    P.hostMut(4).CrashAtSec = 600; // down before fan-out, never reboots
    Report("3 crashes + 1 host never returns", P);
  }
  {
    FaultPlan P;
    P.MessageLossProb = 0.05;
    P.Seed = 1989;
    Report("5% message loss", P);
  }
  {
    FaultPlan P;
    P.MessageLossProb = 0.25;
    P.Seed = 1989;
    Report("25% message loss", P);
  }
  {
    FaultPlan P;
    P.hostMut(2).SlowdownFactor = 3.0;
    Report("1 slow host (x3)", P);
  }
  {
    FaultPlan P;
    for (unsigned W = 1; W <= 3; ++W) {
      P.hostMut(W).CrashAtSec = 1200 + 300 * (W - 1);
      P.hostMut(W).RebootAfterSec = 600;
    }
    P.hostMut(5).SlowdownFactor = 3.0;
    P.MessageLossProb = 0.05;
    P.Seed = 1989;
    Report("combined: 3 crashes + slow host + 5% loss", P);
  }
  std::printf("%s\n", Table.str().c_str());
  return 0;
}
