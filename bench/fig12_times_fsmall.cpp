//===- fig12_times_fsmall.cpp - Figure 12 reproduction ------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
// Figure 12 (appendix): execution times for f_small.
//
//===----------------------------------------------------------------------===//

#include "FigureCommon.h"

using namespace warpc;

int main() {
  bench::Environment Env;
  bench::printTimesFigure(
      Env, workload::FunctionSize::Small, "Figure 12",
      "continually better results for parallel compilation than f_tiny, "
      "with a modest speedup at eight functions");
  return 0;
}
