//===- micro_compiler.cpp - Compiler phase microbenchmarks ---------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
// google-benchmark microbenchmarks of the real compiler's phases on the
// benchmark workloads: lexing, parsing, semantic checking, lowering,
// optimization, software pipelining, and whole-module compilation.
//
//===----------------------------------------------------------------------===//

#include "codegen/CodeGen.h"
#include "driver/Compiler.h"
#include "ir/IRBuilder.h"
#include "opt/LocalOpt.h"
#include "w2/Lexer.h"
#include "w2/Parser.h"
#include "w2/Sema.h"
#include "workload/Generator.h"

#include <benchmark/benchmark.h>

using namespace warpc;

namespace {

workload::FunctionSize sizeFromIndex(int64_t Index) {
  return workload::AllSizes[Index];
}

std::string sourceFor(int64_t Index) {
  return workload::makeTestModule(sizeFromIndex(Index), 1);
}

void BM_Lex(benchmark::State &State) {
  std::string Source = sourceFor(State.range(0));
  for (auto _ : State) {
    DiagnosticEngine Diags;
    w2::Lexer Lexer(Source, Diags);
    benchmark::DoNotOptimize(Lexer.lexAll());
  }
  State.SetLabel(workload::sizeName(sizeFromIndex(State.range(0))));
}
BENCHMARK(BM_Lex)->DenseRange(0, 4);

void BM_Parse(benchmark::State &State) {
  std::string Source = sourceFor(State.range(0));
  for (auto _ : State) {
    DiagnosticEngine Diags;
    w2::Lexer Lexer(Source, Diags);
    w2::Parser Parser(Lexer.lexAll(), Diags);
    benchmark::DoNotOptimize(Parser.parseModule());
  }
  State.SetLabel(workload::sizeName(sizeFromIndex(State.range(0))));
}
BENCHMARK(BM_Parse)->DenseRange(0, 4);

void BM_Sema(benchmark::State &State) {
  std::string Source = sourceFor(State.range(0));
  for (auto _ : State) {
    State.PauseTiming();
    DiagnosticEngine Diags;
    w2::Lexer Lexer(Source, Diags);
    w2::Parser Parser(Lexer.lexAll(), Diags);
    auto Module = Parser.parseModule();
    State.ResumeTiming();
    w2::Sema Sema(Diags);
    benchmark::DoNotOptimize(Sema.checkModule(*Module));
  }
  State.SetLabel(workload::sizeName(sizeFromIndex(State.range(0))));
}
BENCHMARK(BM_Sema)->DenseRange(0, 4);

/// Parses and checks once, outside the timed region.
std::unique_ptr<w2::ModuleDecl> prepare(const std::string &Source) {
  DiagnosticEngine Diags;
  w2::Lexer Lexer(Source, Diags);
  w2::Parser Parser(Lexer.lexAll(), Diags);
  auto Module = Parser.parseModule();
  w2::Sema Sema(Diags);
  Sema.checkModule(*Module);
  return Module;
}

void BM_LowerAndOptimize(benchmark::State &State) {
  auto Module = prepare(sourceFor(State.range(0)));
  const w2::FunctionDecl *F = Module->getSection(0)->getFunction(0);
  for (auto _ : State) {
    auto IRF = ir::lowerFunction(*F);
    benchmark::DoNotOptimize(opt::runLocalOpt(*IRF));
  }
  State.SetLabel(workload::sizeName(sizeFromIndex(State.range(0))));
}
BENCHMARK(BM_LowerAndOptimize)->DenseRange(0, 4);

void BM_CodeGen(benchmark::State &State) {
  auto Module = prepare(sourceFor(State.range(0)));
  const w2::FunctionDecl *F = Module->getSection(0)->getFunction(0);
  auto IRF = ir::lowerFunction(*F);
  opt::runLocalOpt(*IRF);
  auto MM = codegen::MachineModel::warpCell();
  for (auto _ : State)
    benchmark::DoNotOptimize(codegen::generateCode(*IRF, MM));
  State.SetLabel(workload::sizeName(sizeFromIndex(State.range(0))));
}
BENCHMARK(BM_CodeGen)->DenseRange(0, 4);

void BM_WholeModule(benchmark::State &State) {
  std::string Source = sourceFor(State.range(0));
  auto MM = codegen::MachineModel::warpCell();
  for (auto _ : State)
    benchmark::DoNotOptimize(driver::compileModuleSequential(Source, MM));
  State.SetLabel(workload::sizeName(sizeFromIndex(State.range(0))));
}
BENCHMARK(BM_WholeModule)->DenseRange(0, 4);

} // namespace

BENCHMARK_MAIN();
