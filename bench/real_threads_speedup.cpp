//===- real_threads_speedup.cpp - Actual parallel compilation ------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
// The same master / section-master / function-master decomposition run
// with real threads on the host machine: demonstrates genuine wall-clock
// speedup of the parallelized compiler, independent of the 1989
// simulation.
//
//===----------------------------------------------------------------------===//

#include "parallel/ThreadRunner.h"

#include "support/StringUtils.h"
#include "support/TextTable.h"
#include "workload/Generator.h"

#include <cstdio>
#include <thread>

using namespace warpc;
using namespace warpc::parallel;

int main() {
  auto MM = codegen::MachineModel::warpCell();
  // A large module so the parallel phase dominates.
  std::string Source =
      workload::makeTestModule(workload::FunctionSize::Huge, 8);

  std::printf("=== Real thread-backed parallel compilation ===\n");
  std::printf("host concurrency: %u\n\n",
              std::thread::hardware_concurrency());

  // Warm up and take the single-worker baseline.
  ThreadRunResult Base = compileModuleParallel(Source, MM, 1);
  if (!Base.Module.Succeeded) {
    std::fprintf(stderr, "fatal: module failed to compile\n");
    return 1;
  }

  TextTable Table({"workers", "elapsed [ms]", "parallel phase [ms]",
                   "speedup (phase)"});
  Table.addRow({"1", formatDouble(Base.ElapsedSec * 1e3, 1),
                formatDouble(Base.ParallelPhaseSec * 1e3, 1), "1.00"});
  for (unsigned Workers : {2u, 4u, 8u}) {
    ThreadRunResult R = compileModuleParallel(Source, MM, Workers);
    if (!R.Module.Succeeded)
      return 1;
    Table.addRow({std::to_string(Workers),
                  formatDouble(R.ElapsedSec * 1e3, 1),
                  formatDouble(R.ParallelPhaseSec * 1e3, 1),
                  formatDouble(Base.ParallelPhaseSec / R.ParallelPhaseSec,
                               2)});
  }
  std::printf("%s\n", Table.str().c_str());
  std::printf("note: the image is bit-identical to the sequential\n"
              "compiler's output for every worker count. The phase speedup\n"
              "tracks the host's core count (a single-CPU host shows ~1.0);\n"
              "the 1989 speedups are reproduced by the simulator benches,\n"
              "not by this one.\n");
  return 0;
}
