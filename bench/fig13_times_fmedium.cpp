//===- fig13_times_fmedium.cpp - Figure 13 reproduction -----------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
// Figure 13 (appendix): execution times for f_medium.
//
//===----------------------------------------------------------------------===//

#include "FigureCommon.h"

using namespace warpc;

int main() {
  bench::Environment Env;
  bench::printTimesFigure(
      Env, workload::FunctionSize::Medium, "Figure 13",
      "continually better results for parallel compilation as the level "
      "of parallelism grows");
  return 0;
}
