//===- fig14_abs_overhead_small.cpp - Figure 14 reproduction ------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
// Figure 14 (appendix): absolute overhead for f_tiny and f_small.
//
//===----------------------------------------------------------------------===//

#include "FigureCommon.h"

using namespace warpc;

int main() {
  bench::Environment Env;
  bench::printAbsoluteOverheadFigure(
      Env, {workload::FunctionSize::Tiny, workload::FunctionSize::Small},
      "Figure 14",
      "absolute overhead grows with the number of functions; for these "
      "sizes it is dominated by process startup (system overhead)");
  return 0;
}
