//===- fig10_overhead_huge.cpp - Figure 10 reproduction ------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
// Figure 10: overheads as percentage of total time for f_huge.
//
//===----------------------------------------------------------------------===//

#include "FigureCommon.h"

using namespace warpc;

int main() {
  bench::Environment Env;
  bench::printRelativeOverheadFigure(
      Env, {workload::FunctionSize::Huge}, "Figure 10",
      "system overhead is a significant portion of the total; at eight "
      "functions about 50% of total execution time is overhead (f_large "
      "has the best ratio, <= 25%)");
  return 0;
}
