//===- fig06_speedup_by_count.cpp - Figure 6 reproduction ---------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
// Figure 6: speedup over the sequential compiler versus the number of
// functions, for all five benchmark sizes.
//
//===----------------------------------------------------------------------===//

#include "FigureCommon.h"

#include "support/TextTable.h"

#include <cstdio>

using namespace warpc;
using namespace warpc::bench;

int main() {
  Environment Env;
  printFigureHeader(
      "Figure 6", "speedup over sequential compiler vs number of functions",
      "except for f_tiny the speedup is always greater than 1 and "
      "increases with the number of functions; the paper reports 3-6 "
      "with at most 9 processors, best for f_large");

  TextTable Table({"functions", "f_tiny", "f_small", "f_medium", "f_large",
                   "f_huge"});
  for (unsigned N : paperCounts()) {
    std::vector<double> Row;
    json::Value JRow = json::Value::object();
    JRow.set("functions", static_cast<int64_t>(N));
    for (workload::FunctionSize Size : workload::AllSizes) {
      double Speedup = runPoint(Env, Size, N).speedup();
      Row.push_back(Speedup);
      JRow.set(std::string("speedup_") + workload::sizeName(Size), Speedup);
    }
    Table.addRow(std::to_string(N), Row, 2);
    benchJsonRow(std::move(JRow));
  }
  std::printf("%s\n", Table.str().c_str());
  return 0;
}
