//===- ablation_process.cpp - Warm pool vs fork-per-task, real processes ------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
// The paper's function masters were heavy-weight UNIX processes, and
// §4.2.3 names their startup as the dominant implementation overhead.
// The process engine makes that cost real: this ablation compiles the
// same module on a resident warp-worker pool (fork + exec + phase-1
// reparse paid once per worker) and in fork-per-task mode (paid once per
// function, the paper's configuration), next to the in-process thread
// engine as the zero-startup reference. Rows carry an "engine" label so
// warp-perf diffs thread vs process runs as distinct metrics.
//
//===----------------------------------------------------------------------===//

#include "FigureCommon.h"

#include "parallel/ProcessRunner.h"
#include "parallel/ThreadRunner.h"
#include "support/StringUtils.h"
#include "support/TextTable.h"

#include <cstdio>
#include <cstdlib>
#include <string>

using namespace warpc;
using namespace warpc::bench;
using namespace warpc::parallel;

namespace {

std::string workerBin() {
#ifdef WARPC_WORKER_BIN
  if (!std::getenv("WARPC_WORKER_BIN"))
    return WARPC_WORKER_BIN;
#endif
  return defaultWorkerBinary();
}

} // namespace

int main() {
  printFigureHeader(
      "Ablation process",
      "process-engine startup cost: resident pool vs fork-per-task "
      "(f_small, 12 functions, real wall clock)",
      "fork + exec + phase-1 reparse is the startup overhead of §4.2.3: "
      "a resident pool pays it once per worker, fork-per-task once per "
      "function, so the pool's elapsed time stays closer to the thread "
      "engine's and fork-per-task's gap widens with the function count");

  auto MM = codegen::MachineModel::warpCell();
  const unsigned NumFns = 12;
  std::string Source =
      workload::makeTestModule(workload::FunctionSize::Small, NumFns);

  driver::ModuleResult Seq = driver::compileModuleSequential(Source, MM);
  if (!Seq.Succeeded) {
    std::fprintf(stderr, "fatal: module failed to compile\n");
    return 1;
  }

  struct Mode {
    const char *Engine;
    const char *Name;
    bool ForkPerTask;
  };
  const Mode Modes[] = {
      {"thread", "thread pool", false},
      {"process", "resident pool", false},
      {"process", "fork per task", true},
  };

  TextTable Table({"engine", "mode", "workers", "elapsed [ms]",
                   "parallel phase [ms]", "spawns"});
  for (const Mode &M : Modes) {
    for (unsigned Workers : {1u, 2u, 4u, 8u}) {
      double ElapsedSec = 0, PhaseSec = 0;
      unsigned Spawns = 0;
      if (std::string(M.Engine) == "thread") {
        ThreadRunResult R = compileModuleParallel(Source, MM, Workers);
        if (!R.Module.Succeeded || R.Module.Image.Image != Seq.Image.Image) {
          std::fprintf(stderr, "fatal: thread run diverged at %u workers\n",
                       Workers);
          return 1;
        }
        ElapsedSec = R.ElapsedSec;
        PhaseSec = R.ParallelPhaseSec;
      } else {
        ProcessRunnerConfig Config;
        Config.WorkerBinary = workerBin();
        Config.ForkPerTask = M.ForkPerTask;
        ProcessRunResult R =
            compileModuleProcess(Source, MM, Workers, driver::FaultPolicy(),
                                 Config);
        if (!R.Module.Succeeded || R.Module.Image.Image != Seq.Image.Image) {
          std::fprintf(stderr, "fatal: process run diverged at %u workers\n",
                       Workers);
          return 1;
        }
        if (R.FunctionsRecovered != 0) {
          std::fprintf(stderr,
                       "fatal: %u function(s) fell back to the master "
                       "(worker binary '%s' unusable?)\n",
                       R.FunctionsRecovered, workerBin().c_str());
          return 1;
        }
        // The paper's configuration really does fork per function.
        if (M.ForkPerTask && R.WorkersSpawned < NumFns) {
          std::fprintf(stderr, "fatal: fork-per-task spawned only %u\n",
                       R.WorkersSpawned);
          return 1;
        }
        ElapsedSec = R.ElapsedSec;
        PhaseSec = R.ParallelPhaseSec;
        Spawns = R.WorkersSpawned;
      }
      Table.addRow({M.Engine, M.Name, std::to_string(Workers),
                    formatDouble(ElapsedSec * 1e3, 1),
                    formatDouble(PhaseSec * 1e3, 1),
                    std::to_string(Spawns)});

      json::Value Row = json::Value::object();
      Row.set("engine", M.Engine);
      Row.set("mode", M.Name);
      Row.set("workers", Workers);
      Row.set("functions", NumFns);
      Row.set("elapsed_sec", ElapsedSec);
      Row.set("parallel_phase_sec", PhaseSec);
      Row.set("workers_spawned", Spawns);
      benchJsonRow(std::move(Row));
    }
  }

  std::printf("%s\n", Table.str().c_str());
  std::printf("note: every row's image is bit-identical to the sequential\n"
              "compiler's. Absolute times depend on the host; the durable\n"
              "shape is pool spawns == workers used while fork-per-task\n"
              "spawns >= the function count.\n");
  return 0;
}
