//===- ablation_overhead_sources.cpp - System-overhead ablation ----------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
// Ablates each system-overhead source Section 4.2.3 names — Lisp process
// startup (core-image download + init), network load, garbage
// collection, and file-server/paging load — by idealizing one source at
// a time and re-running the f_huge x 8 experiment.
//
//===----------------------------------------------------------------------===//

#include "FigureCommon.h"

#include "support/StringUtils.h"
#include "support/TextTable.h"

#include <cstdio>

using namespace warpc;
using namespace warpc::bench;
using namespace warpc::parallel;

namespace {

double parallelElapsed(const Environment &Env, const CompilationJob &Job) {
  Assignment Assign = scheduleFCFS(Job, Env.Host.NumWorkstations);
  return simulateParallel(Job, Assign, Env.Host, Env.Model).ElapsedSec;
}

} // namespace

int main() {
  Environment Base;
  auto Job = buildJob(
      workload::makeTestModule(workload::FunctionSize::Huge, 8), Base.MM);
  if (!Job) {
    std::fprintf(stderr, "fatal: %s\n", Job.getError().message().c_str());
    return 1;
  }

  printFigureHeader(
      "Ablation", "system-overhead sources (f_huge, 8 functions)",
      "Section 4.2.3 attributes system overhead to Lisp startup, network "
      "load, garbage collection and file-server load; removing each "
      "should recover part of the parallel elapsed time");

  double Baseline = parallelElapsed(Base, *Job);
  TextTable Table({"configuration", "par elapsed [s]", "saved [s]",
                   "saved [%]"});
  Table.addRow({"calibrated 1989 host", formatDouble(Baseline, 0), "-",
                "-"});

  auto Report = [&](const char *Name, const Environment &Env) {
    double Elapsed = parallelElapsed(Env, *Job);
    double Saved = Baseline - Elapsed;
    Table.addRow({Name, formatDouble(Elapsed, 0), formatDouble(Saved, 0),
                  formatDouble(100.0 * Saved / Baseline, 1)});
  };

  {
    Environment Env;
    Env.Host.CoreDownloadKB = 1;
    Env.Host.LispInitSec = 0.1;
    Env.Host.ForkSec = 0.01;
    Report("free process startup", Env);
  }
  {
    Environment Env;
    Env.Host.EthernetKBps = 1e9;
    Env.Host.EthernetContention = 0;
    Report("infinite Ethernet", Env);
  }
  {
    Environment Env;
    Env.Model.GCSweepKBPerSec = 1e9;
    Report("free garbage collection", Env);
  }
  {
    Environment Env;
    Env.Host.ServerKBps = 1e9;
    Env.Host.ServerRequestSec = 0;
    Report("infinite file server", Env);
  }
  {
    Environment Env;
    Env.Model.PagingKBPerSec = 0;
    Report("infinite workstation memory (no paging)", Env);
  }
  std::printf("%s\n", Table.str().c_str());
  return 0;
}
