//===- methodology_repeats.cpp - Repeated-measurement methodology --------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
// Section 4.2 methodology: "Each test was run multiple times. The numbers
// presented in this paper are the arithmetic mean of those measurements.
// Since the deviation of the individual measurements are within 10% of
// the average, we consider the arithmetic mean ... a fair approximation."
// This bench repeats the Figure 4 endpoint (8 x f_large) under a few
// percent of simulated measurement jitter and applies the same check.
//
//===----------------------------------------------------------------------===//

#include "FigureCommon.h"

#include "support/Stats.h"
#include "support/StringUtils.h"
#include "support/TextTable.h"

#include <cstdio>

using namespace warpc;
using namespace warpc::bench;
using namespace warpc::parallel;

int main() {
  Environment Env;
  Env.Host.JitterPct = 0.04; // a few percent of per-service noise

  auto Job = buildJob(
      workload::makeTestModule(workload::FunctionSize::Large, 8), Env.MM);
  if (!Job) {
    std::fprintf(stderr, "fatal: %s\n", Job.getError().message().c_str());
    return 1;
  }

  printFigureHeader(
      "Methodology", "repeated measurements (8 x f_large)",
      "each test runs multiple times; the mean is reported and every "
      "individual run deviates less than 10% from it");

  Summary SeqRuns, ParRuns, Speedups;
  TextTable Table({"run", "seq elapsed [s]", "par elapsed [s]", "speedup"});
  for (unsigned Run = 0; Run != 5; ++Run) {
    Env.Host.JitterSeed = 1000 + Run;
    SeqStats Seq = simulateSequential(*Job, Env.Host, Env.Model);
    Assignment Assign = scheduleFCFS(*Job, Env.Host.NumWorkstations);
    ParStats Par = simulateParallel(*Job, Assign, Env.Host, Env.Model);
    SeqRuns.add(Seq.ElapsedSec);
    ParRuns.add(Par.ElapsedSec);
    Speedups.add(Seq.ElapsedSec / Par.ElapsedSec);
    Table.addRow(std::to_string(Run + 1),
                 {Seq.ElapsedSec, Par.ElapsedSec,
                  Seq.ElapsedSec / Par.ElapsedSec},
                 2);
  }
  Table.addRow("mean", {SeqRuns.mean(), ParRuns.mean(), Speedups.mean()}, 2);
  std::printf("%s\n", Table.str().c_str());
  std::printf("max relative deviation: seq %.1f%%, par %.1f%% "
              "(paper accepts < 10%%)\n",
              100 * SeqRuns.maxRelativeDeviation(),
              100 * ParRuns.maxRelativeDeviation());
  return SeqRuns.maxRelativeDeviation() < 0.10 &&
                 ParRuns.maxRelativeDeviation() < 0.10
             ? 0
             : 1;
}
