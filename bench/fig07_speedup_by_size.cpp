//===- fig07_speedup_by_size.cpp - Figure 7 reproduction ----------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
// Figure 7: speedup versus function size (lines of code) for 1, 2, 4 and
// 8 functions.
//
//===----------------------------------------------------------------------===//

#include "FigureCommon.h"

#include "support/StringUtils.h"
#include "support/TextTable.h"

#include <cstdio>

using namespace warpc;
using namespace warpc::bench;

int main() {
  Environment Env;
  printFigureHeader(
      "Figure 7", "speedup versus function size (lines of code)",
      "if the number of functions is small, size barely matters; for 4 "
      "and 8 functions speedup grows with size but is significantly "
      "smaller for the largest function (f_huge) — performance peaks "
      "before the largest size");

  TextTable Table({"lines", "size class", "n=1", "n=2", "n=4", "n=8"});
  for (workload::FunctionSize Size : workload::AllSizes) {
    std::vector<double> Row;
    for (unsigned N : paperCounts())
      Row.push_back(runPoint(Env, Size, N).speedup());
    std::vector<std::string> Cells;
    Cells.push_back(std::to_string(workload::sizeLines(Size)));
    Cells.push_back(workload::sizeName(Size));
    for (double V : Row)
      Cells.push_back(formatDouble(V, 2));
    Table.addRow(std::move(Cells));
  }
  std::printf("%s\n", Table.str().c_str());
  return 0;
}
