//===- fig03_times_ftiny.cpp - Figure 3 reproduction -------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
// Figure 3: execution times for f_tiny.
//
//===----------------------------------------------------------------------===//

#include "FigureCommon.h"

using namespace warpc;

int main() {
  bench::Environment Env;
  bench::printTimesFigure(
      Env, workload::FunctionSize::Tiny, "Figure 3",
      "parallel elapsed time is considerably larger than sequential "
      "elapsed time; for small functions, parallel compilation is of no "
      "use");
  return 0;
}
