//===- fig15_abs_overhead_medium_large.cpp - Figure 15 reproduction -----------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
// Figure 15 (appendix): absolute overhead for f_medium and f_large.
//
//===----------------------------------------------------------------------===//

#include "FigureCommon.h"

using namespace warpc;

int main() {
  bench::Environment Env;
  bench::printAbsoluteOverheadFigure(
      Env, {workload::FunctionSize::Medium, workload::FunctionSize::Large},
      "Figure 15",
      "absolute overhead grows with the number of functions and starts "
      "negative at small counts (the sequential baseline thrashes)");
  return 0;
}
