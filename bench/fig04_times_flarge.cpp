//===- fig04_times_flarge.cpp - Figure 4 reproduction ------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
// Figure 4: execution times for f_large.
//
//===----------------------------------------------------------------------===//

#include "FigureCommon.h"

using namespace warpc;

int main() {
  bench::Environment Env;
  bench::printTimesFigure(
      Env, workload::FunctionSize::Large, "Figure 4",
      "the best results: parallel elapsed time is considerably smaller "
      "than sequential, and adding more tasks increases parallel time "
      "only marginally");
  return 0;
}
