//===- ablation_granularity.cpp - Section- vs function-level parallelism --------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
// "The original plan was to parallelize only the compilation of programs
// for different sections, but then we realized that since the compiler
// performs only minimal inter-procedural optimizations, the scheme could
// be extended to handle the parallel compilation of multiple functions
// in the same section as well" (Section 3.1). This ablation quantifies
// that design decision on the user program and on a single-section
// module, where section-level parallelism is worthless.
//
//===----------------------------------------------------------------------===//

#include "FigureCommon.h"

#include "support/StringUtils.h"
#include "support/TextTable.h"

#include <cstdio>

using namespace warpc;
using namespace warpc::bench;
using namespace warpc::parallel;

namespace {

/// One workstation per *section*: every function of section S runs on
/// workstation S (the paper's original plan).
Assignment scheduleBySection(const CompilationJob &Job) {
  Assignment A;
  for (unsigned S = 0; S != Job.Sections.size(); ++S)
    A.WsOf.push_back(
        std::vector<unsigned>(Job.Sections[S].size(), S));
  A.ProcessorsUsed = static_cast<unsigned>(Job.Sections.size());
  return A;
}

void report(const Environment &Env, const char *Name,
            const CompilationJob &Job, TextTable &Table) {
  SeqStats Seq = simulateSequential(Job, Env.Host, Env.Model);
  ParStats BySection =
      simulateParallel(Job, scheduleBySection(Job), Env.Host, Env.Model);
  ParStats ByFunction = simulateParallel(
      Job, scheduleFCFS(Job, Env.Host.NumWorkstations), Env.Host,
      Env.Model);
  Table.addRow({Name, std::to_string(Job.Sections.size()),
                std::to_string(Job.numFunctions()),
                formatDouble(Seq.ElapsedSec / BySection.ElapsedSec, 2),
                formatDouble(Seq.ElapsedSec / ByFunction.ElapsedSec, 2)});
}

} // namespace

int main() {
  Environment Env;
  printFigureHeader(
      "Ablation", "section-level vs function-level parallelism",
      "Section 3.1: the original plan (one task per section) caps the "
      "speedup at the number of sections; compiling functions in the "
      "same section in parallel is what makes the approach pay off");

  TextTable Table({"module", "sections", "functions",
                   "speedup (by section)", "speedup (by function)"});

  auto UserJob = buildJob(workload::makeUserProgram(), Env.MM);
  if (!UserJob)
    return 1;
  report(Env, "user program (3x3)", *UserJob, Table);

  auto FlatJob = buildJob(
      workload::makeTestModule(workload::FunctionSize::Large, 8), Env.MM);
  if (!FlatJob)
    return 1;
  report(Env, "8 x f_large (1 section)", *FlatJob, Table);

  auto Fig1Job = buildJob(workload::makeFigure1Program(), Env.MM);
  if (!Fig1Job)
    return 1;
  report(Env, "Figure 1 program S", *Fig1Job, Table);

  std::printf("%s\n", Table.str().c_str());
  return 0;
}
