//===- ablation_scheduling.cpp - Scheduling strategy ablation ------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
// Compares the paper's default first-come-first-served assignment with
// the Section 4.3 balanced (LPT) grouping on the user program, across
// processor counts — "the same speedup can be observed using fewer
// processors".
//
//===----------------------------------------------------------------------===//

#include "FigureCommon.h"

#include "support/StringUtils.h"
#include "support/TextTable.h"

#include <cstdio>

using namespace warpc;
using namespace warpc::bench;
using namespace warpc::parallel;

int main() {
  Environment Env;
  auto Job = buildJob(workload::makeUserProgram(), Env.MM);
  if (!Job) {
    std::fprintf(stderr, "fatal: %s\n", Job.getError().message().c_str());
    return 1;
  }
  SeqStats Seq = simulateSequential(*Job, Env.Host, Env.Model);

  printFigureHeader(
      "Ablation", "FCFS vs balanced scheduling (user program)",
      "Section 4.3: grouping smaller functions on one processor lets 5 "
      "processors match 9; a combination of lines of code and loop "
      "nesting approximates compilation time well enough to balance");

  TextTable Table({"processors", "fcfs speedup", "balanced speedup"});
  for (unsigned Procs : {2u, 3u, 4u, 5u, 6u, 9u}) {
    ParStats F = simulateParallel(*Job, scheduleFCFS(*Job, Procs), Env.Host,
                                  Env.Model);
    ParStats B = simulateParallel(*Job, scheduleBalanced(*Job, Procs),
                                  Env.Host, Env.Model);
    Table.addRow(std::to_string(Procs),
                 {Seq.ElapsedSec / F.ElapsedSec,
                  Seq.ElapsedSec / B.ElapsedSec},
                 2);
  }
  std::printf("%s\n", Table.str().c_str());
  return 0;
}
