//===- fig08_overhead_small.cpp - Figure 8 reproduction ------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
// Figure 8: overheads as percentage of total time for f_tiny and f_small.
//
//===----------------------------------------------------------------------===//

#include "FigureCommon.h"

using namespace warpc;

int main() {
  bench::Environment Env;
  bench::printRelativeOverheadFigure(
      Env, {workload::FunctionSize::Tiny, workload::FunctionSize::Small},
      "Figure 8",
      "for f_tiny the overhead contributes up to 70% of parallel elapsed "
      "time and system overhead is almost as big as the total; for "
      "f_small the overhead is less but still substantial, with system "
      "overhead about half of the total");
  return 0;
}
