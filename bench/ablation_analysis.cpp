//===- ablation_analysis.cpp - Interprocedural analysis warm/cold ablation ===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
// The interprocedural phase is the one compilation stage the paper could
// not parallelize per function: summaries compose bottom-up, so the
// wavefront driver and the incremental summary cache carry its cost.
// This ablation lints a 50-module workload cold (empty cache) and warm
// (every SCC summary replayed) at 1, 4 and 16 workers, measuring real
// wall-clock time on this machine rather than the 1989 simulator, and
// verifies along the way that diagnostics stay byte-identical across
// every cache state and worker count.
//
//===----------------------------------------------------------------------===//

#include "FigureCommon.h"

#include "cache/CompileCache.h"
#include "driver/Compiler.h"
#include "obs/MetricsRegistry.h"
#include "parallel/AnalysisRunner.h"
#include "support/StringUtils.h"
#include "support/TextTable.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

using namespace warpc;
using namespace warpc::bench;

namespace {

/// One seeded module: a call chain feeding a divisor (sometimes zero), a
/// channel pipeline behind a data-dependent helper loop (sometimes
/// starved), and a few pure arithmetic functions for summary bulk. The
/// shapes mirror the determinism test corpus. Every leaf body embeds the
/// seed as a constant so no two modules share a summary key — the cold
/// sweep must be cold for all 50, not just the first.
std::string seededModule(uint64_t Seed) {
  const std::string Salt = std::to_string(Seed);
  auto Next = [&]() {
    Seed = Seed * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<unsigned>(Seed >> 33);
  };
  const unsigned Depth = 1 + Next() % 4;
  const bool BadDiv = Next() % 3 == 0;
  const unsigned Sent = 2 + Next() % 6;
  const bool Starved = Next() % 3 == 0;
  const unsigned Recv = Starved ? Sent + 2 : Sent;
  const unsigned Bulk = 2 + Next() % 3;

  std::string S = "module m;\nsection s cells 2 {\n";
  S += "function inv(d: int): int {\n  return (100 + " + Salt +
       ") / d;\n}\n";
  std::string Prev = "inv";
  for (unsigned I = 0; I != Depth; ++I) {
    std::string Name = "hop" + std::to_string(I);
    S += "function " + Name + "(k: int): int {\n  return " + Prev +
         "(k - 1) + 1;\n}\n";
    Prev = Name;
  }
  S += "function use(): int {\n  return " + Prev + "(" +
       std::to_string(BadDiv ? Depth : Depth + 5) + ");\n}\n";
  for (unsigned I = 0; I != Bulk; ++I)
    S += "function bulk" + std::to_string(I) +
         "(x: float): float {\n  return x * " + std::to_string(I + 2) +
         ".0 + " + Salt + ".0;\n}\n";
  S += "function pump(n: int) {\n"
       "  var v: float = " +
       Salt +
       ".0;\n"
       "  for i = 1 to n {\n"
       "    send(Y, v);\n"
       "  }\n"
       "}\n";
  S += "function stage_a() {\n  pump(" + std::to_string(Sent) + ");\n}\n";
  S += "function stage_b() {\n"
       "  var v: float = " +
       Salt +
       ".0;\n"
       "  for i = 1 to " +
       std::to_string(Recv) +
       " {\n"
       "    receive(X, v);\n"
       "  }\n"
       "}\n";
  S += "}\n";
  return S;
}

struct Module {
  std::string Source;
  std::unique_ptr<w2::ModuleDecl> AST;
  std::string GoldenDiags; ///< renderJson(...).dump(1) of the first run.
};

struct Sweep {
  double ElapsedSec = 0;
  double Hits = 0;
  double Misses = 0;
  double Stores = 0;
  uint64_t Diags = 0;
};

/// Lints every module at \p Workers against \p Cache, checking each
/// module's diagnostics against its golden if one is recorded, else
/// recording it.
Sweep lintAll(std::vector<Module> &Modules, unsigned Workers,
              cache::CompileCache *Cache, bool Remember) {
  Sweep S;
  obs::MetricsRegistry Metrics;
  auto Begin = std::chrono::steady_clock::now();
  for (Module &M : Modules) {
    parallel::AnalysisRunResult Run = parallel::analyzeModuleParallel(
        *M.AST, M.Source, {}, Workers, /*Rec=*/nullptr, &Metrics, Cache);
    if (Cache && Remember)
      Cache->rememberModule(*M.AST);
    S.Diags += Run.Analysis.Diags.size();
    std::string Json = analysis::renderJson(Run.Analysis.Diags).dump(1);
    if (M.GoldenDiags.empty())
      M.GoldenDiags = std::move(Json);
    else if (Json != M.GoldenDiags) {
      std::fprintf(stderr,
                   "fatal: diagnostics diverged at %u workers (cache %s)\n",
                   Workers, Cache ? "on" : "off");
      std::exit(1);
    }
  }
  auto End = std::chrono::steady_clock::now();
  S.ElapsedSec = std::chrono::duration<double>(End - Begin).count();
  S.Hits = Metrics.counter("analysis.summary.hits");
  S.Misses = Metrics.counter("analysis.summary.misses");
  S.Stores = Metrics.counter("analysis.summary.stores");
  return S;
}

} // namespace

int main() {
  printFigureHeader(
      "Ablation analysis",
      "interprocedural analysis summary cache (50 modules, cold vs warm)",
      "a warm summary cache replays every SCC's summaries and diagnostics "
      "from the store, so the wavefront does no summarization work and "
      "warm lint time drops well below cold at every worker count, while "
      "the diagnostic stream stays byte-identical");

  const unsigned NumModules = 50;
  std::vector<Module> Modules;
  uint64_t TotalFns = 0;
  for (uint64_t Seed = 1; Seed <= NumModules; ++Seed) {
    Module M;
    M.Source = seededModule(Seed);
    driver::ParseResult Parsed = driver::parseAndCheck(M.Source);
    if (!Parsed.succeeded()) {
      std::fprintf(stderr, "fatal: seed %llu does not parse:\n%s",
                   static_cast<unsigned long long>(Seed),
                   Parsed.Diags.str().c_str());
      return 1;
    }
    M.AST = std::move(Parsed.Module);
    TotalFns += M.AST->numFunctions();
    Modules.push_back(std::move(M));
  }
  std::printf("workload: %u modules, %llu functions\n\n", NumModules,
              static_cast<unsigned long long>(TotalFns));

  TextTable Table({"scenario", "workers", "elapsed (ms)", "speedup vs cold",
                   "summary hits", "summary misses"});
  auto emit = [&](const char *Name, unsigned Workers, const Sweep &Run,
                  const Sweep &Cold) {
    Table.addRow({Name, std::to_string(Workers),
                  formatDouble(Run.ElapsedSec * 1000, 1),
                  formatDouble(Cold.ElapsedSec / Run.ElapsedSec, 2),
                  formatDouble(Run.Hits, 0), formatDouble(Run.Misses, 0)});
    json::Value Row = json::Value::object();
    Row.set("scenario", Name);
    Row.set("workers", Workers);
    Row.set("modules", NumModules);
    Row.set("functions", TotalFns);
    Row.set("elapsed_sec", Run.ElapsedSec);
    Row.set("speedup_vs_cold", Cold.ElapsedSec / Run.ElapsedSec);
    Row.set("summary_hits", Run.Hits);
    Row.set("summary_misses", Run.Misses);
    Row.set("summary_stores", Run.Stores);
    Row.set("diagnostics", Run.Diags);
    benchJsonRow(std::move(Row));
  };

  for (unsigned Workers : {1u, 4u, 16u}) {
    // Cold: a fresh cache populated as the sweep runs. The salt keeps
    // every module's keys distinct, so nothing may hit.
    cache::CompileCache Cache(cache::CacheMode::Memory, cache::CacheContext{});
    Sweep Cold = lintAll(Modules, Workers, &Cache, /*Remember=*/true);
    if (Cold.Hits != 0) {
      std::fprintf(stderr, "fatal: cold sweep at %u workers hit %g times\n",
                   Workers, Cold.Hits);
      return 1;
    }

    // Warm: the same cache replayed; every SCC must hit, none may store.
    Sweep Warm = lintAll(Modules, Workers, &Cache, /*Remember=*/false);
    if (Warm.Misses != 0 || Warm.Stores != 0 || Warm.Hits != Cold.Stores) {
      std::fprintf(stderr,
                   "fatal: warm sweep at %u workers: %g hits, %g misses, "
                   "%g stores (cold stored %g)\n",
                   Workers, Warm.Hits, Warm.Misses, Warm.Stores, Cold.Stores);
      return 1;
    }

    emit("cold", Workers, Cold, Cold);
    emit("warm", Workers, Warm, Cold);
  }

  std::printf("%s\n", Table.str().c_str());
  return 0;
}
