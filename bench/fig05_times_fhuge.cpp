//===- fig05_times_fhuge.cpp - Figure 5 reproduction --------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
// Figure 5: execution times for f_huge.
//
//===----------------------------------------------------------------------===//

#include "FigureCommon.h"

using namespace warpc;

int main() {
  bench::Environment Env;
  bench::printTimesFigure(
      Env, workload::FunctionSize::Huge, "Figure 5",
      "still much faster than the sequential compiler, but the speedup "
      "decreases compared to f_large; behavior is optimal for functions "
      "about the size of f_large");
  return 0;
}
