//===- ablation_daemon.cpp - Compile-service latency under open-loop load ----===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
// The paper's compiler served one user per invocation; the warpd service
// multiplexes many. This ablation drives a live in-process CompileService
// through its real AF_UNIX socket with an open-loop arrival schedule —
// requests land on the clock whether or not earlier ones finished, the
// honest way to measure a queueing system — and reports per-request
// latency percentiles and the admission behavior as the offered rate
// crosses the single executor's capacity. Rows carry engine "daemon" so
// warp-perf diffs service runs as their own metric family.
//
//===----------------------------------------------------------------------===//

#include "FigureCommon.h"

#include "obs/TraceContext.h"
#include "service/Client.h"
#include "service/Server.h"
#include "support/StringUtils.h"
#include "support/TextTable.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace warpc;
using namespace warpc::bench;
using namespace warpc::service;

namespace {

double quantile(std::vector<double> Sorted, double Q) {
  if (Sorted.empty())
    return 0.0;
  std::sort(Sorted.begin(), Sorted.end());
  size_t Idx = static_cast<size_t>(Q * (Sorted.size() - 1) + 0.5);
  return Sorted[std::min(Idx, Sorted.size() - 1)];
}

/// Locates warp-worker for the compute-split section: $WARPC_WORKER_BIN,
/// then a sibling of this binary, then the build tree's tools/ next to
/// bench/. Empty when none is runnable (the section is then skipped —
/// the master-fallback path would silently measure the wrong thing).
std::string findWorkerBinary() {
  if (const char *Env = std::getenv("WARPC_WORKER_BIN"))
    if (*Env)
      return Env;
  char Buf[4096];
  const ssize_t N = ::readlink("/proc/self/exe", Buf, sizeof(Buf) - 1);
  if (N <= 0)
    return "";
  Buf[N] = '\0';
  const std::string Self(Buf);
  const size_t Slash = Self.rfind('/');
  if (Slash == std::string::npos)
    return "";
  const std::string Dir = Self.substr(0, Slash);
  for (const char *Rel : {"/warp-worker", "/../tools/warp-worker"}) {
    const std::string Cand = Dir + Rel;
    if (::access(Cand.c_str(), X_OK) == 0)
      return Cand;
  }
  return "";
}

/// Drives a few requests through a process-engine service with tracing
/// on and splits each request's compute between the worker processes
/// (optimize + codegen spans in the returned shard) and the master side
/// (everything else in the executor's wall time). This is the service
/// reading of the paper's Section 4.2.3 question: how much of the work
/// actually left the master?
void runComputeSplit(const std::vector<std::string> &Sources,
                     const std::string &WorkerBin) {
  ServiceConfig Config;
  Config.SocketPath =
      "/tmp/warpc-bench-daemon-split-" + std::to_string(getpid()) + ".sock";
  Config.Engine = "process";
  Config.DefaultWorkers = 2;
  Config.MaxInFlight = 1;
  Config.MaxQueue = 16;
  Config.CacheMode = cache::CacheMode::Off;
  Config.WorkerBinary = WorkerBin;
  CompileService Service(Config);
  std::string Error;
  if (!Service.start(Error)) {
    std::fprintf(stderr, "warning: compute-split service failed: %s\n",
                 Error.c_str());
    return;
  }
  Client C;
  if (!C.connect(Config.SocketPath, Error)) {
    std::fprintf(stderr, "warning: compute-split connect failed: %s\n",
                 Error.c_str());
    Service.requestDrain();
    Service.wait();
    return;
  }

  unsigned Completed = 0;
  double TotalSec = 0, WorkerOptSec = 0, WorkerCgSec = 0;
  for (unsigned I = 0; I != 8; ++I) {
    wire::CompileRequestMsg Req;
    Req.RequestId = 1 + I;
    Req.ModuleSource = Sources[I % Sources.size()];
    Req.TraceId = 0x5EED0000 + I; // Any nonzero id turns tracing on.
    RequestOutcome Out;
    if (!C.compile(Req, Out, Error) || !Out.Accepted ||
        Out.Result.Status != 0)
      continue;
    ++Completed;
    TotalSec += Out.Result.CompileSec;
    obs::SpanShard Shard;
    if (obs::decodeSpanShard(Out.Result.ShardBytes, Shard))
      for (const obs::ShardSpan &S : Shard.Spans) {
        if (S.DurSec <= 0)
          continue;
        if (S.Kind == obs::EventKind::SpanOptimize)
          WorkerOptSec += S.DurSec;
        else if (S.Kind == obs::EventKind::SpanCodegen)
          WorkerCgSec += S.DurSec;
      }
  }
  Service.requestDrain();
  Service.wait();
  if (Completed == 0) {
    std::fprintf(stderr, "warning: compute-split: no request completed\n");
    return;
  }

  const double WorkerSec = WorkerOptSec + WorkerCgSec;
  const double MasterSec = std::max(TotalSec - WorkerSec, 0.0);
  const double Share = TotalSec > 0 ? WorkerSec / TotalSec : 0.0;
  TextTable Split({"engine", "requests", "master-side [ms]",
                   "worker opt [ms]", "worker codegen [ms]", "worker share"});
  Split.addRow({"daemon+process", std::to_string(Completed),
                formatDouble(MasterSec * 1e3, 2),
                formatDouble(WorkerOptSec * 1e3, 2),
                formatDouble(WorkerCgSec * 1e3, 2),
                formatDouble(Share * 100.0, 1) + "%"});
  std::printf("\ncompute split (process engine, traced shards):\n%s\n",
              Split.str().c_str());

  json::Value Row = json::Value::object();
  Row.set("engine", "daemon");
  Row.set("metric", "compute_split");
  Row.set("requests", Completed);
  Row.set("master_side_sec", MasterSec);
  Row.set("worker_opt_sec", WorkerOptSec);
  Row.set("worker_codegen_sec", WorkerCgSec);
  Row.set("worker_share", Share);
  benchJsonRow(std::move(Row));
}

} // namespace

int main() {
  printFigureHeader(
      "Ablation daemon",
      "compile-service latency vs offered load (open-loop arrivals, "
      "one executor, bounded queue)",
      "below saturation the daemon adds little over the bare compile; "
      "past it queueing dominates the tail and the bounded admission "
      "queue sheds the overflow as explicit rejects instead of letting "
      "latency grow without bound");

  // A small module population cycled by the generator; cache off so
  // every request costs the same real compile.
  std::vector<std::string> Sources;
  for (uint64_t Seed = 0; Seed != 8; ++Seed)
    Sources.push_back(
        workload::makeTestModule(workload::FunctionSize::Tiny, 2, 7000 + Seed));

  ServiceConfig Config;
  Config.SocketPath =
      "/tmp/warpc-bench-daemon-" + std::to_string(getpid()) + ".sock";
  Config.Engine = "sequential";
  Config.MaxInFlight = 1;
  Config.MaxQueue = 16;
  Config.CacheMode = cache::CacheMode::Off;
  // A deterministic service-time floor (the executor's test hook): tiny
  // modules compile in ~0.1 ms, which is too noisy a denominator for a
  // stable capacity estimate on shared CI hosts. 4 ms per request makes
  // the saturation knee land at the same capacity fraction everywhere.
  const double FloorSec = 0.004;
  Config.DebugCompileDelaySec = FloorSec;
  CompileService Service(Config);
  std::string Error;
  if (!Service.start(Error)) {
    std::fprintf(stderr, "fatal: %s\n", Error.c_str());
    return 1;
  }

  // Calibrate capacity: one synchronous request's service time sets the
  // saturation point the rate sweep brackets.
  double ServiceSec = 0.001;
  {
    Client C;
    if (!C.connect(Config.SocketPath, Error)) {
      std::fprintf(stderr, "fatal: %s\n", Error.c_str());
      return 1;
    }
    wire::CompileRequestMsg Req;
    Req.RequestId = 1;
    Req.ModuleSource = Sources[0];
    RequestOutcome Out;
    if (!C.compile(Req, Out, Error) || !Out.Accepted ||
        Out.Result.Status != 0) {
      std::fprintf(stderr, "fatal: calibration compile failed\n");
      return 1;
    }
    ServiceSec = std::max(Out.Result.CompileSec, 1e-4) + FloorSec;
  }
  const double CapacityRps = 1.0 / ServiceSec;

  TextTable Table({"engine", "offered [req/s]", "sent", "completed",
                   "rejected", "p50 [ms]", "p95 [ms]", "p99 [ms]",
                   "qwait p50 [ms]", "qwait p95 [ms]"});

  for (double Fraction : {0.25, 0.75, 1.5, 4.0}) {
    const double Rate = Fraction * CapacityRps;
    const unsigned Total = 40;
    Client C;
    if (!C.connect(Config.SocketPath, Error)) {
      std::fprintf(stderr, "fatal: %s\n", Error.c_str());
      return 1;
    }

    using Clock = std::chrono::steady_clock;
    const Clock::time_point Start = Clock::now();
    unsigned Sent = 0;
    for (unsigned I = 0; I != Total; ++I) {
      // Open loop: request I is due at I/Rate regardless of progress.
      const double DueSec = I / Rate;
      for (;;) {
        double Now =
            std::chrono::duration<double>(Clock::now() - Start).count();
        if (Now >= DueSec)
          break;
        std::this_thread::sleep_for(
            std::chrono::duration<double>(DueSec - Now));
      }
      wire::CompileRequestMsg Req;
      Req.RequestId = 10 + I;
      Req.ModuleSource = Sources[I % Sources.size()];
      if (!C.submit(Req, Error)) {
        std::fprintf(stderr, "fatal: submit: %s\n", Error.c_str());
        return 1;
      }
      ++Sent;
    }

    unsigned Completed = 0, Rejected = 0;
    std::vector<double> LatencySec;
    std::vector<double> QueueWaitSec;
    for (unsigned I = 0; I != Total; ++I) {
      RequestOutcome Out;
      if (!C.await(10 + I, Out, Error)) {
        std::fprintf(stderr, "fatal: await: %s\n", Error.c_str());
        return 1;
      }
      if (!Out.Accepted) {
        ++Rejected;
        continue;
      }
      if (Out.Result.Status != 0) {
        std::fprintf(stderr, "fatal: request %u failed\n", I);
        return 1;
      }
      ++Completed;
      // Server-side residence: queue wait plus service time (floor +
      // compile), the latency the daemon is accountable for
      // (client-side adds only socket hops).
      LatencySec.push_back(Out.Result.QueueSec + FloorSec +
                           Out.Result.CompileSec);
      QueueWaitSec.push_back(Out.Result.QueueSec);
    }

    const double P50 = quantile(LatencySec, 0.50) * 1e3;
    const double P95 = quantile(LatencySec, 0.95) * 1e3;
    const double P99 = quantile(LatencySec, 0.99) * 1e3;
    const double QW50 = quantile(QueueWaitSec, 0.50) * 1e3;
    const double QW95 = quantile(QueueWaitSec, 0.95) * 1e3;
    const double QW99 = quantile(QueueWaitSec, 0.99) * 1e3;
    Table.addRow({"daemon", formatDouble(Rate, 1), std::to_string(Sent),
                  std::to_string(Completed), std::to_string(Rejected),
                  formatDouble(P50, 2), formatDouble(P95, 2),
                  formatDouble(P99, 2), formatDouble(QW50, 2),
                  formatDouble(QW95, 2)});

    json::Value Row = json::Value::object();
    Row.set("engine", "daemon");
    Row.set("offered_rps", Rate);
    Row.set("capacity_fraction", Fraction);
    Row.set("sent", Sent);
    Row.set("completed", Completed);
    Row.set("rejected", Rejected);
    Row.set("p50_sec", P50 / 1e3);
    Row.set("p95_sec", P95 / 1e3);
    Row.set("p99_sec", P99 / 1e3);
    Row.set("queue_wait_p50_sec", QW50 / 1e3);
    Row.set("queue_wait_p95_sec", QW95 / 1e3);
    Row.set("queue_wait_p99_sec", QW99 / 1e3);
    benchJsonRow(std::move(Row));
  }

  wire::ServerStatsMsg Stats = Service.statsSnapshot();
  Service.requestDrain();
  Service.wait();

  std::printf("%s\n", Table.str().c_str());
  std::printf("service totals: %llu accepted, %llu completed, %llu "
              "rejected; request p50/p95/p99 = %.2f/%.2f/%.2f ms\n",
              static_cast<unsigned long long>(Stats.Accepted),
              static_cast<unsigned long long>(Stats.Completed),
              static_cast<unsigned long long>(Stats.Rejected),
              Stats.P50Ms, Stats.P95Ms, Stats.P99Ms);
  if (Stats.QueueWaitNormal.Count != 0)
    std::printf("queue wait (priority 0): p50/p95/p99 = %.2f/%.2f/%.2f ms "
                "over %llu requests\n",
                Stats.QueueWaitNormal.P50 * 1e3,
                Stats.QueueWaitNormal.P95 * 1e3,
                Stats.QueueWaitNormal.P99 * 1e3,
                static_cast<unsigned long long>(Stats.QueueWaitNormal.Count));

  const std::string WorkerBin = findWorkerBinary();
  if (!WorkerBin.empty())
    runComputeSplit(Sources, WorkerBin);
  else
    std::printf("compute split skipped: no warp-worker binary found "
                "(set WARPC_WORKER_BIN)\n");

  std::printf("note: open-loop arrivals; rejected rows are the bounded\n"
              "queue's explicit backpressure, not lost requests. Absolute\n"
              "rates depend on the host; the durable shape is the tail\n"
              "latency knee at the capacity crossing.\n");
  return 0;
}
