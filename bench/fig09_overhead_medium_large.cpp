//===- fig09_overhead_medium_large.cpp - Figure 9 reproduction ----------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
// Figure 9: overheads as percentage of total time for f_medium and
// f_large.
//
//===----------------------------------------------------------------------===//

#include "FigureCommon.h"

using namespace warpc;

int main() {
  bench::Environment Env;
  bench::printRelativeOverheadFigure(
      Env, {workload::FunctionSize::Medium, workload::FunctionSize::Large},
      "Figure 9",
      "the system overhead is NEGATIVE when the number of functions is "
      "small: the sequential compiler processes a program that does not "
      "fit into the memory and system space of one workstation, so it "
      "garbage-collects and swaps extensively, while each function "
      "master works on a smaller subproblem; overhead turns positive and "
      "grows as functions are added");
  return 0;
}
