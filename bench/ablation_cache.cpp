//===- ablation_cache.cpp - Incremental recompilation on the 1989 host ---------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
// The paper's cluster recompiled every function of an edited module from
// scratch — diskless workstations left nowhere to keep results. This
// ablation measures what a content-addressed function cache would have
// bought: a cold build, a fully warm rebuild (no source changed), and
// the common edit-compile loop where ~10% of the module changed, each
// swept over host counts. A warm function costs one cache lookup on the
// master's workstation instead of a function master's whole lifecycle.
//
//===----------------------------------------------------------------------===//

#include "FigureCommon.h"

#include "support/StringUtils.h"
#include "support/TextTable.h"

#include <cstdio>

using namespace warpc;
using namespace warpc::bench;
using namespace warpc::parallel;

namespace {

/// Marks the first \p NumWarm tasks cached (the module's unchanged
/// functions; which ones is immaterial to elapsed time under FCFS).
void markWarm(CompilationJob &Job, unsigned NumWarm) {
  unsigned Left = NumWarm;
  for (auto &Section : Job.Sections)
    for (FunctionTask &T : Section) {
      T.Cached = Left > 0;
      if (Left > 0)
        --Left;
    }
}

} // namespace

int main() {
  Environment Env;
  printFigureHeader(
      "Ablation cache",
      "content-addressed compilation cache (f_medium, 8 functions)",
      "a warm cache replaces a function master's startup, compile and "
      "result transfer with one fixed-cost lookup, so an unchanged "
      "module rebuilds in roughly phase-1 + phase-4 time regardless of "
      "host count, and a 10% edit rebuilds close to one function's time");

  const unsigned NumFns = 8;
  auto Job = buildJob(
      workload::makeTestModule(workload::FunctionSize::Medium, NumFns),
      Env.MM);
  if (!Job) {
    std::fprintf(stderr, "fatal: %s\n", Job.getError().message().c_str());
    return 1;
  }
  Job->CacheEnabled = true;

  SeqStats Seq = simulateSequential(*Job, Env.Host, Env.Model);
  std::printf("sequential cold build: %.0f s (%.1f min)\n\n", Seq.ElapsedSec,
              Seq.ElapsedSec / 60);

  struct Scenario {
    const char *Name;
    unsigned WarmFns;
  };
  const Scenario Scenarios[] = {
      {"cold (0/8 cached)", 0},
      {"10% edit (7/8 cached)", NumFns - 1},
      {"warm (8/8 cached)", NumFns},
  };

  TextTable Table({"scenario", "hosts", "elapsed (s)", "speedup vs seq",
                   "cache hits", "hosts used"});

  for (const Scenario &S : Scenarios) {
    markWarm(*Job, S.WarmFns);
    for (unsigned Hosts : {1u, 2u, 4u, 8u}) {
      Assignment Assign = scheduleFCFS(*Job, Hosts);
      ParStats Par = simulateParallel(*Job, Assign, Env.Host, Env.Model);

      if (Par.CacheHits != S.WarmFns ||
          Par.CacheHits + Par.CacheMisses != NumFns) {
        std::fprintf(stderr, "fatal: scenario '%s' at %u hosts counted "
                             "%u hits + %u misses\n",
                     S.Name, Hosts, Par.CacheHits, Par.CacheMisses);
        return 1;
      }
      Table.addRow({S.Name, std::to_string(Hosts),
                    formatDouble(Par.ElapsedSec, 0),
                    formatDouble(Seq.ElapsedSec / Par.ElapsedSec, 2),
                    std::to_string(Par.CacheHits),
                    std::to_string(Par.ProcessorsUsed)});

      json::Value Row = json::Value::object();
      Row.set("scenario", S.Name);
      Row.set("warm_functions", S.WarmFns);
      Row.set("hosts", Hosts);
      Row.set("elapsed_sec", Par.ElapsedSec);
      Row.set("speedup_vs_sequential", Seq.ElapsedSec / Par.ElapsedSec);
      Row.set("cache_hits", Par.CacheHits);
      Row.set("cache_misses", Par.CacheMisses);
      Row.set("cache_bytes_kb", Par.CacheBytesKB);
      Row.set("hosts_used", Par.ProcessorsUsed);
      benchJsonRow(std::move(Row));
    }
    // Warming the cache must never slow the build down (same hosts).
    if (S.WarmFns > 0) {
      Assignment Assign = scheduleFCFS(*Job, 8);
      ParStats Par = simulateParallel(*Job, Assign, Env.Host, Env.Model);
      Assignment ColdAssign;
      markWarm(*Job, 0);
      ColdAssign = scheduleFCFS(*Job, 8);
      ParStats ColdRun =
          simulateParallel(*Job, ColdAssign, Env.Host, Env.Model);
      markWarm(*Job, S.WarmFns);
      if (Par.ElapsedSec > ColdRun.ElapsedSec) {
        std::fprintf(stderr,
                     "fatal: scenario '%s' (%.0f s) slower than cold "
                     "(%.0f s) at 8 hosts\n",
                     S.Name, Par.ElapsedSec, ColdRun.ElapsedSec);
        return 1;
      }
    }
  }

  std::printf("%s\n", Table.str().c_str());
  return 0;
}
