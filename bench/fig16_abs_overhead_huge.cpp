//===- fig16_abs_overhead_huge.cpp - Figure 16 reproduction --------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
// Figure 16 (appendix): absolute overhead for f_huge.
//
//===----------------------------------------------------------------------===//

#include "FigureCommon.h"

using namespace warpc;

int main() {
  bench::Environment Env;
  bench::printAbsoluteOverheadFigure(
      Env, {workload::FunctionSize::Huge}, "Figure 16",
      "the largest absolute overheads of all sizes, growing steeply with "
      "the number of functions (multiple Lisp images swap off the same "
      "file server)");
  return 0;
}
