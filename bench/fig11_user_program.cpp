//===- fig11_user_program.cpp - Figure 11 reproduction -------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
// Figure 11: speedup for a user program (a mechanical-engineering
// application of three sections with three functions each) compiled on
// 2, 3, 5 and 9 processors with the Section 4.3 load-balancing
// heuristic.
//
//===----------------------------------------------------------------------===//

#include "FigureCommon.h"

#include "support/StringUtils.h"
#include "support/TextTable.h"

#include <cstdio>

using namespace warpc;
using namespace warpc::bench;
using namespace warpc::parallel;

int main() {
  Environment Env;
  printFigureHeader(
      "Figure 11", "speedup for a user program",
      "9 processors (one per function) give a speedup of 4.5; the "
      "speedup for 2 processors is 2.16 — superlinear, because the "
      "sequential compiler's system overhead (swapping, GC) exceeds the "
      "parallel compiler's; with balanced grouping, 5 processors are "
      "almost as good as 9");

  auto Job = buildJob(workload::makeUserProgram(), Env.MM);
  if (!Job) {
    std::fprintf(stderr, "fatal: user program failed to compile: %s\n",
                 Job.getError().message().c_str());
    return 1;
  }

  SeqStats Seq = simulateSequential(*Job, Env.Host, Env.Model);
  std::printf("sequential: elapsed %.0f s (cpu %.0f, gc %.0f, page wait "
              "%.0f)\n\n",
              Seq.ElapsedSec, Seq.CpuSec, Seq.GCSec, Seq.PageWaitSec);

  TextTable Table({"processors", "scheduler", "par elapsed [s]", "speedup",
                   "paper speedup"});
  struct Config {
    unsigned Procs;
    bool Balanced;
    const char *Paper;
  };
  const Config Configs[] = {
      {2, true, "2.16"},
      {3, true, "~3"},
      {5, true, "~4.3"},
      {9, false, "4.5"},
  };
  for (const Config &C : Configs) {
    Assignment Assign = C.Balanced ? scheduleBalanced(*Job, C.Procs)
                                   : scheduleFCFS(*Job, C.Procs);
    ParStats Par = simulateParallel(*Job, Assign, Env.Host, Env.Model);
    Table.addRow({std::to_string(C.Procs),
                  C.Balanced ? "balanced (LPT)" : "one per function",
                  formatDouble(Par.ElapsedSec, 0),
                  formatDouble(Seq.ElapsedSec / Par.ElapsedSec, 2),
                  C.Paper});
  }
  std::printf("%s\n", Table.str().c_str());

  // The paper also observes that with one workstation per function, "each
  // processor compiling one of the small functions was idle for at least
  // 15 minutes during the entire compilation".
  Assignment PerFn = scheduleFCFS(*Job, 9);
  ParStats Par9 = simulateParallel(*Job, PerFn, Env.Host, Env.Model);
  double SmallestBusy = 1e18;
  for (const auto &Section : Job->Sections)
    for (const FunctionTask &T : Section) {
      double Busy = Env.Model.compileSec(T.Metrics);
      if (Busy < SmallestBusy)
        SmallestBusy = Busy;
    }
  std::printf("idle time of the processor holding the smallest function: "
              "%.0f s (>= 15 min in the paper)\n",
              Par9.ElapsedSec - SmallestBusy);
  return 0;
}
