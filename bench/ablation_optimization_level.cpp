//===- ablation_optimization_level.cpp - Extra optimization effort --------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
// Section 5.1: "more sophisticated optimization algorithms can be used
// that would make compilation on a uniprocessor too slow. Here,
// parallelism not only speeds up the compilation process, but can also
// improve the quality of the generated code." This ablation adds the
// optional LICM pass on top of the default pipeline and reports both the
// code-quality gain (instruction words, dynamic kernel work) and the
// compile-time cost, sequential vs parallel.
//
//===----------------------------------------------------------------------===//

#include "FigureCommon.h"

#include "asmout/Assembly.h"
#include "codegen/CodeGen.h"
#include "ir/IRBuilder.h"
#include "opt/LICM.h"
#include "opt/LoopInfo.h"
#include "opt/LocalOpt.h"
#include "support/StringUtils.h"
#include "support/TextTable.h"
#include "w2/Lexer.h"
#include "w2/Parser.h"
#include "w2/Sema.h"

#include <cstdio>

using namespace warpc;
using namespace warpc::bench;

int main() {
  Environment Env;
  printFigureHeader(
      "Ablation", "optional extra optimization (LICM) on f_large x 4",
      "extra optimization passes cost compile time that parallel "
      "compilation absorbs, while improving the generated code");

  std::string Source =
      workload::makeTestModule(workload::FunctionSize::Large, 4);
  DiagnosticEngine Diags;
  w2::Lexer Lexer(Source, Diags);
  w2::Parser Parser(Lexer.lexAll(), Diags);
  auto Module = Parser.parseModule();
  w2::Sema Sema(Diags);
  if (Diags.hasErrors() || !Sema.checkModule(*Module)) {
    std::fprintf(stderr, "fatal: %s\n", Diags.str().c_str());
    return 1;
  }

  TextTable Table({"pipeline", "in-loop instrs", "kernel ii sum",
                   "hoisted", "opt visits", "seq compile [s]",
                   "par elapsed [s]"});

  for (bool WithLicm : {false, true}) {
    uint64_t Hoisted = 0, OptVisits = 0;
    uint64_t KernelIISum = 0, InLoopInstrs = 0;
    double SeqCompileSec = 0, ParElapsed = 0;

    parallel::CompilationJob Job;
    Job.ModuleName = Module->getName();
    Job.Phase1.Tokens = Lexer.tokenCount();
    for (size_t S = 0; S != Module->numSections(); ++S) {
      const w2::SectionDecl *Section = Module->getSection(S);
      std::vector<parallel::FunctionTask> Tasks;
      for (size_t F = 0; F != Section->numFunctions(); ++F) {
        const w2::FunctionDecl *Fn = Section->getFunction(F);
        auto IRF = ir::lowerFunction(*Fn);
        opt::OptStats Stats = opt::runLocalOpt(*IRF);
        if (WithLicm) {
          Hoisted += opt::hoistLoopInvariants(*IRF, Stats);
          // LICM exposes new local opportunities; re-run the pipeline.
          Stats += opt::runLocalOpt(*IRF);
        }
        codegen::MachineFunction MF =
            codegen::generateCode(*IRF, Env.MM);
        asmout::CellProgram Program = asmout::assembleFunction(*IRF, MF);
        // Steady-state quality: instructions that execute every loop
        // iteration (any nesting level), plus the pipelined kernels' II.
        opt::LoopInfo LI = opt::LoopInfo::compute(*IRF);
        for (size_t B = 0; B != IRF->numBlocks(); ++B)
          if (LI.loopDepth(static_cast<ir::BlockId>(B)) > 0)
            InLoopInstrs +=
                IRF->block(static_cast<ir::BlockId>(B))->Instrs.size();
        for (const auto &[Body, LS] : MF.PipelinedLoops) {
          (void)Body;
          KernelIISum += LS.II;
        }

        parallel::FunctionTask Task;
        Task.SectionName = Section->getName();
        Task.FunctionName = Fn->getName();
        Task.Metrics.SourceLines = Fn->lineCount();
        Task.Metrics.LoopDepth = w2::maxLoopDepth(*Fn);
        Task.Metrics.AstNodes = w2::countAstNodes(*Fn);
        Task.Metrics.IRInstrs = IRF->instructionCount();
        Task.Metrics.OptVisited = Stats.InstrsVisited;
        Task.Metrics.OptTransforms = Stats.totalTransforms();
        Task.Metrics.ListSchedAttempts = MF.Metrics.ListSchedAttempts;
        Task.Metrics.ModuloSchedAttempts = MF.Metrics.ModuloSchedAttempts;
        Task.Metrics.RecMIIWork = MF.Metrics.RecMIIWork;
        Task.Metrics.RegAllocWork = MF.Metrics.RegAllocWork;
        Task.Metrics.CodeWords = Program.CodeWords;
        Task.Metrics.ImageBytes = Program.Image.size();
        Task.OutputKB = std::max(
            1.0, static_cast<double>(Program.Image.size()) / 1024.0);
        OptVisits += Stats.InstrsVisited;
        SeqCompileSec += Env.Model.compileSec(Task.Metrics);
        Tasks.push_back(std::move(Task));
      }
      Job.Sections.push_back(std::move(Tasks));
    }
    parallel::Assignment Assign =
        parallel::scheduleFCFS(Job, Env.Host.NumWorkstations);
    ParElapsed =
        parallel::simulateParallel(Job, Assign, Env.Host, Env.Model)
            .ElapsedSec;

    Table.addRow({WithLicm ? "default + LICM" : "default",
                  std::to_string(InLoopInstrs),
                  std::to_string(KernelIISum), std::to_string(Hoisted),
                  std::to_string(OptVisits),
                  formatDouble(SeqCompileSec, 0),
                  formatDouble(ParElapsed, 0)});
  }
  std::printf("%s\n", Table.str().c_str());
  std::printf("LICM moves invariant work out of the loops (fewer "
              "instructions per iteration); the extra optimizer work is "
              "absorbed by the parallel compiler.\n");
  return 0;
}
