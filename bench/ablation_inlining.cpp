//===- ablation_inlining.cpp - Inlining + parallel compilation ----------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
// Section 5.1: "procedure inlining is an important optimization ... the
// increase in size of each function operated upon will also improve the
// speedup obtained by the parallel compiler." This ablation builds a
// call-heavy module of many tiny helper functions, compiles it in
// parallel with and without inlining, and compares.
//
//===----------------------------------------------------------------------===//

#include "FigureCommon.h"

#include "support/StringUtils.h"
#include "support/TextTable.h"
#include "driver/Compiler.h"
#include "w2/Inliner.h"
#include "w2/Lexer.h"
#include "w2/Parser.h"
#include "w2/Sema.h"

#include <algorithm>
#include <cstdio>

using namespace warpc;
using namespace warpc::bench;
using namespace warpc::parallel;

namespace {

/// A module in the style the paper warns about: a few medium driver
/// functions plus many tiny helpers they call.
std::string makeCallHeavyModule() {
  std::string Out = "module call_heavy;\nsection main cells 8 {\n";
  // Tiny helpers.
  for (int H = 0; H != 6; ++H) {
    std::string N = std::to_string(H);
    Out += "function helper" + N + "(x: float): float {\n";
    Out += "  var r: float = x * " + std::to_string(1 + H) + ".5 + 0.25;\n";
    Out += "  r = r + x / 2.0;\n";
    Out += "  return r;\n";
    Out += "}\n";
  }
  // Driver functions with loops full of helper calls.
  for (int D = 0; D != 4; ++D) {
    std::string N = std::to_string(D);
    Out += "function driver" + N + "(a: float[32], g: float): float {\n";
    Out += "  var acc: float = 0.0;\n";
    Out += "  for i = 0 to 31 {\n";
    Out += "    a[i] = helper" + std::to_string(D % 6) + "(a[i]) + helper" +
           std::to_string((D + 1) % 6) + "(g);\n";
    Out += "    acc = acc + helper" + std::to_string((D + 2) % 6) +
           "(a[i]);\n";
    Out += "  }\n";
    Out += "  return acc;\n";
    Out += "}\n";
  }
  Out += "}\n";
  return Out;
}

/// Measurements for one variant of the module.
struct Variant {
  unsigned Functions = 0;
  double SeqElapsed = 0;
  double ParElapsed = 0;
  uint32_t CallsInlined = 0;
  uint32_t HelpersRemoved = 0;
};

} // namespace

int main() {
  Environment Env;
  std::string Source = makeCallHeavyModule();

  printFigureHeader(
      "Ablation", "procedure inlining before parallel compilation",
      "Section 5.1: inlining grows each compilation unit, improving both "
      "generated code and the parallel speedup when sources consist of "
      "many small functions");

  auto RunVariant = [&](bool Inline) {
    Variant V;
    // Parse; optionally inline; then measure by compiling each function
    // through the driver and replaying on the simulated host.
    DiagnosticEngine Diags;
    w2::Lexer Lexer(Source, Diags);
    w2::Parser Parser(Lexer.lexAll(), Diags);
    auto Module = Parser.parseModule();
    if (Diags.hasErrors()) {
      std::fprintf(stderr, "fatal: %s\n", Diags.str().c_str());
      std::exit(1);
    }
    if (Inline) {
      w2::InlineStats Stats = w2::inlineSmallFunctions(*Module);
      V.CallsInlined = Stats.CallsInlined;
      V.HelpersRemoved = Stats.HelpersRemoved;
    }
    // Re-run the pipeline on the (possibly transformed) AST. buildJob
    // consumes source text, so reconstruct a job manually.
    w2::Sema Sema(Diags);
    if (!Sema.checkModule(*Module)) {
      std::fprintf(stderr, "fatal: %s\n", Diags.str().c_str());
      std::exit(1);
    }
    CompilationJob Job;
    Job.ModuleName = Module->getName();
    Job.Phase1.Tokens = Lexer.tokenCount();
    Job.Phase1.SemaNodes = Sema.checkedNodeCount();
    for (size_t S = 0; S != Module->numSections(); ++S) {
      const w2::SectionDecl *Section = Module->getSection(S);
      std::vector<FunctionTask> Tasks;
      for (size_t F = 0; F != Section->numFunctions(); ++F) {
        const w2::FunctionDecl *Fn = Section->getFunction(F);
        Job.Phase1.AstNodes += w2::countAstNodes(*Fn);
        driver::FunctionResult R =
            driver::compileFunction(*Section, *Fn, Env.MM);
        FunctionTask Task;
        Task.SectionName = Section->getName();
        Task.FunctionName = Fn->getName();
        Task.Metrics = R.Metrics;
        Task.OutputKB = std::max(
            1.0, static_cast<double>(R.Program.Image.size()) / 1024.0);
        Job.Phase4.CodeWords += R.Program.CodeWords;
        Job.Phase4.ImageBytes += R.Program.Image.size();
        Tasks.push_back(std::move(Task));
      }
      Job.Sections.push_back(std::move(Tasks));
    }
    V.Functions = Job.numFunctions();
    V.SeqElapsed = simulateSequential(Job, Env.Host, Env.Model).ElapsedSec;
    Assignment Assign = scheduleBalanced(Job, Env.Host.NumWorkstations);
    V.ParElapsed =
        simulateParallel(Job, Assign, Env.Host, Env.Model).ElapsedSec;
    return V;
  };

  Variant Plain = RunVariant(false);
  Variant Inlined = RunVariant(true);

  TextTable Table({"variant", "functions", "seq elapsed [s]",
                   "par elapsed [s]", "speedup"});
  Table.addRow({"no inlining", std::to_string(Plain.Functions),
                formatDouble(Plain.SeqElapsed, 0),
                formatDouble(Plain.ParElapsed, 0),
                formatDouble(Plain.SeqElapsed / Plain.ParElapsed, 2)});
  Table.addRow({"inlined", std::to_string(Inlined.Functions),
                formatDouble(Inlined.SeqElapsed, 0),
                formatDouble(Inlined.ParElapsed, 0),
                formatDouble(Inlined.SeqElapsed / Inlined.ParElapsed, 2)});
  std::printf("%s\n", Table.str().c_str());
  std::printf("inliner: %u call(s) expanded, %u helper function(s) "
              "removed\n",
              Inlined.CallsInlined, Inlined.HelpersRemoved);
  std::printf("inlining also unblocks software pipelining: loops that "
              "contained calls could not be pipelined at all.\n");
  return 0;
}
