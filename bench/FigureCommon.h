//===- FigureCommon.h - Shared figure-bench harness -------------*- C++ -*-===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared harness for the figure-reproduction benches. Every measured
/// figure of the paper (Figures 3-16) has one binary that calls into this
/// helper: it builds the benchmark workload with the real compiler,
/// replays it on the simulated 1989 host system, and prints the figure's
/// data series as an aligned table together with the paper's qualitative
/// expectation, so EXPERIMENTS.md can record paper-vs-measured directly.
///
//===----------------------------------------------------------------------===//

#ifndef WARPC_BENCH_FIGURECOMMON_H
#define WARPC_BENCH_FIGURECOMMON_H

#include "parallel/Job.h"
#include "parallel/Scheduler.h"
#include "parallel/SimRunner.h"
#include "support/Json.h"
#include "workload/Generator.h"

#include <string>
#include <vector>

namespace warpc {
namespace bench {

/// The standard experiment environment (calibrated 1989 host + model).
struct Environment {
  codegen::MachineModel MM = codegen::MachineModel::warpCell();
  cluster::HostConfig Host = cluster::HostConfig::sunNetwork1989();
  parallel::CostModel Model = parallel::CostModel::lisp1989();
};

/// One measured point: a module of N functions compiled both ways.
struct RunPoint {
  unsigned NumFunctions = 0;
  parallel::SeqStats Seq;
  parallel::ParStats Par;
  parallel::OverheadBreakdown Overheads;

  double speedup() const { return Seq.ElapsedSec / Par.ElapsedSec; }
};

/// Compiles and simulates the S_n module of \p Size with \p N functions,
/// one function master per workstation (the paper's configuration).
RunPoint runPoint(const Environment &Env, workload::FunctionSize Size,
                  unsigned N);

/// The standard function counts the paper sweeps (1, 2, 4, 8).
std::vector<unsigned> paperCounts();

/// All counts 1..8 for the overhead figures.
std::vector<unsigned> denseCounts();

/// Prints the figure banner. Also opens the machine-readable companion
/// document when BENCH json output is enabled (see benchJsonEnabled).
void printFigureHeader(const std::string &Figure, const std::string &Title,
                       const std::string &PaperExpectation);

/// Machine-readable figure output. When the WARPC_BENCH_JSON environment
/// variable names a directory, every figure binary writes
/// <dir>/BENCH_<figure>.json ("Figure 6" -> BENCH_fig06.json) holding
/// {"schema": "warpc-bench-v1", "figure", "title", "paper", "rows": [...]}
/// next to its text table (warp-perf diffs these documents);
/// the shared printers below record their rows automatically, and
/// figure-specific mains append theirs with benchJsonRow(). Without the
/// variable the sink is inert and the binaries behave exactly as before.
bool benchJsonEnabled();

/// Appends one row object to the open figure document and rewrites the
/// file, so even an aborted sweep leaves the rows measured so far.
void benchJsonRow(json::Value Row);

/// Prints a total-execution-time figure (Figures 3, 4, 5, 12, 13):
/// elapsed and per-processor CPU time for both compilers over the counts.
void printTimesFigure(const Environment &Env, workload::FunctionSize Size,
                      const std::string &Figure,
                      const std::string &PaperExpectation);

/// Prints a relative-overhead figure (Figures 8, 9, 10) for the given
/// sizes: total and system overhead as percentage of parallel elapsed.
void printRelativeOverheadFigure(const Environment &Env,
                                 const std::vector<workload::FunctionSize> &Sizes,
                                 const std::string &Figure,
                                 const std::string &PaperExpectation);

/// Prints an absolute-overhead figure (Figures 14, 15, 16).
void printAbsoluteOverheadFigure(const Environment &Env,
                                 const std::vector<workload::FunctionSize> &Sizes,
                                 const std::string &Figure,
                                 const std::string &PaperExpectation);

} // namespace bench
} // namespace warpc

#endif // WARPC_BENCH_FIGURECOMMON_H
